#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (warnings are errors),
# build, and the full test suite. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> chaos suite (Table-1 queries under 200 fixed-seed fault plans)"
cargo test --quiet --test chaos

echo "==> cargo bench --no-run (criterion harnesses compile)"
cargo bench --workspace --no-run --quiet

echo "==> planlint selftest"
cargo run --quiet --bin planlint -- --query '//a/b/c' --selftest >/dev/null

echo "all checks passed"
