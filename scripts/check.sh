#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (warnings are errors),
# build, and the full test suite. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

echo "==> cargo test --workspace (2 harness threads; service/chaos tests spawn their own)"
cargo test --workspace --quiet -- --test-threads=2

echo "==> chaos suite (Table-1 queries under 200 fixed-seed fault plans)"
cargo test --quiet --test chaos -- --test-threads=1

echo "==> cargo bench --no-run (criterion harnesses compile)"
cargo bench --workspace --no-run --quiet

echo "==> server bench smoke (shared-engine service: cache hits, zero bound violations)"
cargo run --quiet -p sjos-bench --bin server -- --smoke

echo "==> spill bench smoke (external sort: spills happen, bounds hold, zero temp-page leaks)"
cargo run --quiet -p sjos-bench --bin spill -- --smoke

echo "==> parallel bench smoke (morsel partitioning happens, answers bit-identical to serial)"
cargo run --quiet -p sjos-bench --bin parallel -- --smoke

echo "==> planlint selftest"
cargo run --quiet --bin planlint -- --query '//a/b/c' --selftest >/dev/null

echo "==> planlint certify (DP + DPP traces over the three corpora)"
for spec in "pers:3000:'//manager//employee/name'" \
            "dblp:3000:'//dblp/article[./author][./title]'" \
            "mbench:1500:'//eNest//eNest/eOccasional'"; do
  gen="${spec%%:*}"; rest="${spec#*:}"
  n="${rest%%:*}"; query="${rest#*:}"; query="${query%\'}"; query="${query#\'}"
  for algo in dp dpp; do
    cargo run --quiet --bin planlint -- certify \
      --gen "$gen:$n" --query "$query" --algo "$algo" --json >/dev/null
  done
done

echo "==> planlint admit (resource-bound admission over the three corpora)"
cargo run --quiet --bin planlint -- admit \
  --gen pers:3000 --query '//manager//employee/name' --json >/dev/null
cargo run --quiet --bin planlint -- admit \
  --gen dblp:3000 --query '//dblp/article[./author][./title]' --json >/dev/null
cargo run --quiet --bin planlint -- admit \
  --gen mbench:1500 --query '//eNest//eNest/eOccasional' --json >/dev/null

echo "==> planlint admit rejects a starved budget (expected exit 1)"
if cargo run --quiet --bin planlint -- admit --query '//a/b/c' \
    --memory-budget 16B --json >/dev/null; then
  echo "starved budget admitted" >&2
  exit 1
fi

echo "==> planlint rules (catalog renders in both formats)"
cargo run --quiet --bin planlint -- rules >/dev/null
cargo run --quiet --bin planlint -- rules --json >/dev/null

echo "==> planlint conc (static pass + seed-pinned interleaving explorer certify clean)"
cargo run --quiet --bin planlint -- conc --json >/dev/null

echo "==> planlint conc --selftest (every seeded mutation + model defect is caught)"
cargo run --quiet --bin planlint -- conc --selftest >/dev/null

echo "==> planlint certify rejects a corrupted trace (expected exit 1)"
if cargo run --quiet --bin planlint -- certify --query '//a/b/c' \
    --corrupt inflate-ubcost --json >/dev/null; then
  echo "corrupted trace certified clean" >&2
  exit 1
fi

echo "==> cargo doc (missing docs are errors; vendored stubs excluded)"
RUSTDOCFLAGS="-D warnings -D missing_docs" cargo doc --no-deps --quiet \
  -p sjos -p sjos-xml -p sjos-storage -p sjos-pattern -p sjos-stats \
  -p sjos-exec -p sjos-core -p sjos-datagen -p sjos-planck -p sjos-bench

echo "all checks passed"
