//! A tour of the optimizer internals: search effort across the five
//! algorithms, the DPAP-EB `T_e` knob, and how data size moves the
//! optimum from left-deep to bushy fully-pipelined plans (the paper's
//! §4.3 observation).
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use sjos::datagen::{fold_document, pers::pers, GenConfig};
use sjos::{Algorithm, Database};

fn main() {
    let query = "//manager[.//employee/name][.//manager/department/name]";
    let pattern = sjos::parse_pattern(query).unwrap();
    let base = pers(GenConfig::sized(5_000));

    println!("== search effort (Q.Pers.3.d on ~5k nodes) ==");
    let db = Database::from_document(base.clone());
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12}",
        "algo", "plans", "generated", "expanded", "est. cost"
    );
    for alg in [
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: false },
        Algorithm::Dpp { lookahead: true },
        Algorithm::DpapEb { te: 6 },
        Algorithm::DpapLd,
        Algorithm::Fp,
    ] {
        let o = db.optimize(&pattern, alg).expect("optimizes");
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>12.0}",
            alg.name(),
            o.stats.plans_considered,
            o.stats.statuses_generated,
            o.stats.statuses_expanded,
            o.estimated_cost
        );
    }

    println!("\n== the T_e knob (DPAP-EB) ==");
    println!("{:<6} {:>8} {:>12}", "T_e", "plans", "est. cost");
    for te in 1..=pattern.len() {
        let o = db.optimize(&pattern, Algorithm::DpapEb { te }).expect("optimizes");
        println!("{:<6} {:>8} {:>12.0}", te, o.stats.plans_considered, o.estimated_cost);
    }

    println!("\n== plan shape vs data size ==");
    println!("{:<8} {:>10}  best plan (DPP)", "fold", "elements");
    for fold in [1usize, 4, 16] {
        let doc = fold_document(&base, fold);
        let n = doc.len();
        let db = Database::from_document(doc);
        let o = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes");
        println!(
            "x{:<7} {:>10}  {} (left-deep: {}, pipelined: {})",
            fold,
            n,
            o.plan,
            o.plan.is_left_deep(),
            o.plan.is_fully_pipelined()
        );
    }
}
