//! Comparing the three binary structural join algorithms and the
//! holistic twig join on one query — the "plug in new access methods"
//! story of the paper's §2.2 and §6.
//!
//! ```sh
//! cargo run --release --example join_algorithms [node_count]
//! ```

use std::time::Instant;

use sjos::datagen::{pers::pers, GenConfig};
use sjos::exec::{JoinAlgo, PlanNode};
use sjos::pattern::PnId;
use sjos::Database;

fn main() {
    let nodes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let db = Database::from_document(pers(GenConfig::sized(nodes)));
    let pattern = sjos::parse_pattern("//manager//employee").unwrap();

    println!("binary join //manager//employee on ~{nodes} elements:\n");
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>12}",
        "algorithm", "time (ms)", "pairs", "sorted", "extra work"
    );
    for (label, algo) in [
        ("Stack-Tree-Desc", JoinAlgo::StackTreeDesc),
        ("Stack-Tree-Anc", JoinAlgo::StackTreeAnc),
        ("MPMGJN", JoinAlgo::MergeJoin),
    ] {
        let plan = PlanNode::StructuralJoin {
            left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
            right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
            anc: PnId(0),
            desc: PnId(1),
            axis: sjos::pattern::Axis::Descendant,
            algo,
        };
        let t0 = Instant::now();
        let res = db.execute(&pattern, &plan).unwrap();
        let extra = match algo {
            JoinAlgo::StackTreeDesc => format!("{} stack ops", res.metrics.stack_pushes * 2),
            JoinAlgo::StackTreeAnc => format!("{} buffered", res.metrics.buffered_pairs),
            JoinAlgo::MergeJoin => format!("{} rescans", res.metrics.merge_rescans),
        };
        println!(
            "{:<16} {:>10.2} {:>12} {:>10} {:>12}",
            label,
            t0.elapsed().as_secs_f64() * 1e3,
            res.len(),
            match algo {
                JoinAlgo::StackTreeDesc => "by desc",
                _ => "by anc",
            },
            extra,
        );
    }

    // The holistic alternative evaluates whole twigs without join
    // ordering at all.
    let twig_query = "//manager[.//employee/name][.//department/name]";
    let twig_pattern = sjos::parse_pattern(twig_query).unwrap();
    println!("\nwhole-twig evaluation of {twig_query}:");
    let t0 = Instant::now();
    let out = db.query(twig_query).unwrap();
    println!(
        "  binary plan (DPP): {:>8.2} ms, {} matches — {}",
        t0.elapsed().as_secs_f64() * 1e3,
        out.result.len(),
        out.optimized.plan
    );
    let t1 = Instant::now();
    let twig = db.holistic(&twig_pattern).expect("holistic evaluates");
    println!(
        "  TwigStack:         {:>8.2} ms, {} matches — {} path solutions",
        t1.elapsed().as_secs_f64() * 1e3,
        twig.metrics.matches,
        twig.metrics.path_solutions
    );
    assert_eq!(twig.metrics.matches as usize, out.result.len());
}
