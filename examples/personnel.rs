//! The paper's running scenario end-to-end: generate the personnel
//! data set, optimize the Fig. 1 query with all five algorithms plus
//! the random baseline, execute every plan, and compare.
//!
//! ```sh
//! cargo run --release --example personnel [node_count]
//! ```

use std::time::Instant;

use sjos::datagen::{pers::pers, GenConfig};
use sjos::{Algorithm, Database};

fn main() {
    let nodes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    println!("generating Pers with ~{nodes} elements ...");
    let doc = pers(GenConfig::sized(nodes));
    println!("loading {} elements into the store ...", doc.len());
    let db = Database::from_document(doc);

    let query = "//manager[.//employee/name][.//manager/department/name]";
    println!("\nquery: {query} (the paper's Fig. 1 pattern)\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>9}  plan",
        "algorithm", "opt (ms)", "est. cost", "eval (ms)", "tuples", "sorts"
    );

    let algorithms = [
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: true },
        Algorithm::DpapEb { te: 6 },
        Algorithm::DpapLd,
        Algorithm::Fp,
        Algorithm::WorstRandom { samples: 64, seed: 2003 },
    ];
    let mut reference: Option<usize> = None;
    for alg in algorithms {
        let t0 = Instant::now();
        let pattern = sjos::parse_pattern(query).unwrap();
        let optimized = db.optimize(&pattern, alg).expect("optimizes");
        let opt_ms = t0.elapsed().as_secs_f64() * 1e3;
        let result = db.execute(&pattern, &optimized.plan).unwrap();
        match reference {
            Some(n) => assert_eq!(n, result.len(), "all plans must agree"),
            None => reference = Some(result.len()),
        }
        println!(
            "{:<12} {:>10.2} {:>12.0} {:>10.2} {:>12} {:>9}  {}",
            alg.name(),
            opt_ms,
            optimized.estimated_cost,
            result.elapsed.as_secs_f64() * 1e3,
            result.metrics.produced_tuples,
            result.metrics.sort_operations,
            optimized.plan,
        );
    }
    println!("\nmatches: {}", reference.unwrap());
}
