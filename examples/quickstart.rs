//! Quickstart: load XML, ask a tree-pattern query, inspect the plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sjos::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny personnel document in the spirit of the paper's Fig. 1.
    let db = Database::from_xml(
        "<company>\
           <manager><name>grace</name>\
             <employee><name>ada</name></employee>\
             <manager><name>alan</name>\
               <department><name>research</name>\
                 <employee><name>barbara</name></employee>\
               </department>\
             </manager>\
           </manager>\
         </company>",
    )?;

    // The running-example query: managers with a supervised employee's
    // name, and a department name directly under a subordinate manager.
    let query = "//manager[.//employee/name][.//manager/department/name]";
    let outcome = db.query(query)?;

    println!("query    : {query}");
    println!("plan     : {}", outcome.optimized.plan);
    println!(
        "pipelined: {} | est. cost: {:.1} | plans considered: {}",
        outcome.optimized.plan.is_fully_pipelined(),
        outcome.optimized.estimated_cost,
        outcome.optimized.stats.plans_considered,
    );
    println!("matches  : {}", outcome.result.len());
    for row in outcome.result.canonical_rows() {
        let names: Vec<String> = row
            .iter()
            .map(|&id| {
                let node = db.document().node(id);
                let tag = db.document().tag_name(node.tag);
                if node.text.is_empty() {
                    tag.to_owned()
                } else {
                    format!("{tag}({})", node.text)
                }
            })
            .collect();
        println!("  {}", names.join(" · "));
    }
    Ok(())
}
