//! Querying the DBLP-shaped bibliography: value predicates, order-by,
//! and what the statistics module believes about the data.
//!
//! ```sh
//! cargo run --release --example bibliography [node_count]
//! ```

use sjos::datagen::{dblp::dblp, GenConfig};
use sjos::pattern::PnId;
use sjos::{Algorithm, Database};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let doc = dblp(GenConfig::sized(nodes));
    println!("bibliography with {} elements", doc.len());
    let db = Database::from_document(doc);

    // What does the catalog know?
    println!("\ncatalog cardinalities:");
    for tag in ["article", "inproceedings", "author", "title", "year", "cite"] {
        if let Some(t) = db.document().tag(tag) {
            println!("  {:<14} {:>8}", tag, db.catalog().cardinality(t));
        }
    }

    // 1. Articles by a specific author.
    let q1 = "//article[./author[text()='wu']]/title";
    let out1 = db.query(q1)?;
    println!("\n{q1}\n  plan {}\n  {} matches", out1.optimized.plan, out1.result.len());

    // 2. Estimated vs actual cardinality for the same query.
    let pattern = sjos::parse_pattern(q1)?;
    let est = db.estimates(&pattern);
    let predicted = est.cluster_cardinality(&pattern, pattern.all_nodes());
    println!("  estimator predicted {predicted:.1} matches");

    // 3. An order-by query: titles of cited publications, ordered by
    //    the publication (pattern node 0).
    let mut ordered = sjos::parse_pattern("//inproceedings[./cite]/title")?;
    ordered.set_order_by(PnId(0));
    let plan = db.optimize(&ordered, Algorithm::Fp).expect("optimizes");
    let res = db.execute(&ordered, &plan.plan)?;
    println!(
        "\n//inproceedings[./cite]/title order by node 0\n  plan {} (pipelined: {})\n  {} matches, {} sorts",
        plan.plan,
        plan.plan.is_fully_pipelined(),
        res.len(),
        res.metrics.sort_operations
    );

    // 4. Show a couple of bound titles.
    for row in res.canonical_rows().iter().take(3) {
        let title = db.document().node(row[2]);
        println!("  e.g. \"{}\"", title.text);
    }
    Ok(())
}
