//! Property-based tests over the whole stack: for *arbitrary*
//! documents and patterns, every optimizer's executed plan agrees
//! with the naive evaluator; region encodings keep their invariants;
//! folding scales exactly linearly.

use proptest::prelude::*;

use sjos::{Algorithm, Database};
use sjos_exec::naive;
use sjos_pattern::{Axis, Pattern};
use sjos_xml::{Document, DocumentBuilder};

const TAGS: &[&str] = &["t0", "t1", "t2", "t3"];

/// A random element tree (tags drawn from a tiny alphabet so that
/// joins actually produce matches).
#[derive(Debug, Clone)]
struct TreeNode {
    tag: usize,
    text: Option<usize>,
    children: Vec<TreeNode>,
}

fn tree_strategy() -> impl Strategy<Value = TreeNode> {
    let leaf = (0..TAGS.len(), proptest::option::of(0..3usize)).prop_map(|(tag, text)| TreeNode {
        tag,
        text,
        children: vec![],
    });
    leaf.prop_recursive(4, 48, 4, |inner| {
        (0..TAGS.len(), proptest::option::of(0..3usize), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, text, children)| TreeNode { tag, text, children })
    })
}

fn build_doc(root: &TreeNode) -> Document {
    fn rec(n: &TreeNode, b: &mut DocumentBuilder) {
        b.start_element(TAGS[n.tag]);
        if let Some(v) = n.text {
            b.text(&format!("v{v}"));
        }
        for c in &n.children {
            rec(c, b);
        }
        b.end_element();
    }
    let mut b = DocumentBuilder::new();
    // A fixed synthetic root guarantees a single-root document.
    b.start_element("root");
    rec(root, &mut b);
    b.end_element();
    b.finish()
}

/// A random pattern tree over the same alphabet (2..=5 nodes).
#[derive(Debug, Clone)]
struct PatNode {
    tag: usize,
    axis_from_parent: bool, // true = descendant
    children: Vec<PatNode>,
}

fn pattern_strategy() -> impl Strategy<Value = PatNode> {
    let leaf = (0..TAGS.len(), any::<bool>()).prop_map(|(tag, ax)| PatNode {
        tag,
        axis_from_parent: ax,
        children: vec![],
    });
    leaf.prop_recursive(3, 5, 2, |inner| {
        (0..TAGS.len(), any::<bool>(), prop::collection::vec(inner, 0..3))
            .prop_map(|(tag, ax, children)| PatNode { tag, axis_from_parent: ax, children })
    })
}

fn build_pattern(root: &PatNode) -> Pattern {
    fn rec(n: &PatNode, parent: sjos_pattern::PnId, p: &mut Pattern) {
        for c in &n.children {
            let axis = if c.axis_from_parent { Axis::Descendant } else { Axis::Child };
            let id = p.add_child(parent, axis, TAGS[c.tag]);
            rec(c, id, p);
        }
    }
    let mut p = Pattern::with_root(TAGS[root.tag]);
    let r = p.root();
    rec(root, r, &mut p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_optimizer_matches_naive(tree in tree_strategy(), pat in pattern_strategy()) {
        let doc = build_doc(&tree);
        let pattern = build_pattern(&pat);
        let expected = naive::evaluate(&doc, &pattern);
        let db = Database::from_document(doc);
        for alg in [
            Algorithm::Dpp { lookahead: true },
            Algorithm::Fp,
            Algorithm::DpapLd,
            Algorithm::WorstRandom { samples: 3, seed: 5 },
        ] {
            let optimized = db.optimize(&pattern, alg).unwrap();
            let result = db.execute(&pattern, &optimized.plan).unwrap();
            prop_assert_eq!(result.canonical_rows(), expected.clone(), "{}", alg.name());
        }
    }

    #[test]
    fn region_encoding_invariants(tree in tree_strategy()) {
        let doc = build_doc(&tree);
        // Intervals nest or are disjoint; arena order == start order.
        let nodes = doc.nodes();
        for (i, a) in nodes.iter().enumerate() {
            prop_assert!(a.region.start < a.region.end);
            if i + 1 < nodes.len() {
                prop_assert!(a.region.start < nodes[i + 1].region.start);
            }
            for b in nodes.iter().skip(i + 1) {
                let nested = a.region.contains(b.region);
                let disjoint = a.region.precedes(b.region) || b.region.precedes(a.region);
                prop_assert!(nested ^ disjoint, "intervals must nest xor be disjoint");
            }
        }
    }

    #[test]
    fn serialization_roundtrips(tree in tree_strategy()) {
        let doc = build_doc(&tree);
        let text = sjos::xml::serialize::to_xml(&doc);
        let doc2 = Document::parse(&text).unwrap();
        prop_assert_eq!(doc.len(), doc2.len());
        for (a, b) in doc.nodes().iter().zip(doc2.nodes()) {
            prop_assert_eq!(a.region, b.region);
            prop_assert_eq!(doc.tag_name(a.tag), doc2.tag_name(b.tag));
            prop_assert_eq!(&a.text, &b.text);
        }
    }

    #[test]
    fn folding_scales_matches_linearly(tree in tree_strategy(), k in 1usize..4) {
        let doc = build_doc(&tree);
        let pattern = sjos::parse_pattern(&format!("//root//{}", TAGS[0])).unwrap();
        let base = naive::evaluate(&doc, &pattern).len();
        let folded = sjos::datagen::fold_document(&doc, k);
        let scaled = naive::evaluate(&folded, &pattern).len();
        prop_assert_eq!(scaled, base * k);
    }

    #[test]
    fn estimates_are_finite_and_nonnegative(tree in tree_strategy(), pat in pattern_strategy()) {
        let doc = build_doc(&tree);
        let pattern = build_pattern(&pat);
        let db = Database::from_document(doc);
        let est = db.estimates(&pattern);
        for id in pattern.node_ids() {
            let c = est.node_cardinality(id);
            prop_assert!(c.is_finite() && c >= 0.0);
        }
        let full = est.cluster_cardinality(&pattern, pattern.all_nodes());
        prop_assert!(full.is_finite() && full >= 0.0);
    }
}
