//! Integration tests for the concurrent query service: admission
//! soundness under real concurrency, typed overload behavior, plan
//! caching, and per-session I/O attribution.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use sjos::datagen::{fold_document, paper_queries, pers::pers, DataSet, GenConfig, Workload};
use sjos::service::RejectReason;
use sjos::{Algorithm, Database, QueryService, ServiceConfig, ServiceError};

const DPP: Algorithm = Algorithm::Dpp { lookahead: true };

fn pers_db(nodes: usize, fold: usize) -> Arc<Database> {
    let doc = pers(GenConfig::sized(nodes));
    let doc = if fold > 1 { fold_document(&doc, fold) } else { doc };
    Arc::new(Database::from_document(doc))
}

fn pers_queries() -> Vec<Workload> {
    paper_queries().into_iter().filter(|w| w.dataset == DataSet::Pers).collect()
}

/// The certified peak of the most expensive query in the mix, used to
/// size budgets deterministically.
fn max_certificate(db: &Database, queries: &[Workload]) -> u64 {
    queries
        .iter()
        .map(|w| {
            let pattern = w.pattern();
            let plan = db.optimize(&pattern, DPP).expect("optimizes").plan;
            db.resource_bounds(&pattern, &plan).peak_bytes
        })
        .max()
        .expect("non-empty workload")
}

/// The headline soundness property: N admitted queries running
/// simultaneously can never, in aggregate, exceed the global budget.
/// The proof chain is (1) the controller's reservation high-water
/// `peak_in_use` never exceeds the budget, and (2) every query's
/// measured `peak_bytes` stays at or below its certified reservation
/// (zero bound violations). Both are asserted exactly.
#[test]
fn concurrent_admitted_queries_respect_the_global_budget() {
    let db = pers_db(3_000, 4);
    let queries = pers_queries();
    // 1.5x the largest certificate: any two concurrent heavy queries
    // contend, but every query fits alone.
    let max_cert = max_certificate(&db, &queries);
    let budget = max_cert + max_cert / 2;
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            memory_budget: budget,
            queue_capacity: 64,
            queue_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    );

    const THREADS: usize = 8;
    const PER_THREAD: usize = 12;
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let session = service.session();
            let queries = &queries;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    let w = &queries[(worker + i) % queries.len()];
                    let out = session.query_with(w.query, DPP).expect("generous queue admits");
                    assert!(
                        out.result.metrics.peak_bytes <= out.plan.bounds.peak_bytes,
                        "{}: measured {} B escaped certificate {} B",
                        w.id,
                        out.result.metrics.peak_bytes,
                        out.plan.bounds.peak_bytes
                    );
                }
            });
        }
    });

    let adm = service.admission_snapshot();
    let m = service.metrics();
    assert_eq!(adm.admitted, (THREADS * PER_THREAD) as u64, "every query ran");
    assert_eq!(adm.rejected, 0);
    assert_eq!(adm.in_use, 0, "all reservations released");
    assert!(
        adm.peak_in_use <= budget,
        "aggregate certified reservation peaked at {} B over the {} B budget",
        adm.peak_in_use,
        budget
    );
    assert!(adm.peak_in_use > 0, "queries actually reserved bytes");
    assert_eq!(
        m.bound_violations.load(Ordering::Relaxed),
        0,
        "a measured peak escaped its certificate — the admission guarantee is falsified"
    );
    assert!(
        m.max_measured_peak.load(Ordering::Relaxed) <= m.max_certified_peak.load(Ordering::Relaxed)
    );
    // Non-vacuity: with a budget of 1.5x the largest certificate and
    // 8 threads, the run must have seen real concurrency — either two
    // reservations overlapped (peak above any single certificate) or
    // somebody had to queue.
    assert!(
        adm.peak_in_use > max_cert || adm.queued > 0,
        "no two reservations ever overlapped — the soundness check ran vacuously"
    );
}

/// A certificate larger than the whole budget is rejected before any
/// queueing, with the typed reason.
#[test]
fn undersized_budget_rejects_with_typed_overloaded() {
    let db = pers_db(2_000, 1);
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig { memory_budget: 16, ..ServiceConfig::default() },
    );
    let session = service.session();
    let err = session.query("//manager//employee/name").unwrap_err();
    match err {
        ServiceError::Overloaded(r) => {
            assert_eq!(r.reason, RejectReason::NeverFits);
            assert_eq!(r.budget, 16);
            assert!(r.certified_bytes > 16);
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    let adm = service.admission_snapshot();
    assert_eq!(adm.rejected, 1);
    assert_eq!(adm.admitted, 0);
}

/// A budget that fits exactly one query at a time: while one session
/// holds the whole budget, a second arrival with no patience gets the
/// typed queue-then-`Overloaded` verdict, and succeeds once the
/// holder drains.
#[test]
fn contended_budget_yields_queue_then_overloaded() {
    let db = pers_db(3_000, 8);
    let queries = pers_queries();
    let budget = max_certificate(&db, &queries);
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            memory_budget: budget,
            queue_capacity: 4,
            // No patience: a contended arrival times out immediately
            // instead of waiting for the holder.
            queue_timeout: Duration::ZERO,
            ..ServiceConfig::default()
        },
    );

    // The heaviest query holds the entire budget while it runs.
    let heavy = queries
        .iter()
        .map(|w| w.query)
        .max_by_key(|q| {
            let pattern = sjos::parse_pattern(q).unwrap();
            let plan = db.optimize(&pattern, DPP).unwrap().plan;
            db.resource_bounds(&pattern, &plan).peak_bytes
        })
        .unwrap();

    let mut saw_overload = false;
    std::thread::scope(|scope| {
        let holder_session = service.session();
        let holder = scope.spawn(move || {
            for _ in 0..6 {
                holder_session.query_with(heavy, DPP).expect("holder runs clean");
            }
        });
        let session = service.session();
        // Probe while the holder's reservation is visible; the zero
        // timeout turns any contended arrival into a typed rejection.
        while !holder.is_finished() {
            if service.admission_snapshot().in_use > 0 {
                match session.query_with(heavy, DPP) {
                    Err(ServiceError::Overloaded(r)) => {
                        assert_eq!(r.reason, RejectReason::TimedOut);
                        saw_overload = true;
                    }
                    Ok(_) => {}
                    Err(other) => panic!("unexpected error under contention: {other}"),
                }
            }
            std::thread::yield_now();
        }
        holder.join().unwrap();
    });
    assert!(saw_overload, "no arrival ever overlapped the holder's reservation");

    // Once the budget is free the same query is admitted.
    let session = service.session();
    session.query_with(heavy, DPP).expect("uncontended query admits");
    assert!(service.admission_snapshot().rejected > 0);
    assert_eq!(service.metrics().bound_violations.load(Ordering::Relaxed), 0);
}

/// The algorithm is part of the cache key: the same pattern under a
/// different optimizer is a fresh entry, not a wrong-plan hit.
#[test]
fn cache_distinguishes_algorithms() {
    let db = pers_db(2_000, 1);
    let service = QueryService::new(Arc::clone(&db), ServiceConfig::default());
    let session = service.session();
    let q = "//manager//employee/name";
    assert!(!session.query_with(q, DPP).unwrap().cache_hit);
    let fp = session.query_with(q, Algorithm::Fp).unwrap();
    assert!(!fp.cache_hit, "FP must not be served DPP's cached plan");
    assert!(session.query_with(q, DPP).unwrap().cache_hit);
    assert!(session.query_with(q, Algorithm::Fp).unwrap().cache_hit);
    let cache = service.cache_snapshot();
    assert_eq!((cache.hits, cache.misses), (2, 2));
    assert_eq!(cache.len, 2);
}

/// Recalibration bumps the catalog version, so plans cached before it
/// can never be served after it (their key is unreachable).
#[test]
fn calibration_invalidates_cached_plans_by_version() {
    let db = pers_db(2_000, 1);
    let v0 = db.catalog().version();
    let doc = pers(GenConfig::sized(2_000));
    let (calibrated, _report) = Database::from_document(doc).with_calibrated_model();
    assert!(calibrated.catalog().version() > v0, "calibration must advance the version");

    let service = QueryService::new(Arc::new(calibrated), ServiceConfig::default());
    let session = service.session();
    assert!(!session.query("//manager//employee/name").unwrap().cache_hit);
    assert!(session.query("//manager//employee/name").unwrap().cache_hit);
}

/// Per-session I/O attribution: each session sees exactly its own
/// traffic, and the sessions' record reads sum to the engine-global
/// delta.
#[test]
fn sessions_attribute_their_own_io() {
    let db = pers_db(3_000, 2);
    let service = QueryService::new(Arc::clone(&db), ServiceConfig::default());
    let global_before = db.store().stats().snapshot();

    let s1 = service.session();
    let s2 = service.session();
    let out1 = s1.query("//manager//employee/name").unwrap();
    let out2 = s2.query("//manager//employee/name").unwrap();
    let out3 = s2.query("//manager/secretary").unwrap();

    assert!(out1.io.record_reads > 0, "query I/O must be attributed");
    assert_eq!(out2.io.record_reads + out3.io.record_reads, s2.io_snapshot().record_reads);
    assert_eq!(s1.io_snapshot().record_reads, out1.io.record_reads);

    let global_delta = db.store().stats().snapshot().since(&global_before);
    assert_eq!(
        s1.io_snapshot().record_reads + s2.io_snapshot().record_reads,
        global_delta.record_reads,
        "session attribution must partition the global record-read delta"
    );
    // The second identical query is served from the warm buffer pool:
    // its session observes hits, not fresh disk reads.
    assert!(out2.io.buffer_hits > 0, "warm pool traffic attributed to session 2");
}

/// Concurrent sessions partition the global record-read delta with no
/// loss or double counting.
#[test]
fn concurrent_io_attribution_sums_to_the_global_delta() {
    let db = pers_db(3_000, 2);
    let service = QueryService::new(Arc::clone(&db), ServiceConfig::default());
    let queries = pers_queries();
    let global_before = db.store().stats().snapshot();

    let per_session: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|worker| {
                let session = service.session();
                let queries = &queries;
                scope.spawn(move || {
                    for i in 0..8 {
                        let w = &queries[(worker + i) % queries.len()];
                        session.query_with(w.query, DPP).expect("runs clean");
                    }
                    session.io_snapshot().record_reads
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let global_delta = db.store().stats().snapshot().since(&global_before);
    let summed: u64 = per_session.iter().sum();
    assert_eq!(
        summed, global_delta.record_reads,
        "per-session record reads must sum to the global delta"
    );
    assert!(per_session.iter().all(|&r| r > 0), "every session did real work");
}

/// The service surface renders its observability JSON with every
/// advertised section present.
#[test]
fn metrics_json_has_all_sections() {
    let db = pers_db(2_000, 1);
    let service = QueryService::new(Arc::clone(&db), ServiceConfig::default());
    let session = service.session();
    session.query("//manager//employee/name").unwrap();
    session.query("//manager//employee/name").unwrap();
    let json = service.metrics_json();
    for needle in [
        "\"queries\"",
        "\"plan_cache\"",
        "\"admission\"",
        "\"latency\"",
        "\"sessions\"",
        "\"hit_rate\"",
        "\"bound_violations\":0",
        "\"p99_ms\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}

/// Satellite regression for the queue-timeout edge: a deadline-
/// timed-out waiter must leave the admission state exactly as it
/// found it — ticket gone from the queue, `in_use` untouched, and
/// (the high-water witness) `peak_in_use` unchanged. The queue must
/// not be wedged for the next arrival.
#[test]
fn timed_out_waiter_leaves_no_trace_in_the_admission_state() {
    use sjos::service::AdmissionController;

    let ctl = AdmissionController::new(100, 4);
    let held = ctl.admit(90, Duration::ZERO).expect("fits the empty budget");
    let before = ctl.snapshot();
    assert_eq!(before.peak_in_use, 90);

    let err = ctl.admit(20, Duration::from_millis(30)).expect_err("cannot fit behind 90");
    assert_eq!(err.reason, RejectReason::TimedOut);

    let after = ctl.snapshot();
    assert_eq!(after.waiting, 0, "the timed-out ticket must leave the queue");
    assert_eq!(after.in_use, 90, "a rejected waiter must not hold bytes");
    assert_eq!(
        after.peak_in_use, before.peak_in_use,
        "high-water witness moved: the expired waiter took a reservation"
    );
    assert_eq!(after.rejected, before.rejected + 1);

    // The departure must not wedge the queue for the next arrival.
    drop(held);
    let next = ctl.admit(20, Duration::ZERO).expect("freed budget admits immediately");
    assert_eq!(next.certified_bytes(), 20);
    assert_eq!(ctl.snapshot().peak_in_use, 90, "20 B after the release never beats the 90 B peak");
}

/// Hammer the release-vs-deadline race the fixed admit loop closes:
/// the holder's release lands right around the waiter's expiry. On
/// every outcome the admission state must stay exact — a granted
/// waiter releases normally, a timed-out waiter vanishes without
/// touching `peak_in_use`, and the high-water mark never exceeds the
/// single holder's 90 bytes (the waiter's 20 can only ever be
/// reserved after the 90 left).
#[test]
fn release_racing_the_deadline_never_corrupts_the_high_water_mark() {
    use sjos::service::AdmissionController;

    let ctl = Arc::new(AdmissionController::new(100, 4));
    let mut timeouts = 0u32;
    let mut grants = 0u32;
    for round in 0..40 {
        let held = ctl.admit(90, Duration::ZERO).expect("budget starts free");
        let c = Arc::clone(&ctl);
        // Stagger the deadline across rounds so the release lands
        // before, around, and after expiry.
        let limit = Duration::from_micros(200 * (round % 5));
        let waiter = std::thread::spawn(move || c.admit(20, limit).map(|p| p.certified_bytes()));
        std::thread::sleep(Duration::from_micros(300));
        drop(held);
        match waiter.join().expect("waiter thread survives") {
            Ok(bytes) => {
                assert_eq!(bytes, 20);
                grants += 1;
            }
            Err(rej) => {
                assert_eq!(rej.reason, RejectReason::TimedOut);
                timeouts += 1;
            }
        }
        let snap = ctl.snapshot();
        assert_eq!(snap.waiting, 0, "round {round}: a ticket was left behind");
        assert_eq!(snap.in_use, 0, "round {round}: a reservation leaked");
        assert_eq!(
            snap.peak_in_use, 90,
            "round {round}: the high-water mark moved — an expired waiter was granted \
             while the holder still held its 90 bytes"
        );
    }
    // Both edges of the race must actually occur for the hammering to
    // mean anything; with deadlines from 0 to 800us around a 300us
    // release, each side shows up well before 40 rounds.
    assert!(timeouts > 0, "no waiter ever timed out — the race window never opened");
    assert!(grants > 0, "no waiter was ever granted — the release path went untested");
}
