//! End-to-end static analysis over the paper's Table-1 workloads:
//! the order-property dataflow pass proves FP plans pipeline-safe
//! without execution (and execution agrees), DPP search traces
//! certify admissible on all three generated corpora, doctored traces
//! are rejected with typed diagnostics, and seeded plan mutations are
//! caught statically by the PL04x rules.

use sjos::core::{mutate_plan, Algorithm, PlanMutation};
use sjos::datagen::{dblp::dblp, mbench::mbench, paper_queries, pers::pers, DataSet, GenConfig};
use sjos::Database;
use sjos_planck::{
    analyze_plan, certify_trace, corrupt_trace, lint_execution, record_search_trace,
    PlanExpectations, Rule, TraceCorruption,
};

fn databases() -> [(DataSet, Database); 3] {
    [
        (DataSet::Pers, Database::from_document(pers(GenConfig::sized(3_000)))),
        (DataSet::Dblp, Database::from_document(dblp(GenConfig::sized(3_000)))),
        (DataSet::Mbench, Database::from_document(mbench(GenConfig::sized(1_500)))),
    ]
}

/// FP plans over every paper query are proved non-blocking by the
/// dataflow pass (PL042 stays quiet), and running them confirms the
/// proof (PL034 stays quiet): the static and dynamic verdicts agree.
#[test]
fn fp_plans_proved_pipelined_statically_and_dynamically() {
    let dbs = databases();
    for q in paper_queries() {
        let db = &dbs.iter().find(|(ds, _)| *ds == q.dataset).unwrap().1;
        let pattern = q.pattern();
        let plan = db.optimize(&pattern, Algorithm::Fp).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let expect = PlanExpectations { fully_pipelined: true, left_deep: false };
        let analysis = analyze_plan(&pattern, &plan.plan, expect);
        assert!(analysis.proved_pipelined, "{}: FP plan not proved pipelined", q.id);
        assert!(
            !analysis.report.violates(Rule::StaticNonBlocking),
            "{}: {}",
            q.id,
            analysis.report.render()
        );
        let dynamic = lint_execution(db.store(), &pattern, &plan.plan);
        assert!(
            !dynamic.violates(Rule::BatchContract),
            "{}: execution contradicts the static proof\n{}",
            q.id,
            dynamic.render()
        );
    }
}

/// Honest DPP (and DP) search traces over every paper query certify
/// admissible on all three corpora.
#[test]
fn search_traces_certify_clean_on_all_datasets() {
    let dbs = databases();
    for q in paper_queries() {
        let db = &dbs.iter().find(|(ds, _)| *ds == q.dataset).unwrap().1;
        let pattern = q.pattern();
        let estimates = db.estimates(&pattern);
        let model = *db.cost_model();
        for algorithm in [Algorithm::Dp, Algorithm::Dpp { lookahead: true }] {
            let trace = record_search_trace(&pattern, &estimates, &model, algorithm)
                .unwrap_or_else(|e| panic!("{}: {e}", q.id));
            assert!(!trace.events.is_empty(), "{}: empty trace", q.id);
            let report = certify_trace(&pattern, &estimates, &model, &trace);
            assert!(
                report.is_clean(),
                "{}/{}: honest trace rejected\n{}",
                q.id,
                algorithm.name(),
                report.render()
            );
        }
    }
}

/// A trace whose ubCost entries were inflated after the fact — the
/// forged evidence that "the bound justified this prune" — is
/// rejected with a typed PL052 diagnostic naming the recomputed value.
#[test]
fn corrupted_traces_are_rejected_with_typed_diagnostics() {
    let dbs = databases();
    for (ds, db) in &dbs {
        let q = paper_queries().into_iter().find(|q| q.dataset == *ds).unwrap();
        let pattern = q.pattern();
        let estimates = db.estimates(&pattern);
        let model = *db.cost_model();
        let honest =
            record_search_trace(&pattern, &estimates, &model, Algorithm::Dpp { lookahead: true })
                .unwrap();
        for (corruption, name) in TraceCorruption::ALL {
            let doctored = corrupt_trace(&honest, corruption);
            let report = certify_trace(&pattern, &estimates, &model, &doctored);
            assert!(!report.is_clean(), "{}: {name} corruption certified clean", q.id);
            let expected = match corruption {
                TraceCorruption::InflateUbCost => Rule::TraceConsistent,
                TraceCorruption::DropFinalized => Rule::TraceComplete,
                TraceCorruption::CheapPrune => Rule::PruneAdmissible,
            };
            assert!(
                report.violates(expected),
                "{}: {name} caught by {:?}, expected {expected:?}",
                q.id,
                report.rules()
            );
        }
    }
}

/// Round-tripping an honest trace through its text serialization does
/// not change the certifier's verdict: the format carries everything
/// certification needs.
#[test]
fn serialized_traces_certify_identically() {
    let db = Database::from_document(pers(GenConfig::sized(2_000)));
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap();
    let pattern = q.pattern();
    let estimates = db.estimates(&pattern);
    let model = *db.cost_model();
    let trace =
        record_search_trace(&pattern, &estimates, &model, Algorithm::Dpp { lookahead: true })
            .unwrap();
    let reparsed = sjos::core::SearchTrace::from_text(&trace.to_text()).unwrap();
    let report = certify_trace(&pattern, &estimates, &model, &reparsed);
    assert!(report.is_clean(), "{}", report.render());
}

/// At least one seeded plan mutation per paper query is rejected by
/// the *static* dataflow rules alone — before any execution.
#[test]
fn plan_mutations_rejected_statically_by_dataflow() {
    let dbs = databases();
    for q in paper_queries() {
        let db = &dbs.iter().find(|(ds, _)| *ds == q.dataset).unwrap().1;
        let pattern = q.pattern();
        let base = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap().plan;
        let mut rejected = 0usize;
        for mutation in PlanMutation::ALL {
            let Some(mutated) = mutate_plan(&pattern, &base, mutation) else {
                continue;
            };
            let expect = PlanExpectations {
                fully_pipelined: mutation == PlanMutation::WrapRootSort,
                left_deep: false,
            };
            let analysis = analyze_plan(&pattern, &mutated, expect);
            let dataflow_hit = [
                Rule::RedundantSort,
                Rule::UnsortedMergeInput,
                Rule::StaticNonBlocking,
                Rule::OrderContractMismatch,
            ]
            .iter()
            .any(|r| analysis.report.violates(*r));
            if dataflow_hit {
                rejected += 1;
            }
        }
        assert!(rejected >= 1, "{}: no mutation caught by PL040-PL043", q.id);
    }
}
