//! Differential soundness of the static resource bounds (PL060–PL064):
//! over the paper's Table 1 queries on all three generated corpora —
//! plus hundreds of seeded random valid plans — the bound lattice must
//! be clean (intervals well-ordered and containing the cost model's
//! point estimates), and *every* execution at every batch granularity
//! must stay inside the statically derived peak-byte and batch-pull
//! bounds. Admission control must gate exactly at the bound: a budget
//! one byte (or one pull) below it rejects, the bound itself admits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sjos::core::random_plan;
use sjos::datagen::{dblp::dblp, mbench::mbench, paper_queries, pers::pers, DataSet, GenConfig};
use sjos::{Algorithm, Database, Pattern, PlanNode, BATCH_ROWS};
use sjos_planck::{admit, lint_bound_soundness, lint_bounds, Rule, DEFAULT_MEMORY_BUDGET};

/// Granularities under test: degenerate tuple-at-a-time, an awkward
/// size that never divides the row counts, and production.
const BATCH_SIZES: [usize; 3] = [1, 3, BATCH_ROWS];

fn corpus(dataset: DataSet) -> Database {
    let config = GenConfig::sized(1_200);
    Database::from_document(match dataset {
        DataSet::Mbench => mbench(config),
        DataSet::Dblp => dblp(config),
        DataSet::Pers => pers(config),
    })
}

/// Lint the bound lattice and replay the plan at every granularity;
/// any diagnostic — inverted interval, estimate outside the interval,
/// or an execution escaping its static bound — fails the test.
fn check_plan(db: &Database, pattern: &Pattern, plan: &PlanNode, label: &str) {
    let estimates = db.estimates(pattern);
    let model = *db.cost_model();
    for &rows in &BATCH_SIZES {
        let (bounds, report) = lint_bounds(pattern, &estimates, &model, plan, rows);
        assert!(report.is_clean(), "{label} at batch_rows={rows}: {report}");
        let replay = lint_bound_soundness(db.store(), pattern, &bounds, plan)
            .unwrap_or_else(|e| panic!("{label} at batch_rows={rows}: {e}"));
        assert!(replay.is_clean(), "{label} at batch_rows={rows}: {replay}");
    }
}

#[test]
fn paper_plans_are_bounded_and_admissible() {
    for dataset in [DataSet::Mbench, DataSet::Dblp, DataSet::Pers] {
        let db = corpus(dataset);
        for q in paper_queries().into_iter().filter(|q| q.dataset == dataset) {
            let pattern = q.pattern();
            for algorithm in [Algorithm::Dpp { lookahead: true }, Algorithm::Fp] {
                let plan = db.optimize(&pattern, algorithm).unwrap().plan;
                check_plan(&db, &pattern, &plan, q.id);

                // Every Table 1 plan must pass admission at the
                // default production budget.
                let bounds = db.resource_bounds(&pattern, &plan);
                let verdict = admit(&bounds, Some(DEFAULT_MEMORY_BUDGET), None);
                assert!(
                    verdict.is_clean(),
                    "{} ({}) rejected at the default budget: {verdict}",
                    q.id,
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn admission_gates_exactly_at_the_bound() {
    let db = corpus(DataSet::Pers);
    let pattern = sjos::parse_pattern("//manager//employee/name").unwrap();
    let plan = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap().plan;
    let bounds = db.resource_bounds(&pattern, &plan);
    assert!(bounds.peak_bytes > 0 && bounds.batch_pulls > 0);

    let starved = admit(&bounds, Some(bounds.peak_bytes - 1), None);
    assert!(starved.violates(Rule::MemoryAdmissible), "{starved}");
    let throttled = admit(&bounds, None, Some(bounds.batch_pulls - 1));
    assert!(throttled.violates(Rule::BatchAdmissible), "{throttled}");
    let exact = admit(&bounds, Some(bounds.peak_bytes), Some(bounds.batch_pulls));
    assert!(exact.is_clean(), "{exact}");
    let unlimited = admit(&bounds, None, None);
    assert!(unlimited.is_clean(), "{unlimited}");
}

/// Run `count` seeded random valid plans per query through the full
/// lattice + replay check.
fn random_plans(db: &Database, queries: &[&str], count: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for query in queries {
        let pattern = sjos::parse_pattern(query).unwrap();
        for i in 0..count {
            let plan = random_plan(&pattern, &mut rng);
            check_plan(db, &pattern, &plan, &format!("{query} random#{i} (seed {seed})"));
        }
    }
}

#[test]
fn random_pers_plans_stay_inside_their_bounds() {
    let db = corpus(DataSet::Pers);
    random_plans(
        &db,
        &[
            "//manager//employee/name",
            "//manager[.//employee/name][./department/name]",
            "//department[./name[text()='sales']]/employee/name",
        ],
        60,
        101,
    );
}

#[test]
fn random_dblp_plans_stay_inside_their_bounds() {
    let db = corpus(DataSet::Dblp);
    random_plans(
        &db,
        &["//dblp/article[./author][./title]", "//dblp[./article/author][./inproceedings/title]"],
        60,
        202,
    );
}

#[test]
fn random_mbench_plans_stay_inside_their_bounds() {
    let db = corpus(DataSet::Mbench);
    random_plans(&db, &["//eNest/eNest/eOccasional", "//mbench/eNest//eOccasional"], 60, 303);
}

/// Recursive nesting is where naive cardinality bounds explode and
/// where the depth-levels argument earns its keep: eNest nests in
/// eNest, so stack depths exceed one — the bounds must still hold.
#[test]
fn recursive_nesting_stays_inside_its_bounds() {
    let db = corpus(DataSet::Mbench);
    random_plans(&db, &["//eNest//eNest//eNest"], 40, 404);
}
