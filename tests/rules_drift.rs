//! Drift test: the rule tables in DESIGN.md §7/§13 and the live
//! planck catalog (`planlint rules --json` renders the same
//! [`sjos_planck::Rule::ALL`]) must agree exactly.
//!
//! Every rule table in DESIGN.md puts the rule id in column one and
//! the kebab-case name in column two, so one scan over the document
//! recovers the full documented catalog. The test fails when a rule
//! ships without a documentation row, when a documented rule no
//! longer exists, when a name drifts, or when an id is documented
//! twice — the exact ways the catalog and the design doc fall out of
//! step.

use std::collections::BTreeMap;

use sjos_planck::{rule_catalog_json, Rule};

/// `(id, name)` pairs of every `| PLxxx | name | ...` table row in
/// DESIGN.md, in document order.
fn design_rows() -> Vec<(String, String)> {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("DESIGN.md is readable");
    let mut rows = Vec::new();
    for line in design.lines() {
        let mut cols = line.split('|').map(str::trim);
        let Some("") = cols.next() else { continue };
        let Some(id) = cols.next() else { continue };
        if id.len() != 5 || !id.starts_with("PL") || !id[2..].bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let name = cols.next().expect("a rule row has a name column");
        rows.push((id.to_string(), name.to_string()));
    }
    rows
}

#[test]
fn design_rule_tables_match_the_live_catalog_exactly() {
    let rows = design_rows();
    assert!(rows.len() >= Rule::ALL.len(), "DESIGN.md lost its rule tables");

    let mut documented: BTreeMap<String, String> = BTreeMap::new();
    for (id, name) in rows {
        let prev = documented.insert(id.clone(), name);
        assert!(prev.is_none(), "{id} is documented twice in DESIGN.md");
    }

    let catalog: BTreeMap<&str, &str> = Rule::ALL.iter().map(|r| (r.id(), r.name())).collect();
    assert_eq!(catalog.len(), Rule::ALL.len(), "duplicate rule ids in the catalog");

    for (id, name) in &catalog {
        let doc_name = documented
            .get(*id)
            .unwrap_or_else(|| panic!("{id} ({name}) has no DESIGN.md table row"));
        assert_eq!(doc_name, name, "{id}: DESIGN.md name drifted from the catalog");
    }
    for id in documented.keys() {
        assert!(
            catalog.contains_key(id.as_str()),
            "{id} is documented in DESIGN.md but absent from the catalog"
        );
    }
}

/// The machine-readable catalog (`planlint rules --json` prints this
/// verbatim) carries every rule id and name too — the CLI surface
/// cannot drift from `Rule::ALL` either.
#[test]
fn rules_json_carries_every_rule() {
    let json = rule_catalog_json();
    for rule in Rule::ALL {
        let id_field = format!("\"id\":\"{}\"", rule.id());
        let name_field = format!("\"name\":\"{}\"", rule.name());
        assert!(json.contains(&id_field), "{} missing from rules --json", rule.id());
        assert!(json.contains(&name_field), "{} name missing from rules --json", rule.id());
    }
}
