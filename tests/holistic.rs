//! The holistic twig join must agree with both the naive evaluator
//! and the binary structural-join plans on every workload query, and
//! on arbitrary generated documents/patterns.

use proptest::prelude::*;

use sjos::datagen::{dblp::dblp, mbench::mbench, paper_queries, pers::pers, DataSet, GenConfig};
use sjos::{Algorithm, Database};
use sjos_exec::naive;

#[test]
fn holistic_matches_binary_plans_on_all_paper_queries() {
    let dbs = [
        (DataSet::Pers, Database::from_document(pers(GenConfig::sized(3_000)))),
        (DataSet::Dblp, Database::from_document(dblp(GenConfig::sized(3_000)))),
        (DataSet::Mbench, Database::from_document(mbench(GenConfig::sized(1_500)))),
    ];
    for q in paper_queries() {
        let db = &dbs.iter().find(|(ds, _)| *ds == q.dataset).unwrap().1;
        let pattern = q.pattern();
        let binary = db
            .query_with(q.query, Algorithm::Dpp { lookahead: true })
            .unwrap()
            .result
            .canonical_rows();
        let twig = db.holistic(&pattern).unwrap();
        assert_eq!(twig.rows, binary, "{}", q.id);
    }
}

#[test]
fn holistic_matches_naive_on_edge_cases() {
    for (xml, query) in [
        ("<a/>", "//a"),
        ("<a><b/></a>", "//a/b"),
        ("<a><b/></a>", "//b/a"),            // no match
        ("<m><m><m/></m></m>", "//m//m//m"), // deep self-join
        ("<r><a><b/><c/></a><a><b/></a></r>", "//a[./b][./c]"),
        ("<r><x>v</x><x>w</x></r>", "//r/x[text()='v']"),
    ] {
        let doc = sjos::Document::parse(xml).unwrap();
        let pattern = sjos::parse_pattern(query).unwrap();
        let expected = naive::evaluate(&doc, &pattern);
        let db = Database::from_document(doc);
        let got = db.holistic(&pattern).unwrap();
        assert_eq!(got.rows, expected, "{xml} {query}");
    }
}

#[test]
fn holistic_path_solution_counts_are_consistent() {
    let db = Database::from_document(pers(GenConfig::sized(3_000)));
    let pattern = sjos::parse_pattern("//manager[.//employee/name][.//department]").unwrap();
    let res = db.holistic(&pattern).unwrap();
    assert_eq!(res.metrics.matches as usize, res.rows.len());
    assert!(res.metrics.path_solutions >= res.metrics.matches.min(1));
    assert!(res.metrics.stream_elements > 0);
}

const TAGS: &[&str] = &["t0", "t1", "t2"];

#[derive(Debug, Clone)]
struct TreeNode {
    tag: usize,
    children: Vec<TreeNode>,
}

fn tree_strategy() -> impl Strategy<Value = TreeNode> {
    let leaf = (0..TAGS.len()).prop_map(|tag| TreeNode { tag, children: vec![] });
    leaf.prop_recursive(4, 40, 4, |inner| {
        (0..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| TreeNode { tag, children })
    })
}

#[derive(Debug, Clone)]
struct PatNode {
    tag: usize,
    desc_axis: bool,
    children: Vec<PatNode>,
}

fn pattern_strategy() -> impl Strategy<Value = PatNode> {
    let leaf = (0..TAGS.len(), any::<bool>()).prop_map(|(tag, ax)| PatNode {
        tag,
        desc_axis: ax,
        children: vec![],
    });
    leaf.prop_recursive(3, 5, 2, |inner| {
        (0..TAGS.len(), any::<bool>(), prop::collection::vec(inner, 0..3))
            .prop_map(|(tag, ax, children)| PatNode { tag, desc_axis: ax, children })
    })
}

fn build_doc(root: &TreeNode) -> sjos::Document {
    fn rec(n: &TreeNode, b: &mut sjos::xml::DocumentBuilder) {
        b.start_element(TAGS[n.tag]);
        for c in &n.children {
            rec(c, b);
        }
        b.end_element();
    }
    let mut b = sjos::xml::DocumentBuilder::new();
    b.start_element("root");
    rec(root, &mut b);
    b.end_element();
    b.finish()
}

fn build_pattern(root: &PatNode) -> sjos::Pattern {
    fn rec(n: &PatNode, parent: sjos::pattern::PnId, p: &mut sjos::Pattern) {
        for c in &n.children {
            let axis = if c.desc_axis {
                sjos::pattern::Axis::Descendant
            } else {
                sjos::pattern::Axis::Child
            };
            let id = p.add_child(parent, axis, TAGS[c.tag]);
            rec(c, id, p);
        }
    }
    let mut p = sjos::Pattern::with_root(TAGS[root.tag]);
    let r = p.root();
    rec(root, r, &mut p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn holistic_equals_naive_on_arbitrary_inputs(tree in tree_strategy(), pat in pattern_strategy()) {
        let doc = build_doc(&tree);
        let pattern = build_pattern(&pat);
        let expected = naive::evaluate(&doc, &pattern);
        let db = Database::from_document(doc);
        let got = db.holistic(&pattern).unwrap();
        prop_assert_eq!(got.rows, expected);
    }
}
