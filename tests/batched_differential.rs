//! Differential testing of the batched executor: over seeded generated
//! documents, every optimizer's plan — plus seeded random valid plans —
//! executed at several batch granularities must return exactly the
//! bindings the naive navigational evaluator finds, and the stack
//! traffic counters must not move with the batch size.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sjos::core::random_plan;
use sjos::datagen::{dblp::dblp, mbench::mbench, pers::pers, GenConfig};
use sjos::{Algorithm, Database, PlanNode};
use sjos_exec::{execute_with_batch_rows, naive, BATCH_ROWS};

/// Granularities under test: the tuple-at-a-time degenerate case, an
/// awkward size that never divides the row counts, and production.
const BATCH_SIZES: [usize; 3] = [1, 3, BATCH_ROWS];

fn optimizers() -> Vec<Algorithm> {
    vec![
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: true },
        Algorithm::DpapEb { te: 2 },
        Algorithm::DpapLd,
        Algorithm::Fp,
    ]
}

fn check(db: &Database, query: &str, seed: u64) {
    let pattern = sjos::parse_pattern(query).unwrap();
    let expected = naive::evaluate(db.document(), &pattern);

    let mut plans: Vec<(String, PlanNode)> = optimizers()
        .into_iter()
        .map(|alg| (alg.name().to_string(), db.optimize(&pattern, alg).unwrap().plan))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..2 {
        plans.push((format!("random#{i}"), random_plan(&pattern, &mut rng)));
    }

    for (name, plan) in &plans {
        let mut stack_traffic = Vec::new();
        for &rows in &BATCH_SIZES {
            let result = execute_with_batch_rows(db.store(), &pattern, plan, rows)
                .unwrap_or_else(|e| panic!("{query} via {name}: {e}"));
            assert_eq!(
                result.canonical_rows(),
                expected,
                "{query} via {name} at batch_rows={rows} (seed {seed})"
            );
            stack_traffic.push((result.metrics.stack_pushes, result.metrics.stack_pops));
        }
        assert!(
            stack_traffic.windows(2).all(|w| w[0] == w[1]),
            "{query} via {name}: stack traffic varies with batch size: {stack_traffic:?}"
        );
    }
}

#[test]
fn pers_documents_across_seeds() {
    for seed in [1u64, 7, 42] {
        let db = Database::from_document(pers(GenConfig { target_nodes: 1_200, seed }));
        check(&db, "//manager//employee/name", seed);
        check(&db, "//manager[.//employee/name][./department/name]", seed);
        check(&db, "//manager//manager//employee", seed);
    }
}

#[test]
fn dblp_documents_across_seeds() {
    for seed in [3u64, 11] {
        let db = Database::from_document(dblp(GenConfig { target_nodes: 1_500, seed }));
        check(&db, "//dblp/article[./author][./title]", seed);
        check(&db, "//dblp[./article/author][./inproceedings/title]", seed);
    }
}

#[test]
fn mbench_documents_across_seeds() {
    for seed in [5u64, 23] {
        let db = Database::from_document(mbench(GenConfig { target_nodes: 1_000, seed }));
        check(&db, "//eNest/eNest/eOccasional", seed);
        check(&db, "//mbench/eNest//eOccasional", seed);
    }
}

#[test]
fn value_predicates_across_batch_sizes() {
    let db = Database::from_document(pers(GenConfig { target_nodes: 1_500, seed: 9 }));
    check(&db, "//department[./name[text()='sales']]/employee/name", 9);
}
