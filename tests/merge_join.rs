//! The MPMGJN merge join as a third algorithm in the optimizer's
//! toolbox: plans using it must produce identical results, and the
//! optimizer must pick it exactly when the cost model says it wins.

use sjos::datagen::{pers::pers, GenConfig};
use sjos::exec::{JoinAlgo, PlanNode};
use sjos::pattern::PnId;
use sjos::{Algorithm, Database};
use sjos_exec::naive;

fn count_algo(plan: &PlanNode, algo: JoinAlgo) -> usize {
    match plan {
        PlanNode::IndexScan { .. } => 0,
        PlanNode::Sort { input, .. } => count_algo(input, algo),
        PlanNode::StructuralJoin { left, right, algo: a, .. } => {
            usize::from(*a == algo) + count_algo(left, algo) + count_algo(right, algo)
        }
    }
}

#[test]
fn merge_join_plans_execute_correctly() {
    let db = Database::from_document(pers(GenConfig::sized(1_500)));
    let pattern = sjos::parse_pattern("//manager//department").unwrap();
    let expected = naive::evaluate(db.document(), &pattern);
    // Hand-build a MergeJoin plan.
    let plan = PlanNode::StructuralJoin {
        left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
        right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
        anc: PnId(0),
        desc: PnId(1),
        axis: sjos::pattern::Axis::Descendant,
        algo: JoinAlgo::MergeJoin,
    };
    let res = db.execute(&pattern, &plan).unwrap();
    assert_eq!(res.canonical_rows(), expected);
    assert!(res.metrics.merge_rescans > 0, "merge join must count rescans");
    assert_eq!(res.metrics.stack_pushes, 0, "no stacks involved");
}

#[test]
fn merge_join_output_is_ancestor_ordered() {
    let db = Database::from_document(pers(GenConfig::sized(1_500)));
    let pattern = sjos::parse_pattern("//manager//employee").unwrap();
    let plan = PlanNode::StructuralJoin {
        left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
        right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
        anc: PnId(0),
        desc: PnId(1),
        axis: sjos::pattern::Axis::Descendant,
        algo: JoinAlgo::MergeJoin,
    };
    assert_eq!(plan.ordered_by(), PnId(0));
    let res = db.execute(&pattern, &plan).unwrap();
    let col = res.schema.position(PnId(0)).unwrap();
    let starts: Vec<u32> = res.tuples.iter().map(|t| t[col].region.start).collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn merge_join_in_larger_plans_agrees_with_stack_tree() {
    let db = Database::from_document(pers(GenConfig::sized(2_000)));
    let q = "//manager[.//employee/name][./department]";
    let pattern = sjos::parse_pattern(q).unwrap();
    let expected = naive::evaluate(db.document(), &pattern);
    // Take the DPP plan and rewrite every ancestor-ordered stack-tree
    // join into a merge join; results must not change.
    fn rewrite(plan: &PlanNode) -> PlanNode {
        match plan {
            PlanNode::IndexScan { pnode } => PlanNode::IndexScan { pnode: *pnode },
            PlanNode::Sort { input, by } => {
                PlanNode::Sort { input: Box::new(rewrite(input)), by: *by }
            }
            PlanNode::StructuralJoin { left, right, anc, desc, axis, algo } => {
                PlanNode::StructuralJoin {
                    left: Box::new(rewrite(left)),
                    right: Box::new(rewrite(right)),
                    anc: *anc,
                    desc: *desc,
                    axis: *axis,
                    algo: if *algo == JoinAlgo::StackTreeAnc { JoinAlgo::MergeJoin } else { *algo },
                }
            }
        }
    }
    let optimized = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
    let rewritten = rewrite(&optimized.plan);
    let a = db.execute(&pattern, &optimized.plan).unwrap();
    let b = db.execute(&pattern, &rewritten).unwrap();
    assert_eq!(a.canonical_rows(), expected);
    assert_eq!(b.canonical_rows(), expected);
}

#[test]
fn optimizer_picks_merge_join_when_model_prefers_it() {
    // Make Anc buffering catastrophically expensive: MPMGJN (priced
    // in stack ops) becomes the cheaper ancestor-ordered option.
    let doc = pers(GenConfig::sized(2_000));
    let expensive_io = sjos::CostModel {
        factors: sjos::core::CostFactors { f_i: 1.0, f_s: 1.5, f_io: 1_000.0, f_st: 1.0 },
        desc_variant: Default::default(),
    };
    let db = Database::from_document_with(doc, sjos::StoreConfig::default(), expensive_io);
    let pattern = sjos::parse_pattern("//manager[.//employee/name][./department]").unwrap();
    let optimized = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
    let mj = count_algo(&optimized.plan, JoinAlgo::MergeJoin);
    let anc = count_algo(&optimized.plan, JoinAlgo::StackTreeAnc);
    assert!(
        mj > 0 || anc == 0,
        "with f_io=1000, no plain Stack-Tree-Anc should survive: {}",
        optimized.plan
    );
    // And the plan still runs correctly.
    let expected = naive::evaluate(db.document(), &pattern);
    let res = db.execute(&pattern, &optimized.plan).unwrap();
    assert_eq!(res.canonical_rows(), expected);
}

#[test]
fn default_model_prefers_stack_tree_on_large_outputs() {
    let db = Database::from_document(pers(GenConfig::sized(3_000)));
    // Q.Pers.3.d has large intermediate outputs, where MPMGJN's
    // rescan term dominates; the default model should avoid it.
    let pattern =
        sjos::parse_pattern("//manager[.//employee/name][.//manager/department/name]").unwrap();
    let optimized = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
    assert_eq!(count_algo(&optimized.plan, JoinAlgo::MergeJoin), 0, "{}", optimized.plan);
}
