//! Optimizer-quality guarantees on realistic generated data: DP and
//! DPP agree on the optimum, heuristics never beat it, plan-class
//! restrictions hold, and the search-effort ordering of Table 2
//! emerges.

use sjos::datagen::{paper_queries, pers::pers, DataSet, GenConfig};
use sjos::{Algorithm, Database};

fn pers_db() -> Database {
    Database::from_document(pers(GenConfig::sized(5_000)))
}

#[test]
fn dp_and_dpp_find_the_same_cost_on_all_pers_queries() {
    let db = pers_db();
    for q in paper_queries().into_iter().filter(|q| q.dataset == DataSet::Pers) {
        let pattern = q.pattern();
        let dp = db.optimize(&pattern, Algorithm::Dp).unwrap();
        let dpp = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
        let dpp_nl = db.optimize(&pattern, Algorithm::Dpp { lookahead: false }).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / a.max(b).max(1.0);
        assert!(rel(dp.estimated_cost, dpp.estimated_cost) < 1e-9, "{}", q.id);
        assert!(rel(dp.estimated_cost, dpp_nl.estimated_cost) < 1e-9, "{}", q.id);
    }
}

#[test]
fn heuristics_never_beat_the_optimum() {
    let db = pers_db();
    for q in paper_queries().into_iter().filter(|q| q.dataset == DataSet::Pers) {
        let pattern = q.pattern();
        let opt = db.optimize(&pattern, Algorithm::Dp).unwrap().estimated_cost;
        for alg in [
            Algorithm::DpapEb { te: 1 },
            Algorithm::DpapEb { te: 3 },
            Algorithm::DpapLd,
            Algorithm::Fp,
        ] {
            let h = db.optimize(&pattern, alg).unwrap().estimated_cost;
            assert!(h >= opt - 1e-6, "{} via {}: {h} < {opt}", q.id, alg.name());
        }
    }
}

#[test]
fn fp_plans_are_pipelined_ld_plans_are_left_deep() {
    let db = pers_db();
    for q in paper_queries().into_iter().filter(|q| q.dataset == DataSet::Pers) {
        let pattern = q.pattern();
        let fp = db.optimize(&pattern, Algorithm::Fp).unwrap();
        assert!(fp.plan.is_fully_pipelined(), "{}: {}", q.id, fp.plan);
        let ld = db.optimize(&pattern, Algorithm::DpapLd).unwrap();
        assert!(ld.plan.is_left_deep(), "{}: {}", q.id, ld.plan);
    }
}

#[test]
fn search_effort_ordering_on_the_fig1_query() {
    // Table 2's ordering on Q.Pers.3.d: DP > DPP' > DPP > DPAP-EB >
    // DPAP-LD > FP in plans considered.
    let db = pers_db();
    let pattern = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap().pattern();
    let count = |alg| db.optimize(&pattern, alg).unwrap().stats.plans_considered;
    let dp = count(Algorithm::Dp);
    let dpp_nl = count(Algorithm::Dpp { lookahead: false });
    let dpp = count(Algorithm::Dpp { lookahead: true });
    let eb = count(Algorithm::DpapEb { te: 5 });
    let fp = count(Algorithm::Fp);
    assert!(dp > dpp, "DP {dp} !> DPP {dpp}");
    assert!(dpp_nl >= dpp, "DPP' {dpp_nl} !>= DPP {dpp}");
    assert!(eb <= dpp, "EB {eb} !<= DPP {dpp}");
    assert!(fp < dpp, "FP {fp} !< DPP {dpp}");
    assert!(fp < dp / 2, "FP {fp} must explore far less than DP {dp}");
}

#[test]
fn growing_te_converges_to_dpp() {
    let db = pers_db();
    let pattern = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap().pattern();
    let opt = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
    let mut costs = vec![];
    for te in 1..=pattern.len() {
        let eb = db.optimize(&pattern, Algorithm::DpapEb { te }).unwrap();
        costs.push(eb.estimated_cost);
    }
    // Larger Te: plan quality is (weakly) increasing towards optimal.
    let last = *costs.last().unwrap();
    assert!(last >= opt.estimated_cost - 1e-6);
    let best_seen = costs.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(best_seen >= opt.estimated_cost - 1e-6, "EB can never beat DPP");
}

#[test]
fn bad_plans_are_worse_than_optimized_plans() {
    let db = pers_db();
    for q in paper_queries().into_iter().filter(|q| q.dataset == DataSet::Pers) {
        let pattern = q.pattern();
        let opt = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
        let bad =
            db.optimize(&pattern, Algorithm::WorstRandom { samples: 64, seed: 2003 }).unwrap();
        assert!(
            bad.estimated_cost >= opt.estimated_cost,
            "{}: bad {} < opt {}",
            q.id,
            bad.estimated_cost,
            opt.estimated_cost
        );
    }
}

#[test]
fn optimal_plan_executes_faster_than_bad_plan_at_scale() {
    // The headline claim: optimization pays. Measured on a folded
    // Pers instance where intermediate results diverge.
    use sjos::datagen::fold_document;
    let base = pers(GenConfig::sized(5_000));
    let doc = fold_document(&base, 4);
    let db = Database::from_document(doc);
    let pattern = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap().pattern();
    let opt = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
    let bad = db.optimize(&pattern, Algorithm::WorstRandom { samples: 64, seed: 7 }).unwrap();
    let opt_res = db.execute(&pattern, &opt.plan).unwrap();
    let bad_res = db.execute(&pattern, &bad.plan).unwrap();
    assert_eq!(opt_res.canonical_rows(), bad_res.canonical_rows());
    // Compare work, not wall clock (robust in CI): the bad plan must
    // shuffle at least as many tuples through its operators.
    assert!(
        bad_res.metrics.produced_tuples >= opt_res.metrics.produced_tuples,
        "bad {} < opt {}",
        bad_res.metrics.produced_tuples,
        opt_res.metrics.produced_tuples
    );
}
