//! End-to-end correctness: every optimizer's plan, executed through
//! the full storage + executor stack, must return exactly the matches
//! the naive navigational evaluator finds.

use sjos::datagen::{dblp::dblp, mbench::mbench, pers::pers, GenConfig};
use sjos::{Algorithm, Database};
use sjos_exec::naive;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: true },
        Algorithm::Dpp { lookahead: false },
        Algorithm::DpapEb { te: 1 },
        Algorithm::DpapEb { te: 4 },
        Algorithm::DpapLd,
        Algorithm::Fp,
        Algorithm::WorstRandom { samples: 5, seed: 99 },
    ]
}

fn check_queries(db: &Database, queries: &[&str]) {
    for q in queries {
        let pattern = sjos::parse_pattern(q).unwrap();
        let expected = naive::evaluate(db.document(), &pattern);
        for alg in algorithms() {
            let out = db.query_with(q, alg).unwrap();
            let got = out.result.canonical_rows();
            assert_eq!(
                got.len(),
                expected.len(),
                "{q} via {}: {} rows, naive {}",
                alg.name(),
                got.len(),
                expected.len()
            );
            assert_eq!(got, expected, "{q} via {}", alg.name());
        }
    }
}

#[test]
fn pers_queries_match_naive_evaluation() {
    let db = Database::from_document(pers(GenConfig::sized(2_000)));
    check_queries(
        &db,
        &[
            "//manager//employee/name",
            "//manager[.//employee/name][./department/name]",
            "//manager[.//employee/name][.//manager/department/name]",
            "//manager[.//department/name][.//manager/employee/name]",
            "//manager//manager//employee",
            "//personnel//department/employee",
        ],
    );
}

#[test]
fn dblp_queries_match_naive_evaluation() {
    let db = Database::from_document(dblp(GenConfig::sized(2_000)));
    check_queries(
        &db,
        &[
            "//dblp/article[./author][./title]",
            "//dblp[./article/author][./inproceedings/title]",
            "//article/author",
            "//inproceedings[./cite]/year",
        ],
    );
}

#[test]
fn mbench_queries_match_naive_evaluation() {
    let db = Database::from_document(mbench(GenConfig::sized(1_200)));
    check_queries(
        &db,
        &[
            "//eNest/eNest/eOccasional",
            "//eNest[./eOccasional]/eNest/eNest",
            "//mbench/eNest//eOccasional",
        ],
    );
}

#[test]
fn value_predicates_match_naive_evaluation() {
    let db = Database::from_document(pers(GenConfig::sized(1_500)));
    check_queries(
        &db,
        &[
            "//manager/department[./name[text()='research']]",
            "//department[./name[text()='sales']]/employee/name",
        ],
    );
}

#[test]
fn order_by_plans_deliver_sorted_output() {
    let db = Database::from_document(pers(GenConfig::sized(1_500)));
    let mut pattern = sjos::parse_pattern("//manager//employee/name").unwrap();
    for target in 0..3u16 {
        pattern.set_order_by(sjos::pattern::PnId(target));
        for alg in [Algorithm::Dpp { lookahead: true }, Algorithm::Fp] {
            let optimized = db.optimize(&pattern, alg).unwrap();
            let result = db.execute(&pattern, &optimized.plan).unwrap();
            let col =
                result.schema.position(sjos::pattern::PnId(target)).expect("order-by column bound");
            let starts: Vec<u32> = result.tuples.iter().map(|t| t[col].region.start).collect();
            assert!(
                starts.windows(2).all(|w| w[0] <= w[1]),
                "{} output not ordered by node {target}",
                alg.name()
            );
        }
    }
}

#[test]
fn tiny_buffer_pool_does_not_change_answers() {
    let doc = pers(GenConfig::sized(4_000));
    let expected = {
        let db = Database::from_document(doc.clone());
        db.query("//manager//employee/name").unwrap().result.canonical_rows()
    };
    // A two-frame pool forces constant eviction; answers must not
    // change (operators buffer one page of records at a time and never
    // hold pins across steps).
    let db_small = Database::from_document_with(
        doc,
        sjos::StoreConfig {
            buffer_pool_bytes: 2 * sjos::storage::PAGE_SIZE,
            ..sjos::StoreConfig::default()
        },
        sjos::CostModel::default(),
    );
    let got = db_small.query("//manager//employee/name").unwrap();
    assert_eq!(got.result.canonical_rows(), expected);
    assert!(got.result.io.evictions > 0, "small pool must actually evict");
}
