//! Integration tests pinning `planlint`'s command-line contract:
//! exit status 0 when every rule passes, 1 when any rule fires, 2 on
//! usage or I/O errors — across every subcommand — plus the shape of
//! the machine-readable `--json` output CI depends on.

use std::process::{Command, Output};

fn planlint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_planlint")).args(args).output().expect("planlint binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("planlint exits normally")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_lint_exits_zero() {
    let out = planlint(&["--query", "//a/b/c"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn mutated_plan_exits_one() {
    let out = planlint(&["--query", "//a/b/c", "--mutate", "flip-axis"]);
    assert_eq!(code(&out), 1);
    assert!(stdout(&out).contains("PL0"), "a rule id names the violation");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[] as &[&str],
        &["--query"],
        &["--bogus-flag"],
        &["--query", "//a/b/c", "--gen", "nope:100"],
        &["--query", "//a/b/c", "--xml", "/nonexistent/file.xml"],
        &["certify", "--query", "//a/b/c", "--mutate", "drop-sort"],
        &["--query", "//a/b/c", "--corrupt", "cheap-prune"],
        &["--query", "//a/b/c", "--memory-budget", "64MiB"],
        &["admit", "--query", "//a/b/c", "--memory-budget", "64QiB"],
        &["admit", "--query", "//a/b/c", "--batch-rows", "0"],
    ] {
        let out = planlint(args);
        assert_eq!(code(&out), 2, "args {args:?} must be a usage error");
    }
}

#[test]
fn dataflow_subcommand_follows_the_contract() {
    let out = planlint(&["dataflow", "--query", "//a/b/c", "--algo", "fp"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let out = planlint(&["dataflow", "--query", "//a/b/c", "--mutate", "insert-input-sort"]);
    assert_eq!(code(&out), 1);
}

#[test]
fn certify_subcommand_follows_the_contract() {
    let out = planlint(&["certify", "--query", "//a/b/c"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let out = planlint(&["certify", "--query", "//a/b/c", "--corrupt", "inflate-ubcost"]);
    assert_eq!(code(&out), 1);
}

#[test]
fn admit_subcommand_follows_the_contract() {
    // The sample document fits the default budget comfortably.
    let out = planlint(&["admit", "--query", "//a/b/c"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("ADMITTED"), "{}", stdout(&out));

    // A starved budget is a finding (exit 1), not a usage error.
    let out = planlint(&["admit", "--query", "//a/b/c", "--memory-budget", "16B"]);
    assert_eq!(code(&out), 1);
    assert!(stdout(&out).contains("REJECTED"), "{}", stdout(&out));

    let out = planlint(&["admit", "--query", "//a/b/c", "--batch-budget", "1"]);
    assert_eq!(code(&out), 1);
}

#[test]
fn admit_json_carries_bounds_and_report() {
    let out = planlint(&["admit", "--query", "//a/b/c", "--memory-budget", "64MiB", "--json"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    for key in [
        "\"bounds\"",
        "\"peak_bytes\"",
        "\"batch_pulls\"",
        "\"memory_budget\":67108864",
        "\"clean\":true",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
}

#[test]
fn rules_subcommand_needs_no_query() {
    let out = planlint(&["rules"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    for id in ["PL001", "PL034", "PL050", "PL060", "PL064"] {
        assert!(text.contains(id), "missing {id}");
    }
}

#[test]
fn rules_json_lists_the_whole_catalog() {
    let out = planlint(&["rules", "--json"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("\"id\":\"PL060\""), "{text}");
    assert!(text.contains("\"name\":\"bound-sound\""), "{text}");
    assert!(text.contains("\"severity\":\"warning\""), "redundant-sort is a warning");
    // One entry per rule, ids unique.
    let count = text.matches("\"id\":\"PL0").count();
    assert_eq!(count, sjos::planck::Rule::ALL.len());
}

#[test]
fn json_report_is_emitted_on_findings() {
    let out = planlint(&["--query", "//a/b/c", "--mutate", "flip-axis", "--json"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("\"clean\":false"), "{text}");
    assert!(text.contains("\"rule\":"), "{text}");
}

#[test]
fn conc_subcommand_certifies_the_workspace_clean() {
    let out = planlint(&["conc"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("static pass"), "names the static prong: {text}");
    assert!(text.contains("explorer"), "names the dynamic prong: {text}");
}

#[test]
fn conc_json_reports_files_and_explorer_outcomes() {
    let out = planlint(&["conc", "--json"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    for field in ["\"files\":", "\"explorer\":", "\"schedules\":", "\"clean\":true"] {
        assert!(text.contains(field), "{field} missing from conc --json: {text}");
    }
}

/// The explorer's search order is seed-pinned: two runs over the same
/// tree must emit byte-identical JSON (schedule counts included), so
/// CI replays the identical schedule set every time.
#[test]
fn conc_json_is_deterministic_across_runs() {
    let a = planlint(&["conc", "--json"]);
    let b = planlint(&["conc", "--json"]);
    assert_eq!(code(&a), 0);
    assert_eq!(stdout(&a), stdout(&b), "conc --json must be run-to-run deterministic");
}

#[test]
fn conc_selftest_proves_non_vacuity() {
    let out = planlint(&["conc", "--selftest"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn conc_usage_errors_exit_two() {
    // An empty --root has no sources to certify; --root outside conc
    // is a flag misuse.
    for args in [
        &["conc", "--root", "/nonexistent/dir"] as &[&str],
        &["--query", "//a/b/c", "--root", "."],
        &["rules", "--root", "."],
    ] {
        let out = planlint(args);
        assert_eq!(code(&out), 2, "args {args:?} must be a usage error");
    }
}
