//! Wildcard (`*`) pattern nodes and the `order by` query clause,
//! end-to-end across every evaluation strategy.

use sjos::datagen::{pers::pers, GenConfig};
use sjos::{Algorithm, Database};
use sjos_exec::naive;

fn db() -> Database {
    Database::from_document(pers(GenConfig::sized(1_200)))
}

#[test]
fn wildcard_queries_match_naive() {
    let db = db();
    for q in [
        "//manager/*",
        "//manager/*/name",
        "//*/employee",
        "//manager[./*/name]//employee",
        "//personnel//*//name",
    ] {
        let pattern = sjos::parse_pattern(q).unwrap();
        let expected = naive::evaluate(db.document(), &pattern);
        for alg in [Algorithm::Dpp { lookahead: true }, Algorithm::Fp] {
            let got = db.query_with(q, alg).unwrap().result.canonical_rows();
            assert_eq!(got, expected, "{q} via {}", alg.name());
        }
        let twig = db.holistic(&pattern).unwrap();
        assert_eq!(twig.rows, expected, "{q} via holistic");
    }
}

#[test]
fn wildcard_scan_uses_the_heap_file() {
    let db = db();
    let out = db.query("//manager/*").unwrap();
    // A wildcard scan must read every element record once.
    assert!(
        out.result.metrics.scanned_records >= db.document().len() as u64,
        "{} scanned < {} elements",
        out.result.metrics.scanned_records,
        db.document().len()
    );
}

#[test]
fn wildcard_estimates_use_total_cardinality() {
    let db = db();
    let pattern = sjos::parse_pattern("//*").unwrap();
    let est = db.estimates(&pattern);
    assert_eq!(est.node_cardinality(sjos::pattern::PnId(0)), db.document().len() as f64);
}

#[test]
fn order_by_clause_orders_execution_output() {
    let db = db();
    for (q, col_pn) in [
        ("//manager//employee/name order by #0", 0usize),
        ("//manager//employee/name order by employee", 1),
        ("//manager//employee/name order by name", 2),
    ] {
        let pattern = sjos::parse_pattern(q).unwrap();
        assert_eq!(pattern.order_by(), Some(sjos::pattern::PnId(col_pn as u16)));
        for alg in [Algorithm::Dpp { lookahead: true }, Algorithm::Fp] {
            let out = db.query_with(q, alg).unwrap();
            let col = out.result.schema.position(sjos::pattern::PnId(col_pn as u16)).unwrap();
            let starts: Vec<u32> = out.result.tuples.iter().map(|t| t[col].region.start).collect();
            assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{q} via {} not ordered", alg.name());
        }
    }
}

#[test]
fn wildcard_with_value_predicate() {
    let db = Database::from_xml("<r><a>x</a><b>x</b><c>y</c><d><e>x</e></d></r>").unwrap();
    let q = "//r/*[text()='x']";
    let pattern = sjos::parse_pattern(q).unwrap();
    let expected = naive::evaluate(db.document(), &pattern);
    assert_eq!(expected.len(), 2, "a and b only (e is not a child of r)");
    let got = db.query(q).unwrap().result.canonical_rows();
    assert_eq!(got, expected);
}
