//! Chaos suite: the paper's Table-1 queries executed under hundreds
//! of seeded storage fault plans.
//!
//! The discipline under test is the robustness contract of the whole
//! stack: a query against a misbehaving disk either *recovers* (the
//! buffer pool's retries absorb the faults and the answer is
//! bit-identical to the fault-free run) or *fails with a typed
//! storage error* — never a panic, never a silently wrong answer.

use sjos::datagen::{paper_queries, pers::pers, DataSet, GenConfig};
use sjos::storage::{FaultPlan, RetryPolicy, StoreConfig, XmlStore};
use sjos::{Algorithm, Database, EngineError};

/// Seeds swept per fault preset; two presets per seed gives the suite
/// its ≥200 distinct seeded fault plans.
const SEEDS: u64 = 100;

#[test]
fn table1_queries_survive_two_hundred_seeded_fault_plans() {
    let doc = pers(GenConfig::sized(1_500));
    let db = Database::from_document(doc.clone());

    // Optimize each Pers query and record its fault-free answer once.
    let cases: Vec<_> = paper_queries()
        .into_iter()
        .filter(|q| q.dataset == DataSet::Pers)
        .map(|q| {
            let pattern = q.pattern();
            let optimized =
                db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes");
            let baseline =
                db.execute(&pattern, &optimized.plan).expect("clean run").canonical_rows();
            (q.id, pattern, optimized.plan, baseline)
        })
        .collect();
    assert!(!cases.is_empty(), "Pers workload must not be empty");

    let store = XmlStore::load_faulty(
        doc,
        StoreConfig { retry: RetryPolicy::no_backoff(4), ..StoreConfig::default() },
        FaultPlan::none(),
    );
    let fault = store.fault().expect("faulty store exposes its fault handle").clone();

    let mut plans_run = 0u32;
    let mut recovered = 0u32;
    let mut failed = 0u32;
    for seed in 0..SEEDS {
        for plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            // Quiesce, drop every cached frame so the next queries hit
            // physical reads again, then arm the seeded plan.
            fault.set_plan(FaultPlan::none());
            store.pool().reset_cache().expect("cache reset on a quiet disk");
            fault.set_plan(plan);
            plans_run += 1;
            for (id, pattern, plan_node, baseline) in &cases {
                match sjos::execute(&store, pattern, plan_node) {
                    Ok(res) => {
                        assert_eq!(
                            &res.canonical_rows(),
                            baseline,
                            "{id} diverged from the fault-free answer after recovery \
                             (seed {seed})"
                        );
                        recovered += 1;
                    }
                    Err(EngineError::Storage(_)) => failed += 1,
                    Err(e) => {
                        panic!("{id}: non-storage failure under disk faults (seed {seed}): {e}")
                    }
                }
            }
        }
    }

    assert_eq!(plans_run, 2 * SEEDS as u32);
    assert!(recovered > 0, "no query ever recovered — retry budget is broken");
    assert!(failed > 0, "no fault plan ever defeated the retries — injection is broken");
}

/// The concurrent variant of the contract: eight sessions hammer ONE
/// shared faulty store at once. Every execution must still end
/// bit-identical to the fault-free baseline or in a typed storage
/// error — never a panic, a wrong answer, or a deadlock (a hang here
/// fails the suite via the harness timeout).
#[test]
fn eight_concurrent_sessions_survive_seeded_faults_on_one_shared_store() {
    let doc = pers(GenConfig::sized(1_500));
    let db = Database::from_document(doc.clone());
    let cases: Vec<_> = paper_queries()
        .into_iter()
        .filter(|q| q.dataset == DataSet::Pers)
        .map(|q| {
            let pattern = q.pattern();
            let optimized =
                db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes");
            let baseline =
                db.execute(&pattern, &optimized.plan).expect("clean run").canonical_rows();
            (q.id, pattern, optimized.plan, baseline)
        })
        .collect();

    let store = XmlStore::load_faulty(
        doc,
        StoreConfig { retry: RetryPolicy::no_backoff(4), ..StoreConfig::default() },
        FaultPlan::none(),
    );
    let fault = store.fault().expect("faulty store exposes its fault handle").clone();

    const THREADS: usize = 8;
    const ROUNDS: u64 = 8;
    const PASSES: usize = 2;
    let mut recovered = 0u64;
    let mut failed = 0u64;
    for round in 0..ROUNDS {
        // Re-arm between rounds only, while the store is quiescent:
        // the cache reset needs an unpinned pool, and all threads have
        // joined by the end of the previous round.
        fault.set_plan(FaultPlan::none());
        store.pool().reset_cache().expect("cache reset on a quiet disk");
        fault.set_plan(if round.is_multiple_of(2) {
            FaultPlan::light(round)
        } else {
            FaultPlan::heavy(round)
        });

        let (rec, fail) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let store = &store;
                    let cases = &cases;
                    scope.spawn(move || {
                        let mut rec = 0u64;
                        let mut fail = 0u64;
                        for _ in 0..PASSES {
                            for (id, pattern, plan_node, baseline) in cases {
                                match sjos::execute(store, pattern, plan_node) {
                                    Ok(res) => {
                                        assert_eq!(
                                            &res.canonical_rows(),
                                            baseline,
                                            "{id} diverged from the fault-free answer under \
                                             concurrent faults (round {round})"
                                        );
                                        rec += 1;
                                    }
                                    Err(EngineError::Storage(_)) => fail += 1,
                                    Err(e) => panic!(
                                        "{id}: non-storage failure under concurrent disk \
                                         faults (round {round}): {e}"
                                    ),
                                }
                            }
                        }
                        (rec, fail)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .fold((0u64, 0u64), |acc, x| (acc.0 + x.0, acc.1 + x.1))
        });
        recovered += rec;
        failed += fail;
    }

    let total = ROUNDS * (THREADS * PASSES * cases.len()) as u64;
    assert_eq!(recovered + failed, total, "every execution reached a verdict");
    assert!(recovered > 0, "no query ever recovered under concurrency");
}

/// Spill executions against a disk that fails *writes*: the external
/// sort pushes every run through the buffer pool to temp pages, so
/// transient write failures, short writes, failed allocations, and
/// silently corrupted write images all land in the spill path. The
/// contract is unchanged — recover bit-identically or fail with a
/// typed storage error — plus one spill-specific clause: whatever the
/// verdict, every temp page is back on the free list afterwards.
#[test]
fn spilling_queries_survive_seeded_write_faults() {
    use std::sync::Arc;

    use sjos::pattern::PnId;
    use sjos::{PlanNode, QueryGuard, SpillPolicy};
    use sjos_exec::execute_spill_with_batch_rows;

    let doc = pers(GenConfig::sized(1_500));
    let db = Database::from_document(doc.clone());
    let cases: Vec<_> = paper_queries()
        .into_iter()
        .filter(|q| q.dataset == DataSet::Pers)
        .map(|q| {
            let pattern = q.pattern();
            let optimized =
                db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes");
            // Plant a sort so the spill machinery engages; threshold 0
            // below maximizes temp-page traffic.
            let plan = PlanNode::Sort { input: Box::new(optimized.plan), by: PnId(0) };
            let baseline = db.execute(&pattern, &plan).expect("clean run").canonical_rows();
            (q.id, pattern, plan, baseline)
        })
        .collect();

    let store = XmlStore::load_faulty(
        doc,
        StoreConfig { retry: RetryPolicy::no_backoff(4), ..StoreConfig::default() },
        FaultPlan::none(),
    );
    let fault = store.fault().expect("faulty store exposes its fault handle").clone();
    let guard = Arc::new(QueryGuard::unlimited());
    let policy = SpillPolicy::with_threshold(0);

    let mut recovered = 0u32;
    let mut failed = 0u32;
    let mut runs_spilled = 0u64;
    for seed in 0..40u64 {
        let write_light = FaultPlan {
            seed,
            transient_write: 0.10,
            short_write: 0.05,
            transient_allocate: 0.05,
            ..FaultPlan::none()
        };
        let write_heavy = FaultPlan {
            seed,
            transient_write: 0.30,
            short_write: 0.15,
            corrupt_write: 0.10,
            transient_allocate: 0.15,
            ..FaultPlan::none()
        };
        for plan in [write_light, write_heavy] {
            fault.set_plan(FaultPlan::none());
            store.pool().reset_cache().expect("cache reset on a quiet disk");
            fault.set_plan(plan);
            for (id, pattern, plan_node, baseline) in &cases {
                match execute_spill_with_batch_rows(&store, pattern, plan_node, 64, &guard, policy)
                {
                    Ok(res) => {
                        assert_eq!(
                            &res.canonical_rows(),
                            baseline,
                            "{id} diverged from the fault-free answer after write-fault \
                             recovery (seed {seed})"
                        );
                        runs_spilled += res.metrics.spilled_runs;
                        recovered += 1;
                    }
                    Err(EngineError::Storage(_)) => failed += 1,
                    Err(e) => {
                        panic!("{id}: non-storage failure under write faults (seed {seed}): {e}")
                    }
                }
                assert_eq!(
                    store.spill().live_pages(),
                    0,
                    "{id}: temp pages leaked under write faults (seed {seed})"
                );
            }
        }
    }

    assert!(recovered > 0, "no spilling query ever recovered — write retries are broken");
    assert!(failed > 0, "no write-fault plan ever defeated the retries — injection is broken");
    assert!(runs_spilled > 0, "recovered runs never actually spilled — the test is vacuous");
}

/// The morsel-parallel variant of the contract: a query split across
/// 4 worker threads against a misbehaving disk either recovers with
/// the fault-free answer — tuple-for-tuple, counters summed
/// bit-identically — or fails with a typed storage error from
/// whichever worker (or the partitioner's pre-pass) hit the disk
/// first. Never a panic, a deadlock, or a silently wrong merge.
#[test]
fn parallel_queries_survive_seeded_fault_plans() {
    use sjos::datagen::fold_document;
    use sjos_exec::execute_parallel;

    let doc = fold_document(&pers(GenConfig::sized(600)), 5);
    let db = Database::from_document(doc.clone());
    let cases: Vec<_> = paper_queries()
        .into_iter()
        .filter(|q| q.dataset == DataSet::Pers)
        .map(|q| {
            let pattern = q.pattern();
            let optimized =
                db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes");
            let baseline = db.execute(&pattern, &optimized.plan).expect("clean run");
            (q.id, pattern, optimized.plan, baseline)
        })
        .collect();

    let store = XmlStore::load_faulty(
        doc,
        StoreConfig { retry: RetryPolicy::no_backoff(4), ..StoreConfig::default() },
        FaultPlan::none(),
    );
    let fault = store.fault().expect("faulty store exposes its fault handle").clone();

    let mut recovered = 0u32;
    let mut failed = 0u32;
    let mut split_runs = 0u32;
    for seed in 0..30u64 {
        for plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            fault.set_plan(FaultPlan::none());
            store.pool().reset_cache().expect("cache reset on a quiet disk");
            fault.set_plan(plan);
            for (id, pattern, plan_node, baseline) in &cases {
                match execute_parallel(&store, pattern, plan_node, 4) {
                    Ok(out) => {
                        assert_eq!(
                            out.result.tuples, baseline.tuples,
                            "{id} diverged from the fault-free answer after parallel \
                             recovery (seed {seed})"
                        );
                        assert_eq!(
                            out.result.metrics.stack_pushes, baseline.metrics.stack_pushes,
                            "{id}: merged stack traffic diverged under faults (seed {seed})"
                        );
                        if out.morsel_count() > 1 {
                            split_runs += 1;
                        }
                        recovered += 1;
                    }
                    Err(EngineError::Storage(_)) => failed += 1,
                    Err(e) => panic!(
                        "{id}: non-storage failure under parallel disk faults (seed {seed}): {e}"
                    ),
                }
            }
        }
    }

    assert!(recovered > 0, "no parallel query ever recovered — retry budget is broken");
    assert!(failed > 0, "no fault plan ever defeated the parallel path — injection is broken");
    assert!(split_runs > 0, "recovered runs never actually partitioned — the test is vacuous");
}

#[test]
fn sticky_corruption_names_the_page_in_the_error() {
    let doc = pers(GenConfig::sized(400));
    let store = XmlStore::load_faulty(
        doc,
        StoreConfig { retry: RetryPolicy::no_backoff(2), ..StoreConfig::default() },
        FaultPlan { seed: 7, sticky_corrupt: 1.0, ..FaultPlan::none() },
    );
    let db_doc = store.document().clone();
    let pattern = sjos::parse_pattern("//manager//employee/name").unwrap();
    let catalog = sjos::Catalog::build(&db_doc);
    let est = sjos::PatternEstimates::new(&catalog, &db_doc, &pattern);
    let optimized = sjos::optimize(
        &pattern,
        &est,
        &sjos::CostModel::default(),
        Algorithm::Dpp { lookahead: true },
    )
    .unwrap();
    let err = sjos::execute(&store, &pattern, &optimized.plan).unwrap_err();
    let rendered = err.to_string();
    assert!(
        matches!(err, EngineError::Storage(_)),
        "total corruption must surface as a storage error, got: {rendered}"
    );
    assert!(rendered.contains("page"), "error should name the failing page: {rendered}");
}
