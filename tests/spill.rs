//! Spill-to-disk external sort: differential and degraded-admission
//! tests.
//!
//! The contract under test has three clauses. *Transparency*: a
//! spilling execution returns exactly the tuples — same values, same
//! order — the in-memory execution returns, at every batch
//! granularity and every flush threshold. *Degradation*: a query
//! whose in-memory certificate breaches a starved [`QueryGuard`]
//! completes bit-identically under the *same* budget once its sorts
//! may spill (the paper's plans stay admissible under memory pressure
//! instead of being rejected). *Hygiene*: no execution — successful,
//! guard-stopped, or cancelled — leaves temp pages live in the spill
//! segment or frames pinned in the buffer pool.

use std::sync::Arc;

use proptest::prelude::*;

use sjos::datagen::{paper_queries, pers::pers, DataSet, GenConfig};
use sjos::{Algorithm, Database, EngineError, GuardBreach, PlanNode, QueryGuard, SpillPolicy};
use sjos_exec::{
    execute_guarded_spill, execute_spill_with_batch_rows, execute_with_batch_rows, naive,
    CancelToken, JoinAlgo, BATCH_ROWS,
};
use sjos_pattern::{Axis, Pattern, PnId};
use sjos_xml::{Document, DocumentBuilder};

/// Granularities under test: the tuple-at-a-time degenerate case, an
/// awkward size that never divides the row counts, and production.
const BATCH_SIZES: [usize; 3] = [1, 3, BATCH_ROWS];

/// Flush thresholds under test: spill everything, spill some, and a
/// threshold so large nothing ever spills (the policy must then be
/// invisible even in the metrics).
const THRESHOLDS: [usize; 3] = [0, 4 * 1024, usize::MAX / 2];

/// After every execution — however it ended — the spill segment must
/// hold zero live temp pages and the pool zero pinned frames.
fn assert_no_residue(db: &Database, context: &str) {
    assert_eq!(
        db.store().spill().live_pages(),
        0,
        "{context}: temp pages leaked in the spill segment"
    );
    assert_eq!(db.store().pool().pinned_frames(), 0, "{context}: buffer frames left pinned");
}

/// Wrap a plan in a blocking sort on the pattern root, forcing a
/// buffering operator the spill machinery can engage. The optimizers
/// rarely emit sorts on these corpora (stack-tree ordering usually
/// suffices), so the suites plant one deliberately.
fn sort_wrapped(db: &Database, pattern: &Pattern) -> PlanNode {
    let optimized = db.optimize(pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes");
    PlanNode::Sort { input: Box::new(optimized.plan), by: PnId(0) }
}

/// A flat document wide enough that one sort materializes far more
/// than the spill policy's resident floor — the shape that makes
/// degraded admission genuinely cheaper than in-memory admission.
fn wide_doc(emps: usize) -> Document {
    let mut b = DocumentBuilder::new();
    b.start_element("db");
    b.start_element("dept");
    for _ in 0..emps {
        b.start_element("emp");
        b.end_element();
    }
    b.end_element();
    b.end_element();
    b.finish()
}

fn wide_sort_plan() -> PlanNode {
    let inner = PlanNode::StructuralJoin {
        left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
        right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
        anc: PnId(0),
        desc: PnId(1),
        axis: Axis::Descendant,
        algo: JoinAlgo::StackTreeDesc,
    };
    PlanNode::Sort { input: Box::new(inner), by: PnId(0) }
}

/// Transparency: over the Pers Table-1 workload, a sort-rooted plan
/// executed in spill mode returns the in-memory execution's tuples
/// bit for bit — same values, same order — at every batch granularity
/// and every flush threshold, and the canonical rows still match the
/// naive evaluator. Threshold 0 must actually spill; the huge
/// threshold must not.
#[test]
fn spilled_sorts_match_in_memory_bit_for_bit() {
    let doc = pers(GenConfig::sized(1_500));
    let expected_naive: Vec<_> = paper_queries()
        .into_iter()
        .filter(|q| q.dataset == DataSet::Pers)
        .map(|q| {
            let pattern = q.pattern();
            let rows = naive::evaluate(&doc, &pattern);
            (q.id, pattern, rows)
        })
        .collect();
    assert!(!expected_naive.is_empty(), "Pers workload must not be empty");
    let db = Database::from_document(doc);
    let unlimited = Arc::new(QueryGuard::unlimited());

    for (id, pattern, expected) in &expected_naive {
        let plan = sort_wrapped(&db, pattern);
        for &rows in &BATCH_SIZES {
            let base = execute_with_batch_rows(db.store(), pattern, &plan, rows)
                .unwrap_or_else(|e| panic!("{id} in-memory at batch_rows={rows}: {e}"));
            assert_eq!(&base.canonical_rows(), expected, "{id} diverged from naive");
            for &threshold in &THRESHOLDS {
                let policy = SpillPolicy::with_threshold(threshold);
                let spilled = execute_spill_with_batch_rows(
                    db.store(),
                    pattern,
                    &plan,
                    rows,
                    &unlimited,
                    policy,
                )
                .unwrap_or_else(|e| {
                    panic!("{id} spill at batch_rows={rows} threshold={threshold}: {e}")
                });
                assert_eq!(
                    spilled.tuples, base.tuples,
                    "{id} at batch_rows={rows} threshold={threshold}: spill changed the answer"
                );
                if threshold == 0 && !base.tuples.is_empty() {
                    assert!(
                        spilled.metrics.spilled_runs > 0,
                        "{id} at batch_rows={rows}: threshold 0 never spilled"
                    );
                    assert!(spilled.io.spill_page_writes > 0, "{id}: runs spilled without I/O");
                }
                if threshold == usize::MAX / 2 {
                    assert_eq!(
                        spilled.metrics.spilled_runs, 0,
                        "{id} at batch_rows={rows}: unreachable threshold spilled anyway"
                    );
                }
                assert_no_residue(&db, &format!("{id} batch_rows={rows} threshold={threshold}"));
            }
        }
    }
}

/// Degradation — the acceptance criterion: a sort whose full
/// materialization breaches a starved guard in plain mode completes
/// bit-identically under the *same* memory budget once it may spill,
/// and the measured resident peak honors the budget the whole way.
#[test]
fn starved_guard_query_completes_bit_identically_via_spill() {
    let db = Database::from_document(wide_doc(20_000));
    let pattern = sjos::parse_pattern("//db//emp").unwrap();
    let plan = wide_sort_plan();

    // Budget exactly at the spill-mode certificate: far below the full
    // materialization, honest about the degraded residency.
    let floor = db.resource_bounds_spill(&pattern, &plan, SpillPolicy::with_threshold(0));
    let full = db.resource_bounds(&pattern, &plan);
    assert!(
        floor.peak_bytes < full.peak_bytes,
        "corpus too small to starve: spill floor {} ≥ full bound {}",
        floor.peak_bytes,
        full.peak_bytes
    );
    let budget = usize::try_from(floor.peak_bytes).unwrap();

    let baseline = db.execute(&pattern, &plan).expect("unguarded run");

    // Plain mode under the starved budget: a typed memory breach, not
    // a panic, not a wrong answer.
    let starved = Arc::new(QueryGuard::unlimited().with_memory_budget(budget));
    let err = sjos_exec::execute_guarded(db.store(), &pattern, &plan, &starved).unwrap_err();
    assert!(
        matches!(err, EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }),
        "starved in-memory run must breach the memory budget, got: {err}"
    );
    assert_no_residue(&db, "starved in-memory run");

    // Same budget, spill allowed: the query completes, bit-identical,
    // actually spilling, with the resident peak inside the budget.
    let policy = SpillPolicy::for_budget(budget, 2, BATCH_ROWS)
        .expect("budget at the spill certificate admits a policy");
    let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(budget));
    let spilled = execute_guarded_spill(db.store(), &pattern, &plan, &guard, policy)
        .expect("spill run under the starved budget");
    assert_eq!(spilled.tuples, baseline.tuples, "spill changed the answer");
    assert!(spilled.metrics.spilled_runs > 0, "starved run never spilled");
    assert!(
        spilled.metrics.peak_bytes <= floor.peak_bytes,
        "measured resident peak {} escaped the certified spill bound {}",
        spilled.metrics.peak_bytes,
        floor.peak_bytes
    );
    assert!(spilled.io.spill_page_writes > 0 && spilled.io.spill_page_reads > 0);
    assert_no_residue(&db, "starved spill run");
}

/// Hygiene on every abnormal exit: cancellation, a batch-budget stop,
/// and a memory breach *inside* spill mode each surface as the typed
/// guard error and leave no temp pages or pinned frames behind.
#[test]
fn guard_stops_and_cancellation_leave_no_residue() {
    let db = Database::from_document(wide_doc(3_000));
    let pattern = sjos::parse_pattern("//db//emp").unwrap();
    let plan = wide_sort_plan();
    let policy = SpillPolicy::with_threshold(0);

    let token = CancelToken::new();
    token.cancel();
    let guard = Arc::new(QueryGuard::unlimited().with_cancel_token(token));
    let err = execute_guarded_spill(db.store(), &pattern, &plan, &guard, policy).unwrap_err();
    assert!(
        matches!(err, EngineError::Guard { breach: GuardBreach::Cancelled, .. }),
        "pre-cancelled run must stop on the token, got: {err}"
    );
    assert_no_residue(&db, "cancelled spill run");

    let guard = Arc::new(QueryGuard::unlimited().with_batch_budget(2));
    let err = execute_guarded_spill(db.store(), &pattern, &plan, &guard, policy).unwrap_err();
    assert!(
        matches!(err, EngineError::Guard { breach: GuardBreach::BatchBudget { .. }, .. }),
        "two pulls cannot finish this plan, got: {err}"
    );
    assert_no_residue(&db, "batch-budget spill stop");

    // A budget below even one output batch: the breach fires *after*
    // runs have gone to disk, the classic mid-spill abort.
    let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(16));
    let err = execute_guarded_spill(db.store(), &pattern, &plan, &guard, policy).unwrap_err();
    assert!(
        matches!(err, EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }),
        "a 16-byte budget must breach, got: {err}"
    );
    assert_no_residue(&db, "mid-spill memory breach");
}

// ---------------------------------------------------------------------
// Property-based differential: arbitrary documents × patterns ×
// budgets × batch sizes. Every spill-mode execution either returns
// exactly what the naive evaluator finds or stops with a typed
// memory breach — and never leaves residue either way.
// ---------------------------------------------------------------------

const TAGS: &[&str] = &["t0", "t1", "t2", "t3"];

#[derive(Debug, Clone)]
struct TreeNode {
    tag: usize,
    children: Vec<TreeNode>,
}

fn tree_strategy() -> impl Strategy<Value = TreeNode> {
    let leaf = (0..TAGS.len()).prop_map(|tag| TreeNode { tag, children: vec![] });
    leaf.prop_recursive(4, 48, 4, |inner| {
        (0..TAGS.len(), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| TreeNode { tag, children })
    })
}

fn build_doc(root: &TreeNode) -> Document {
    fn rec(n: &TreeNode, b: &mut DocumentBuilder) {
        b.start_element(TAGS[n.tag]);
        for c in &n.children {
            rec(c, b);
        }
        b.end_element();
    }
    let mut b = DocumentBuilder::new();
    b.start_element("root");
    rec(root, &mut b);
    b.end_element();
    b.finish()
}

#[derive(Debug, Clone)]
struct PatNode {
    tag: usize,
    axis_from_parent: bool,
    children: Vec<PatNode>,
}

fn pattern_strategy() -> impl Strategy<Value = PatNode> {
    let leaf = (0..TAGS.len(), any::<bool>()).prop_map(|(tag, ax)| PatNode {
        tag,
        axis_from_parent: ax,
        children: vec![],
    });
    leaf.prop_recursive(3, 5, 2, |inner| {
        (0..TAGS.len(), any::<bool>(), prop::collection::vec(inner, 0..3))
            .prop_map(|(tag, ax, children)| PatNode { tag, axis_from_parent: ax, children })
    })
}

fn build_pattern(root: &PatNode) -> Pattern {
    fn rec(n: &PatNode, parent: PnId, p: &mut Pattern) {
        for c in &n.children {
            let axis = if c.axis_from_parent { Axis::Descendant } else { Axis::Child };
            let id = p.add_child(parent, axis, TAGS[c.tag]);
            rec(c, id, p);
        }
    }
    let mut p = Pattern::with_root(TAGS[root.tag]);
    let r = p.root();
    rec(root, r, &mut p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_budgets_spill_or_fail_typed(
        tree in tree_strategy(),
        pat in pattern_strategy(),
        budget in 64usize..200_000,
        batch_idx in 0usize..3,
    ) {
        let doc = build_doc(&tree);
        let pattern = build_pattern(&pat);
        let expected = naive::evaluate(&doc, &pattern);
        let db = Database::from_document(doc);
        let plan = sort_wrapped(&db, &pattern);
        let batch_rows = BATCH_SIZES[batch_idx];
        let width = pattern.len();

        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(budget));
        let policy = SpillPolicy::for_budget(budget, width, batch_rows)
            .unwrap_or_else(|| SpillPolicy::with_threshold(0));
        match execute_spill_with_batch_rows(db.store(), &pattern, &plan, batch_rows, &guard, policy)
        {
            Ok(result) => {
                prop_assert_eq!(
                    result.canonical_rows(),
                    expected,
                    "spill run diverged from naive at budget {} batch_rows {}",
                    budget,
                    batch_rows
                );
            }
            Err(EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }) => {}
            Err(e) => {
                panic!("budget {budget} batch_rows {batch_rows}: untyped failure: {e}")
            }
        }
        prop_assert_eq!(db.store().spill().live_pages(), 0, "temp pages leaked");
        prop_assert_eq!(db.store().pool().pinned_frames(), 0, "frames left pinned");
    }
}
