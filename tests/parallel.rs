//! Morsel-driven parallel execution: differential and property tests.
//!
//! The contract under test is *partition soundness* (planck rule
//! PL068): a parallel execution over region-range morsels returns
//! exactly the tuples — same values, same order — the serial engine
//! returns, at every thread count and every batch granularity, and
//! its eight exact work counters sum bit-identically to the serial
//! totals. The partitioner's own guarantees (cuts are valid, morsels
//! cover everything exactly once, one morsel degenerates to the
//! serial engine) are checked as properties over arbitrary region
//! lists, and per-session I/O attribution must survive the hop onto
//! worker threads.

use std::sync::Arc;

use proptest::prelude::*;

use sjos::datagen::{
    dblp::dblp, fold_document, mbench::mbench, paper_queries, pers::pers, DataSet, GenConfig,
};
use sjos::{Algorithm, Database, EngineError, GuardBreach, QueryGuard, BATCH_ROWS};
use sjos_exec::{
    execute_parallel, execute_parallel_opts, partition_regions, scatter, stitch, ParallelPolicy,
};
use sjos_storage::{IoStats, IoTap};
use sjos_xml::Region;

/// Worker counts under test; 1 must be the serial engine itself.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Granularities under test: the tuple-at-a-time degenerate case, an
/// awkward size that never divides the row counts, and production.
const BATCH_SIZES: [usize; 3] = [1, 3, BATCH_ROWS];

/// The eight counters PL068 demands sum exactly across morsels.
fn exact_counters(m: &sjos_exec::MetricsSnapshot) -> [u64; 8] {
    [
        m.output_tuples,
        m.produced_tuples,
        m.stack_pushes,
        m.stack_pops,
        m.buffered_pairs,
        m.sorted_tuples,
        m.scanned_records,
        m.merge_rescans,
    ]
}

/// Small folded corpora: folding replicates each data set's content
/// under one shared root, so the document has clean seams between
/// copies — without it Mbench is one giant `eNest` whose interval
/// spans everything and no valid cut exists (a legitimate, but
/// untestably boring, serial fallback).
fn corpus(ds: DataSet) -> Database {
    let doc = match ds {
        DataSet::Mbench => mbench(GenConfig::sized(700)),
        DataSet::Dblp => dblp(GenConfig::sized(700)),
        DataSet::Pers => pers(GenConfig::sized(600)),
    };
    Database::from_document(fold_document(&doc, 5))
}

/// Differential sweep: every Table-1 query, optimized by DPP, executed
/// at every (threads × batch_rows) combination, must reproduce the
/// serial result — tuple values, tuple order, and all eight exact
/// counters — bit for bit.
#[test]
fn parallel_matches_serial_across_threads_and_granularities() {
    for ds in [DataSet::Mbench, DataSet::Dblp, DataSet::Pers] {
        let db = corpus(ds);
        let mut split_somewhere = false;
        for q in paper_queries().into_iter().filter(|q| q.dataset == ds) {
            let pattern = q.pattern();
            let plan =
                db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes").plan;
            let serial = db.execute(&pattern, &plan).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            let serial_counters = exact_counters(&serial.metrics);
            for threads in THREAD_COUNTS {
                for batch_rows in BATCH_SIZES {
                    let guard = Arc::new(QueryGuard::unlimited());
                    let out = execute_parallel_opts(
                        db.store(),
                        &pattern,
                        &plan,
                        true,
                        batch_rows,
                        &guard,
                        ParallelPolicy::with_threads(threads),
                    )
                    .unwrap_or_else(|e| panic!("{} @ {threads}t/{batch_rows}b: {e}", q.id));
                    split_somewhere |= out.morsel_count() > 1;
                    assert_eq!(
                        out.result.tuples, serial.tuples,
                        "{} @ {threads} threads, batch_rows={batch_rows}: tuple sequence diverged",
                        q.id
                    );
                    assert_eq!(
                        exact_counters(&out.result.metrics),
                        serial_counters,
                        "{} @ {threads} threads, batch_rows={batch_rows}: counters diverged",
                        q.id
                    );
                    if threads <= 1 {
                        assert_eq!(out.morsel_count(), 1, "{}: threads=1 must stay serial", q.id);
                    }
                }
            }
        }
        // Root-binding queries (e.g. Q.DBLP.1.b binds the shared
        // `dblp` root, whose interval spans the whole document) can
        // never split — but every data set must have at least one
        // query that genuinely partitions.
        assert!(split_somewhere, "{}: no query ever split into more than one morsel", ds.name());
    }
}

/// PL068 certifies every Table-1 query on its own corpus at every
/// thread count — the lint re-derives cut validity from the stored
/// binding lists, so a clean report is ground truth, not the
/// partitioner grading its own homework.
#[test]
fn partition_lint_is_clean_on_the_paper_workload() {
    for ds in [DataSet::Mbench, DataSet::Dblp, DataSet::Pers] {
        let db = corpus(ds);
        for q in paper_queries().into_iter().filter(|q| q.dataset == ds) {
            let pattern = q.pattern();
            let plan =
                db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes").plan;
            for threads in [2, 8] {
                let report = sjos::planck::lint_partition(db.store(), &pattern, &plan, threads);
                assert!(
                    report.is_clean(),
                    "{} @ {threads} threads: PL068 violations:\n{report}",
                    q.id
                );
            }
        }
    }
}

/// Per-session I/O attribution survives the hop onto worker threads:
/// a tap installed on the session thread sees the record reads the
/// workers issue while draining their morsels.
#[test]
fn worker_thread_io_lands_in_the_session_tap() {
    let db = corpus(DataSet::Pers);
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.1.a").expect("catalog query");
    let pattern = q.pattern();
    let plan = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes").plan;

    let stats = Arc::new(IoStats::default());
    let before = stats.snapshot();
    let outcome = {
        let _tap = IoTap::install(Arc::clone(&stats));
        execute_parallel(db.store(), &pattern, &plan, 4).expect("parallel run")
    };
    let after = stats.snapshot();
    assert!(outcome.morsel_count() > 1, "query must actually split for this test to bite");
    assert!(
        after.record_reads > before.record_reads,
        "worker-thread record reads never reached the session tap"
    );
    assert_eq!(
        outcome.result.io.record_reads,
        after.record_reads - before.record_reads,
        "result attribution and tap delta disagree"
    );
}

/// A deadline that has already passed surfaces as the typed guard
/// breach from the parallel path too — with partial metrics attached,
/// never a panic or a wrong answer.
#[test]
fn expired_deadline_surfaces_as_guard_breach() {
    let db = corpus(DataSet::Pers);
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.1.a").expect("catalog query");
    let pattern = q.pattern();
    let plan = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes").plan;
    let guard = Arc::new(QueryGuard::unlimited().with_deadline(std::time::Duration::ZERO));
    let err = execute_parallel_opts(
        db.store(),
        &pattern,
        &plan,
        true,
        BATCH_ROWS,
        &guard,
        ParallelPolicy::with_threads(4),
    )
    .expect_err("an expired deadline must stop the query");
    match err {
        EngineError::Guard { breach: GuardBreach::Deadline { .. }, .. } => {}
        other => panic!("expected a deadline breach, got {other}"),
    }
}

/// Strategy: a well-formed region list sorted by start with strictly
/// increasing, non-repeating starts (document order), arbitrary
/// nesting of the end points.
fn region_lists() -> impl Strategy<Value = Vec<Vec<Region>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..5_000, 0u32..400), 0..120).prop_map(|raw| {
            let mut list: Vec<Region> = raw
                .into_iter()
                .map(|(s, len)| Region { start: s, end: s.saturating_add(len), level: 0 })
                .collect();
            list.sort_by_key(|r| r.start);
            list.dedup_by_key(|r| r.start);
            list
        }),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partitioner's cuts are strictly increasing and *valid*: no
    /// record in any input list straddles any cut, so scattering by
    /// the partition's ranges produces zero seam replicas and every
    /// record lands in exactly one morsel.
    #[test]
    fn partitioner_cuts_are_valid_and_replica_free(lists in region_lists(), target in 1usize..12) {
        let partition = partition_regions(&lists, target);
        prop_assert!(partition.cuts.windows(2).all(|w| w[0] < w[1]), "cuts not increasing");
        for &c in &partition.cuts {
            for list in &lists {
                for r in list {
                    prop_assert!(
                        !(r.start < c && c <= r.end),
                        "record [{}, {}] straddles cut {c}", r.start, r.end
                    );
                }
            }
        }
        let ranges = partition.ranges();
        for list in &lists {
            let parts = scatter(list, &ranges);
            let scattered: usize = parts.iter().map(Vec::len).sum();
            prop_assert_eq!(scattered, list.len(), "seam replicas under the partitioner's own cuts");
            prop_assert_eq!(&stitch(&parts, &ranges), list);
        }
    }

    /// Coverage round-trip for *arbitrary* cuts, not just the
    /// partitioner's: scatter may replicate records across seams, but
    /// stitch recovers the original list exactly.
    #[test]
    fn scatter_stitch_round_trips_arbitrary_cuts(
        lists in region_lists(),
        mut cuts in prop::collection::vec(1u32..6_000, 0..6),
    ) {
        cuts.sort_unstable();
        cuts.dedup();
        let partition = sjos_exec::RegionPartition { cuts, total_records: 0 };
        let ranges = partition.ranges();
        for list in &lists {
            let parts = scatter(list, &ranges);
            prop_assert_eq!(&stitch(&parts, &ranges), list);
        }
    }

    /// One target morsel is the identity partition: no cuts, one range
    /// spanning the whole start axis.
    #[test]
    fn single_morsel_target_is_the_identity(lists in region_lists()) {
        let partition = partition_regions(&lists, 1);
        prop_assert!(partition.cuts.is_empty());
        prop_assert_eq!(partition.ranges(), vec![(0u32, u32::MAX)]);
    }
}

/// The tap partition is *exact* at every worker count: with one
/// session tapped and nothing else running, the session tap's delta
/// equals the global store delta bit for bit — every worker thread
/// reinstalled the tap, and no read escaped attribution.
#[test]
fn tap_delta_partitions_the_global_delta_at_every_thread_count() {
    let db = corpus(DataSet::Pers);
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.1.a").expect("catalog query");
    let pattern = q.pattern();
    let plan = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes").plan;

    for threads in [2usize, 8] {
        let stats = Arc::new(IoStats::default());
        let global_before = db.store().stats().snapshot();
        let tap_before = stats.snapshot();
        {
            let _tap = IoTap::install(Arc::clone(&stats));
            execute_parallel(db.store(), &pattern, &plan, threads).expect("parallel run");
        }
        let global = db.store().stats().snapshot().since(&global_before);
        let tapped = stats.snapshot().since(&tap_before);
        assert!(tapped.record_reads > 0, "{threads} threads: no attributed reads");
        assert_eq!(
            (tapped.record_reads, tapped.buffer_hits, tapped.disk_reads),
            (global.record_reads, global.buffer_hits, global.disk_reads),
            "{threads} threads: a worker's I/O escaped the session tap"
        );
    }
}

/// The error-exit path keeps attribution exact too: when a worker
/// dies mid-query on a guard breach, every read it issued before
/// dying — and every read its aborted siblings issued — still lands
/// in the session tap. Nothing leaks to the void on the abort path.
#[test]
fn dying_worker_io_still_lands_in_the_session_tap() {
    let db = corpus(DataSet::Pers);
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.1.a").expect("catalog query");
    let pattern = q.pattern();
    let plan = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).expect("optimizes").plan;
    // A budget tiny enough that a worker breaches mid-morsel, but not
    // so tiny the run dies before the workers touch storage.
    let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(512));

    let stats = Arc::new(IoStats::default());
    let global_before = db.store().stats().snapshot();
    let err = {
        let _tap = IoTap::install(Arc::clone(&stats));
        execute_parallel_opts(
            db.store(),
            &pattern,
            &plan,
            true,
            BATCH_ROWS,
            &guard,
            ParallelPolicy::with_threads(4),
        )
        .expect_err("a 512 B budget must breach")
    };
    match err {
        EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. } => {}
        other => panic!("expected a memory breach, got {other}"),
    }
    let global = db.store().stats().snapshot().since(&global_before);
    let tapped = stats.snapshot();
    assert_eq!(
        (tapped.record_reads, tapped.buffer_hits, tapped.disk_reads),
        (global.record_reads, global.buffer_hits, global.disk_reads),
        "a dying worker's I/O escaped the session tap on the abort path"
    );
    assert!(
        tapped.record_reads + tapped.buffer_hits > 0,
        "the workers died before doing any I/O — the error path ran vacuously"
    );
}
