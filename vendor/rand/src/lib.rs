//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crate registry, so this shim provides
//! the slice of `rand` the workspace actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen_range`, `gen_bool` and `gen`. The generator is splitmix64 —
//! not cryptographic, but fast, well-distributed, and deterministic in
//! its seed, which is all the tests, datagen and the random-plan
//! baseline need. Stream compatibility with the real `rand` crate is
//! explicitly *not* provided (seeds produce different sequences).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample(rng: &mut dyn RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty, like `rand` proper.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Bernoulli draw: `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator, "ratio out of range");
        self.gen_range(0..denominator) < numerator
    }

    /// Uniform draw over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood); passes BigCrush when
            // used as a stream like this.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(1975..=2003);
            assert!((1975..=2003).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
