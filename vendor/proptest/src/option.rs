//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`.
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Same bias as real proptest's default: mostly Some.
        if rng.gen_bool(0.75) {
            Some(self.0.new_value(rng))
        } else {
            None
        }
    }
}

/// `Some` of the inner strategy three times out of four, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
