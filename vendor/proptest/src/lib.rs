//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this shim
//! re-implements the slice of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_recursive`,
//! strategies for integer ranges, tuples, constants ([`Just`]),
//! string patterns, [`collection::vec`] and [`option::of`], the
//! [`any`] entry point, and the [`proptest!`]/[`prop_oneof!`]/
//! [`prop_assert!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case panics with the assertion
//!   message but is not minimized;
//! * **deterministic seeds** — every test runs the same input
//!   sequence on every invocation (no persisted failure seeds);
//! * **string strategies ignore the regex** — any `&str` pattern
//!   produces character soup biased towards markup-ish characters,
//!   which is what the XML robustness tests want from `"\\PC*"`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` alias real proptest exposes from its prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Assert inside a [`proptest!`] body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that draws `config.cases` random inputs and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &$strat,
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    fn small_tree() -> impl Strategy<Value = Vec<Vec<u8>>> {
        prop::collection::vec(prop::collection::vec(0u8..4, 0..3), 0..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17usize, y in 0u16..64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 64);
        }

        #[test]
        fn tuples_and_options(pair in (0..4usize, any::<bool>()), o in prop::option::of(0..3usize)) {
            prop_assert!(pair.0 < 4);
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..4, 1..60)) {
            prop_assert!((1..60).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn nested_collections(t in small_tree()) {
            prop_assert!(t.len() < 4);
        }

        #[test]
        fn oneof_picks_each_branch(s in prop_oneof![Just("a".to_string()), Just("b".to_string())]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn string_patterns_produce_strings(s in "\\PC*") {
            let _: String = s;
        }
    }

    #[derive(Debug, Clone)]
    struct Node {
        children: Vec<Node>,
    }

    fn depth(n: &Node) -> usize {
        1 + n.children.iter().map(depth).max().unwrap_or(0)
    }

    proptest! {
        #[test]
        fn recursive_structures_are_depth_bounded(
            root in Just(Node { children: vec![] }).prop_recursive(4, 48, 4, |inner| {
                prop::collection::vec(inner, 0..4)
                    .prop_map(|children| Node { children })
            })
        ) {
            prop_assert!(depth(&root) <= 5);
        }
    }

    #[test]
    fn recursion_actually_recurses() {
        let strat = Just(Node { children: vec![] }).prop_recursive(4, 48, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(|children| Node { children })
        });
        let mut rng = TestRng::deterministic("recursion_actually_recurses");
        let deepest = (0..200).map(|_| depth(&strat.new_value(&mut rng))).max().unwrap();
        assert!(deepest > 1, "recursive strategy never recursed");
    }
}
