//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.len.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "vec strategy needs a non-empty length range");
    VecStrategy { element, len }
}
