//! The [`Strategy`] trait and the built-in strategies.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, map: f }
    }

    /// Build a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into one layer of structure.
    /// Recursion is depth-bounded by `depth`; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but
    /// unused (collection ranges inside `recurse` already bound the
    /// fan-out).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.new_value(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Choose uniformly among `branches`.
    ///
    /// # Panics
    /// Panics when `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union(branches)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Characters string strategies draw from: heavy on markup
/// metacharacters so parser tests reach interesting paths, with a few
/// multi-byte characters for UTF-8 coverage.
const STRING_CHARS: &[char] = &[
    '<', '>', '/', '&', ';', '=', '\'', '"', '!', '?', '[', ']', '-', '#', '.', ' ', '\t', '\n',
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', '_', ':', 'é', 'λ', '中', '\u{7f}', '¬',
];

/// String-pattern strategies. The regex itself is **ignored**: any
/// pattern produces 0–40 characters of markup-biased soup, which is
/// what the robustness tests want from patterns like `"\\PC*"`.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(0..41usize);
        (0..len).map(|_| STRING_CHARS[rng.gen_range(0..STRING_CHARS.len())]).collect()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`'s whole domain.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Entry point: `any::<T>()` draws from `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}
