//! Deterministic RNG and per-test configuration.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The generator strategies draw from. Deterministic: derived from the
/// test's name, so every run sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from `label` (typically the test name).
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform draw from an integer range.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Bernoulli draw.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like real proptest.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}
