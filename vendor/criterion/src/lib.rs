//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so this shim provides
//! the API subset the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — on a deliberately simple measurement loop: a short warm-up
//! followed by timed batches, reporting the best mean as `ns/iter`.
//! There is no statistical analysis, no HTML report, and no saved
//! baselines; the numbers are indicative, which is exactly what an
//! offline smoke-bench can honestly promise.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Benchmark `name` at parameter value `param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", name.into(), param) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// measured routine.
pub struct Bencher {
    sample_size: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly, recording the mean time per call of
    /// the fastest batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call, also used to size the batches so that
        // fast routines get more calls per timing measurement.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000) as usize;
        let mut best: Option<Duration> = None;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let mean = start.elapsed() / per_batch as u32;
            if best.is_none_or(|b| mean < b) {
                best = Some(mean);
            }
        }
        self.result = best;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (clamped to at least 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        run_one(&label, self.sample_size, throughput, f);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (a no-op here; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { sample_size, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(best) => {
            let ns = best.as_nanos();
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!("  ({:.0} elem/s)", n as f64 / best.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!("  ({:.1} MiB/s)", n as f64 / best.as_secs_f64() / (1 << 20) as f64)
                }
            });
            println!("bench: {label:<50} {ns:>12} ns/iter{}", rate.unwrap_or_default());
        }
        None => println!("bench: {label:<50} (no measurement — iter() never called)"),
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, for API compatibility with
    /// `cargo bench -- <filter>` invocations.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_one(&label, 10, None, f);
        self.benchmarks_run += 1;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 10, throughput: None }
    }

    /// Number of benchmarks executed through this handle.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Bundle benchmark functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "routine was never invoked");
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn groups_run_every_benchmark() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        drop(group);
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 42).to_string(), "algo/42");
    }
}
