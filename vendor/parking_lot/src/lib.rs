//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the handful of `parking_lot` APIs the workspace uses
//! are re-implemented here on top of `std::sync`. Like real
//! `parking_lot` — and unlike bare `std::sync` — locks here do **not**
//! poison: a panicking holder leaves the lock usable, which the shim
//! implements by unwrapping `PoisonError` into the inner guard.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`
/// signature (returns the guard directly, not a `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
