//! `planlint` — static analysis of structural-join plans.
//!
//! Optimizes a tree-pattern query (or corrupts the plan on request),
//! then lints the plan against the `planck` rule set without executing
//! it, printing the annotated plan and a diagnostic report:
//!
//! ```sh
//! # lint the DPP plan for a query against a generated corpus
//! cargo run --bin planlint -- --gen pers:5000 --query '//manager//employee/name'
//! # prove the linter catches a seeded bug
//! cargo run --bin planlint -- --query '//a/b/c' --mutate flip-axis
//! # optimizer cross-checks (DPP==DP, FP optimality, ubCost shape)
//! cargo run --bin planlint -- --query '//a/b/c' --cross
//! # order-property dataflow: prove the FP plan pipeline-safe statically
//! cargo run --bin planlint -- dataflow --query '//a/b/c' --algo fp
//! # record a DPP search trace and certify its admissibility
//! cargo run --bin planlint -- certify --gen pers:5000 --query '//manager//employee'
//! # prove the certifier rejects doctored evidence
//! cargo run --bin planlint -- certify --query '//a/b/c' --corrupt inflate-ubcost
//! # static admission control: certify the plan fits a memory budget
//! cargo run --bin planlint -- admit --query '//a/b/c' --memory-budget 64MiB --json
//! # the machine-readable rule catalog
//! cargo run --bin planlint -- rules --json
//! # the full battery: mutations, dataflow, certification, bounds
//! cargo run --bin planlint -- --query '//a/b/c' --selftest
//! ```
//!
//! `--json` switches any mode's report to machine-readable JSON (rule
//! id, severity, plan node path, message) for CI annotation.
//!
//! Exit status: 0 when clean, 1 when any rule fired, 2 on usage
//! errors.

use sjos::core::{mutate_plan, Algorithm, PlanMutation};
use sjos::datagen::{dblp::dblp, mbench::mbench, pers::pers, GenConfig};
use sjos::explain::explain;
use sjos::service::models::{healthy_models, mutated_models};
use sjos::{Database, Document};
use sjos_planck::{
    admit, analyze_plan, apply_static_mutation, certify_trace, collect_sources, corrupt_trace,
    explore, lint_bound_soundness, lint_bounds, lint_dataflow, lint_error_surfacing,
    lint_execution, lint_optimizers, lint_plan_with, lint_sources, record_search_trace,
    rule_catalog_json, ExploreConfig, PlanExpectations, Report, Rule, StaticMutation,
    TraceCorruption, DEFAULT_MEMORY_BUDGET,
};

/// Fallback document when neither `--xml` nor `--gen` is given: big
/// enough that the optimizers make non-trivial choices.
const SAMPLE: &str = "<a>\
    <b><c>x</c><c>y</c><e/></b>\
    <b><c>z</c><e/></b>\
    <b><c/></b>\
    <d><e/><e/></d>\
    <d><e/></d>\
</a>";

/// Which analysis mode to run (leading positional argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Structural lint + dynamic cross-check (the default).
    Lint,
    /// Order-property dataflow only (PL040–PL043).
    Dataflow,
    /// Record and certify a search trace (PL050–PL053).
    Certify,
    /// Resource-bound admission control (PL060–PL064).
    Admit,
    /// Print the rule catalog (no plan needed).
    Rules,
    /// Concurrency certification: the static pass (PL070–PL075) plus
    /// the bounded interleaving explorer (PL076). Needs no plan.
    Conc,
}

struct Options {
    command: Command,
    xml: Option<String>,
    gen: Option<String>,
    query: String,
    algo: String,
    mutate: Option<String>,
    corrupt: Option<String>,
    cross: bool,
    selftest: bool,
    json: bool,
    memory_budget: Option<u64>,
    batch_budget: Option<u64>,
    batch_rows: usize,
    root: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: planlint [dataflow|certify|admit|rules|conc] \
                 [--xml <file> | --gen pers:<n>|dblp:<n>|mbench:<n>] \
                 --query <pattern> [--algo dp|dpp|dpp-nl|dpap-eb:<te>|dpap-ld|fp|random:<seed>] \
                 [--mutate <mutation>] \
                 [--corrupt inflate-ubcost|drop-finalized|cheap-prune] \
                 [--memory-budget <bytes|KiB|MiB|GiB>] [--batch-budget <pulls>] \
                 [--batch-rows <n>] [--root <dir>] \
                 [--cross] [--selftest] [--json]"
            );
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(clean) => std::process::exit(if clean { 0 } else { 1 }),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        command: Command::Lint,
        xml: None,
        gen: None,
        query: String::new(),
        algo: "dpp".to_string(),
        mutate: None,
        corrupt: None,
        cross: false,
        selftest: false,
        json: false,
        memory_budget: None,
        batch_budget: None,
        batch_rows: sjos::exec::BATCH_ROWS,
        root: None,
    };
    let mut it = args.iter().peekable();
    if let Some(first) = it.peek() {
        match first.as_str() {
            "dataflow" => {
                opts.command = Command::Dataflow;
                it.next();
            }
            "certify" => {
                opts.command = Command::Certify;
                it.next();
            }
            "admit" => {
                opts.command = Command::Admit;
                it.next();
            }
            "rules" => {
                opts.command = Command::Rules;
                it.next();
            }
            "conc" => {
                opts.command = Command::Conc;
                it.next();
            }
            _ => {}
        }
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--xml" => opts.xml = Some(it.next().ok_or("--xml needs a file")?.clone()),
            "--gen" => opts.gen = Some(it.next().ok_or("--gen needs a spec")?.clone()),
            "--query" => opts.query = it.next().ok_or("--query needs a pattern")?.clone(),
            "--algo" => opts.algo = it.next().ok_or("--algo needs a name")?.clone(),
            "--mutate" => opts.mutate = Some(it.next().ok_or("--mutate needs a name")?.clone()),
            "--corrupt" => opts.corrupt = Some(it.next().ok_or("--corrupt needs a kind")?.clone()),
            "--cross" => opts.cross = true,
            "--selftest" => opts.selftest = true,
            "--json" => opts.json = true,
            "--memory-budget" => {
                let spec = it.next().ok_or("--memory-budget needs a size")?;
                opts.memory_budget = Some(parse_size(spec)?);
            }
            "--batch-budget" => {
                let n = it.next().ok_or("--batch-budget needs a count")?;
                opts.batch_budget = Some(n.parse().map_err(|_| "bad batch budget")?);
            }
            "--batch-rows" => {
                let n = it.next().ok_or("--batch-rows needs a count")?;
                let n: usize = n.parse().map_err(|_| "bad batch rows")?;
                if n == 0 {
                    return Err("--batch-rows must be at least 1".into());
                }
                opts.batch_rows = n;
            }
            "--root" => opts.root = Some(it.next().ok_or("--root needs a directory")?.clone()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.query.is_empty() && !matches!(opts.command, Command::Rules | Command::Conc) {
        return Err("--query is required".into());
    }
    if opts.root.is_some() && opts.command != Command::Conc {
        return Err("--root only applies to the conc command".into());
    }
    if opts.corrupt.is_some() && opts.command != Command::Certify {
        return Err("--corrupt only applies to the certify command".into());
    }
    if opts.mutate.is_some() && opts.command == Command::Certify {
        return Err("certify records a fresh search trace; --mutate does not apply".into());
    }
    if (opts.memory_budget.is_some() || opts.batch_budget.is_some())
        && opts.command != Command::Admit
    {
        return Err("budget flags only apply to the admit command".into());
    }
    Ok(opts)
}

/// Parse a byte size: a bare number of bytes, or a number suffixed
/// with `B`, `KiB`, `MiB`, or `GiB` (binary units).
fn parse_size(spec: &str) -> Result<u64, String> {
    let (digits, unit): (&str, u64) = if let Some(n) = spec.strip_suffix("GiB") {
        (n, 1024 * 1024 * 1024)
    } else if let Some(n) = spec.strip_suffix("MiB") {
        (n, 1024 * 1024)
    } else if let Some(n) = spec.strip_suffix("KiB") {
        (n, 1024)
    } else if let Some(n) = spec.strip_suffix('B') {
        (n, 1)
    } else {
        (spec, 1)
    };
    let n: u64 = digits.trim().parse().map_err(|_| format!("bad size {spec}"))?;
    n.checked_mul(unit).ok_or_else(|| format!("size {spec} overflows"))
}

fn load(opts: &Options) -> Result<Database, String> {
    let doc: Document = match (&opts.xml, &opts.gen) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Document::parse(&text).map_err(|e| e.to_string())?
        }
        (None, Some(spec)) => {
            let (kind, n) = spec.split_once(':').ok_or("gen spec is kind:count")?;
            let n: usize = n.parse().map_err(|_| "bad node count")?;
            let config = GenConfig::sized(n);
            match kind {
                "pers" => pers(config),
                "dblp" => dblp(config),
                "mbench" => mbench(config),
                other => return Err(format!("unknown generator {other}")),
            }
        }
        (None, None) => Document::parse(SAMPLE).expect("sample parses"),
        _ => return Err("provide at most one of --xml and --gen".into()),
    };
    Ok(Database::from_document(doc))
}

fn parse_algo(name: &str) -> Result<(Algorithm, PlanExpectations), String> {
    let none = PlanExpectations::default();
    Ok(match name {
        "dp" => (Algorithm::Dp, none),
        "dpp" => (Algorithm::Dpp { lookahead: true }, none),
        "dpp-nl" => (Algorithm::Dpp { lookahead: false }, none),
        "dpap-ld" => {
            (Algorithm::DpapLd, PlanExpectations { left_deep: true, fully_pipelined: false })
        }
        "fp" => (Algorithm::Fp, PlanExpectations { fully_pipelined: true, left_deep: false }),
        other => {
            if let Some(te) = other.strip_prefix("dpap-eb:") {
                let te: usize = te.parse().map_err(|_| "bad T_e")?;
                (Algorithm::DpapEb { te }, none)
            } else if let Some(seed) = other.strip_prefix("random:") {
                let seed: u64 = seed.parse().map_err(|_| "bad seed")?;
                (Algorithm::WorstRandom { samples: 1, seed }, none)
            } else {
                return Err(format!("unknown algorithm {other}"));
            }
        }
    })
}

fn parse_mutation(name: &str) -> Result<PlanMutation, String> {
    Ok(match name {
        "swap-join-inputs" => PlanMutation::SwapJoinInputs,
        "flip-orientation" => PlanMutation::FlipOrientation,
        "rewire-join" => PlanMutation::RewireJoin,
        "flip-axis" => PlanMutation::FlipAxis,
        "drop-sort" => PlanMutation::DropSort,
        "retarget-sort" => PlanMutation::RetargetSort,
        "insert-input-sort" => PlanMutation::InsertInputSort,
        "duplicate-leaf" => PlanMutation::DuplicateLeaf,
        "wrap-root-sort" => PlanMutation::WrapRootSort,
        other => return Err(format!("unknown mutation {other}")),
    })
}

fn mutation_name(m: PlanMutation) -> &'static str {
    match m {
        PlanMutation::SwapJoinInputs => "swap-join-inputs",
        PlanMutation::FlipOrientation => "flip-orientation",
        PlanMutation::RewireJoin => "rewire-join",
        PlanMutation::FlipAxis => "flip-axis",
        PlanMutation::DropSort => "drop-sort",
        PlanMutation::RetargetSort => "retarget-sort",
        PlanMutation::InsertInputSort => "insert-input-sort",
        PlanMutation::DuplicateLeaf => "duplicate-leaf",
        PlanMutation::WrapRootSort => "wrap-root-sort",
    }
}

/// Print `report` in the selected format and return its cleanliness.
fn finish(opts: &Options, report: &Report) -> bool {
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    report.is_clean()
}

fn run(opts: &Options) -> Result<bool, String> {
    if opts.command == Command::Rules {
        return run_rules(opts);
    }
    if opts.command == Command::Conc {
        return run_conc(opts);
    }
    let db = load(opts)?;
    let pattern = sjos::parse_pattern(&opts.query).map_err(|e| e.to_string())?;
    let estimates = db.estimates(&pattern);
    let model = *db.cost_model();

    if opts.selftest {
        return selftest(&db, &pattern);
    }
    if opts.command == Command::Certify {
        return run_certify(opts, &pattern, &estimates, &model);
    }
    if opts.command == Command::Admit {
        return run_admit(opts, &db, &pattern);
    }

    let (algorithm, mut expect) = parse_algo(&opts.algo)?;
    let optimized = db.optimize(&pattern, algorithm).map_err(|e| e.to_string())?;
    let mut plan = optimized.plan;
    if let Some(name) = &opts.mutate {
        let mutation = parse_mutation(name)?;
        plan = mutate_plan(&pattern, &plan, mutation)
            .ok_or_else(|| format!("mutation {name} does not apply to this plan"))?;
        if mutation == PlanMutation::WrapRootSort {
            // The mutated plan is only wrong *as* an FP claim.
            expect.fully_pipelined = true;
        }
        if !opts.json {
            println!("plan ({}, mutated by {name}):", algorithm.name());
        }
    } else if !opts.json {
        println!("plan ({}, estimated cost {:.1}):", algorithm.name(), optimized.estimated_cost);
    }

    // `explain` resolves node labels through the pattern; fall back to
    // the compact rendering when a corrupted plan references unknown
    // nodes.
    if !opts.json {
        let renderable = plan.bound_nodes().iter().all(|id| id.index() < pattern.len());
        if renderable {
            print!("{}", explain(&plan, &pattern, &estimates, &model));
        } else {
            println!("{plan}");
        }
        println!();
    }

    if opts.command == Command::Dataflow {
        let analysis = analyze_plan(&pattern, &plan, expect);
        if !opts.json {
            let p = analysis.root;
            println!(
                "dataflow: order {:?}, duplicate-free {}, document-order {}, blocking-free {}, \
                 proved pipelined {}",
                p.order,
                p.duplicate_free,
                p.document_order,
                p.blocking_free,
                analysis.proved_pipelined
            );
        }
        return Ok(finish(opts, &analysis.report));
    }

    let mut report = lint_plan_with(&pattern, &plan, expect, Some((&estimates, &model)));
    // The order-property dataflow pass runs in every lint: redundant
    // sorts and unprovable order contracts are plan defects whichever
    // mode asked.
    report.absorb("dataflow", lint_dataflow(&pattern, &plan, expect));
    if opts.mutate.is_none() {
        // Dynamic half (PL034): run the plan and verify the batch
        // stream delivers what the static rules proved it claims.
        report.absorb("exec", lint_execution(db.store(), &pattern, &plan));
        // Error discipline (PL035): the same plan on a fault-armed
        // store copy must fail with a typed storage error.
        report.absorb("exec", lint_error_surfacing(db.store(), &pattern, &plan));
    }
    if opts.cross {
        let cross = lint_optimizers(&pattern, &estimates, &model);
        report.absorb("cross", cross);
    }
    Ok(finish(opts, &report))
}

/// Record a search trace for the requested algorithm, optionally
/// corrupt it, and certify its admissibility.
fn run_certify(
    opts: &Options,
    pattern: &sjos::Pattern,
    estimates: &sjos::stats::PatternEstimates,
    model: &sjos::core::CostModel,
) -> Result<bool, String> {
    let (algorithm, _) = parse_algo(&opts.algo)?;
    let mut trace = record_search_trace(pattern, estimates, model, algorithm)?;
    let mut label = String::new();
    if let Some(kind) = &opts.corrupt {
        let corruption =
            TraceCorruption::parse(kind).ok_or_else(|| format!("unknown corruption {kind}"))?;
        trace = corrupt_trace(&trace, corruption);
        label = format!(", corrupted by {kind}");
    }
    if !opts.json {
        println!(
            "trace ({}, {} events, optimum {:.1}{label}):",
            trace.algorithm,
            trace.events.len(),
            trace.optimum
        );
    }
    let report = certify_trace(pattern, estimates, model, &trace);
    Ok(finish(opts, &report))
}

/// Print the rule catalog: every stable rule id with its severity,
/// name, and (in JSON) explanation. Needs no document or query.
#[expect(clippy::unnecessary_wraps, reason = "uniform run_* signature for the dispatch table")]
fn run_rules(opts: &Options) -> Result<bool, String> {
    if opts.json {
        println!("{}", rule_catalog_json());
    } else {
        for rule in sjos_planck::Rule::ALL {
            println!("{:<6} {:<9} {}", rule.id(), format!("[{}]", rule.severity()), rule.name());
        }
    }
    Ok(true)
}

/// Concurrency certification (PL070–PL076): run the static source
/// pass over the workspace, then exhaustively explore the four
/// service-protocol models under the bounded-preemption scheduler.
/// `--selftest` additionally proves non-vacuity: every seeded static
/// mutation and every model defect mode must be caught.
fn run_conc(opts: &Options) -> Result<bool, String> {
    // `CARGO_MANIFEST_DIR` is the workspace root (the sjos package
    // lives there); `--root` overrides for out-of-tree runs.
    let root = opts.root.clone().unwrap_or_else(|| env!("CARGO_MANIFEST_DIR").to_string());
    let root = std::path::Path::new(&root);
    let sources = collect_sources(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    if sources.is_empty() {
        return Err(format!("no sources under {} (bad --root?)", root.display()));
    }
    let mut report = lint_sources(&sources);

    let config = ExploreConfig::default();
    let mut outcomes = Vec::new();
    for model in healthy_models() {
        let outcome = explore(&model, config);
        if let Some(v) = &outcome.violation {
            report.push(
                Rule::InterleavingSound,
                format!("model:{}", outcome.model),
                format!("{} [schedule {}]", v.message, render_trace(&v.trace)),
            );
        }
        if outcome.truncated {
            report.push(
                Rule::InterleavingSound,
                format!("model:{}", outcome.model),
                format!(
                    "exploration truncated at {} schedules — inconclusive",
                    config.max_schedules
                ),
            );
        }
        outcomes.push(outcome);
    }

    if opts.json {
        let models: Vec<String> = outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"model\":\"{}\",\"schedules\":{},\"max_depth\":{},\"clean\":{}}}",
                    o.model,
                    o.schedules,
                    o.max_depth,
                    o.is_clean()
                )
            })
            .collect();
        println!(
            "{{\"files\":{},\"explorer\":[{}],\"report\":{}}}",
            sources.len(),
            models.join(","),
            report.to_json()
        );
    } else {
        println!(
            "static pass: {} source files, {} diagnostics",
            sources.len(),
            report.diagnostics.len()
        );
        for o in &outcomes {
            println!(
                "explorer: {:<16} {} schedules, depth {}, {}",
                o.model,
                o.schedules,
                o.max_depth,
                if o.is_clean() { "clean" } else { "VIOLATION" }
            );
        }
        print!("{}", report.render());
    }

    if opts.selftest {
        let mut ok = report.is_clean();
        println!("== seeded static mutations (expected caught) ==");
        for mutation in StaticMutation::ALL {
            let mut doctored = sources.clone();
            apply_static_mutation(&mut doctored, mutation);
            let dirty = lint_sources(&doctored);
            if dirty.violates(mutation.expected_rule()) {
                println!("  {:<22} caught by {}", mutation.name(), mutation.expected_rule().id());
            } else {
                println!("  {:<22} MISSED", mutation.name());
                ok = false;
            }
        }
        println!("== seeded model defects (expected caught) ==");
        for (name, model) in mutated_models() {
            let outcome = explore(&model, config);
            match &outcome.violation {
                Some(v) => println!("  {name:<22} caught: {}", v.message),
                None => {
                    println!("  {name:<22} MISSED");
                    ok = false;
                }
            }
        }
        return Ok(ok);
    }
    Ok(report.is_clean())
}

/// Render an explorer trace as `T0 T1 T0 ...`.
fn render_trace(trace: &[usize]) -> String {
    let steps: Vec<String> = trace.iter().map(|t| format!("T{t}")).collect();
    steps.join(" ")
}

/// Static admission control: derive guaranteed resource bounds for the
/// optimized plan, lint the bound lattice (PL060/PL061), compare it
/// against the budgets (PL062/PL063), and replay one execution to
/// certify the bounds dynamically (PL064).
fn run_admit(opts: &Options, db: &Database, pattern: &sjos::Pattern) -> Result<bool, String> {
    let estimates = db.estimates(pattern);
    let model = *db.cost_model();
    let (algorithm, _) = parse_algo(&opts.algo)?;
    let optimized = db.optimize(pattern, algorithm).map_err(|e| e.to_string())?;
    let plan = optimized.plan;
    let memory_budget = opts.memory_budget.unwrap_or(DEFAULT_MEMORY_BUDGET);

    let (bounds, mut report) = lint_bounds(pattern, &estimates, &model, &plan, opts.batch_rows);
    report.absorb("admit", admit(&bounds, Some(memory_budget), opts.batch_budget));
    let replay =
        lint_bound_soundness(db.store(), pattern, &bounds, &plan).map_err(|e| e.to_string())?;
    report.absorb("replay", replay);

    if opts.json {
        println!(
            "{{\"bounds\":{},\"memory_budget\":{memory_budget},\"batch_budget\":{},\"report\":{}}}",
            bounds.to_json(),
            opts.batch_budget.map_or("null".to_string(), |b| b.to_string()),
            report.to_json()
        );
        return Ok(report.is_clean());
    }

    println!("plan ({}, estimated cost {:.1}):", algorithm.name(), optimized.estimated_cost);
    print!("{}", explain(&plan, pattern, &estimates, &model));
    println!();
    let root = bounds.root_rows();
    println!(
        "bounds at batch_rows {}: output rows in [{}, {}], worst-case peak {} B, \
         worst-case {} batch pulls",
        bounds.batch_rows, root.lo, root.hi, bounds.peak_bytes, bounds.batch_pulls
    );
    match opts.batch_budget {
        Some(b) => println!("budget: {memory_budget} B memory, {b} batch pulls"),
        None => println!("budget: {memory_budget} B memory"),
    }
    println!("verdict: {}", if report.is_clean() { "ADMITTED" } else { "REJECTED" });
    println!();
    Ok(finish(opts, &report))
}

/// Lint every optimizer's plan (must be clean), then every mutation of
/// the DPP plan (must be caught). Returns overall success.
fn selftest(db: &Database, pattern: &sjos::Pattern) -> Result<bool, String> {
    let estimates = db.estimates(pattern);
    let model = *db.cost_model();
    let mut ok = true;

    let algorithms: [(Algorithm, PlanExpectations); 7] = [
        (Algorithm::Dp, PlanExpectations::default()),
        (Algorithm::Dpp { lookahead: true }, PlanExpectations::default()),
        (Algorithm::Dpp { lookahead: false }, PlanExpectations::default()),
        (Algorithm::DpapEb { te: 2 }, PlanExpectations::default()),
        (Algorithm::DpapLd, PlanExpectations { left_deep: true, fully_pipelined: false }),
        (Algorithm::Fp, PlanExpectations { fully_pipelined: true, left_deep: false }),
        (Algorithm::WorstRandom { samples: 16, seed: 42 }, PlanExpectations::default()),
    ];
    println!("== optimizer plans (expected clean) ==");
    for (alg, expect) in algorithms {
        let optimized = match db.optimize(pattern, alg) {
            Ok(o) => o,
            Err(e) => {
                println!("  {:<12} FAILED to optimize: {e}", alg.name());
                ok = false;
                continue;
            }
        };
        let mut report =
            lint_plan_with(pattern, &optimized.plan, expect, Some((&estimates, &model)));
        report.absorb("dataflow", lint_dataflow(pattern, &optimized.plan, expect));
        report.absorb("exec", lint_execution(db.store(), pattern, &optimized.plan));
        let verdict = if report.is_clean() { "clean" } else { "DIRTY" };
        println!("  {:<12} {verdict}", alg.name());
        if !report.is_clean() {
            print!("{}", report.render());
            ok = false;
        }
    }

    println!("== order-property dataflow (PL042, FP proved non-blocking statically) ==");
    match db.optimize(pattern, Algorithm::Fp) {
        Ok(fp) => {
            let expect = PlanExpectations { fully_pipelined: true, left_deep: false };
            let analysis = sjos_planck::analyze_plan(pattern, &fp.plan, expect);
            if analysis.proved_pipelined && analysis.report.is_clean() {
                println!("  clean (pipeline safety proved without execution)");
            } else {
                print!("{}", analysis.report.render());
                ok = false;
            }
        }
        Err(e) => {
            println!("  FAILED to optimize with FP: {e}");
            ok = false;
        }
    }

    println!("== error surfacing (PL035, expected clean) ==");
    let base =
        db.optimize(pattern, Algorithm::Dpp { lookahead: true }).map_err(|e| e.to_string())?.plan;
    let surfacing = lint_error_surfacing(db.store(), pattern, &base);
    if surfacing.is_clean() {
        println!("  clean (fault-armed execution reports a typed storage error)");
    } else {
        print!("{}", surfacing.render());
        ok = false;
    }

    println!("== mutated plans (expected caught) ==");
    for mutation in PlanMutation::ALL {
        let name = mutation_name(mutation);
        let Some(mutated) = mutate_plan(pattern, &base, mutation) else {
            println!("  {name:<18} (not applicable to this plan)");
            continue;
        };
        let expect = PlanExpectations {
            fully_pipelined: mutation == PlanMutation::WrapRootSort,
            left_deep: false,
        };
        let mut report = lint_plan_with(pattern, &mutated, expect, Some((&estimates, &model)));
        report.absorb("dataflow", lint_dataflow(pattern, &mutated, expect));
        if report.is_clean() {
            println!("  {name:<18} MISSED");
            ok = false;
        } else {
            let rules: Vec<&str> = report.rules().iter().map(|r| r.id()).collect();
            println!("  {name:<18} caught by {}", rules.join(", "));
        }
    }

    println!("== search-trace certification (expected clean) ==");
    for algorithm in [Algorithm::Dp, Algorithm::Dpp { lookahead: true }] {
        match record_search_trace(pattern, &estimates, &model, algorithm) {
            Ok(trace) => {
                let report = certify_trace(pattern, &estimates, &model, &trace);
                if report.is_clean() {
                    println!(
                        "  {:<12} certified ({} events)",
                        algorithm.name(),
                        trace.events.len()
                    );
                } else {
                    print!("{}", report.render());
                    ok = false;
                }
            }
            Err(e) => {
                println!("  {:<12} FAILED to record a trace: {e}", algorithm.name());
                ok = false;
            }
        }
    }

    println!("== corrupted traces (expected caught) ==");
    let honest =
        record_search_trace(pattern, &estimates, &model, Algorithm::Dpp { lookahead: true })?;
    for (corruption, name) in TraceCorruption::ALL {
        let doctored = corrupt_trace(&honest, corruption);
        let report = certify_trace(pattern, &estimates, &model, &doctored);
        if report.is_clean() {
            println!("  {name:<18} MISSED");
            ok = false;
        } else {
            let rules: Vec<&str> = report.rules().iter().map(|r| r.id()).collect();
            println!("  {name:<18} caught by {}", rules.join(", "));
        }
    }

    println!("== optimizer cross-checks ==");
    let cross: Report = lint_optimizers(pattern, &estimates, &model);
    if cross.is_clean() {
        println!("  clean");
    } else {
        print!("{}", cross.render());
        ok = false;
    }

    println!("== resource bounds (PL060-PL064, expected admissible) ==");
    for algorithm in [Algorithm::Dpp { lookahead: true }, Algorithm::Fp] {
        let plan = match db.optimize(pattern, algorithm) {
            Ok(o) => o.plan,
            Err(e) => {
                println!("  {:<12} FAILED to optimize: {e}", algorithm.name());
                ok = false;
                continue;
            }
        };
        let (bounds, mut report) =
            lint_bounds(pattern, &estimates, &model, &plan, sjos::exec::BATCH_ROWS);
        report.absorb("admit", admit(&bounds, Some(DEFAULT_MEMORY_BUDGET), None));
        match lint_bound_soundness(db.store(), pattern, &bounds, &plan) {
            Ok(replay) => report.absorb("replay", replay),
            Err(e) => {
                println!("  {:<12} FAILED to replay: {e}", algorithm.name());
                ok = false;
                continue;
            }
        }
        if report.is_clean() {
            println!(
                "  {:<12} admitted (peak bound {} B, {} pulls)",
                algorithm.name(),
                bounds.peak_bytes,
                bounds.batch_pulls
            );
        } else {
            print!("{}", report.render());
            ok = false;
        }
    }

    println!("== starved budget (expected rejected) ==");
    let (bounds, _) = lint_bounds(pattern, &estimates, &model, &base, sjos::exec::BATCH_ROWS);
    let starved = admit(&bounds, Some(1), Some(1));
    if starved.is_clean() {
        println!("  1 B / 1 pull budget MISSED");
        ok = false;
    } else {
        let rules: Vec<&str> = starved.rules().iter().map(|r| r.id()).collect();
        println!("  1 B / 1 pull budget rejected by {}", rules.join(", "));
    }
    Ok(ok)
}
