//! `planlint` — static analysis of structural-join plans.
//!
//! Optimizes a tree-pattern query (or corrupts the plan on request),
//! then lints the plan against the `planck` rule set without executing
//! it, printing the annotated plan and a diagnostic report:
//!
//! ```sh
//! # lint the DPP plan for a query against a generated corpus
//! cargo run --bin planlint -- --gen pers:5000 --query '//manager//employee/name'
//! # prove the linter catches a seeded bug
//! cargo run --bin planlint -- --query '//a/b/c' --mutate flip-axis
//! # optimizer cross-checks (DPP==DP, FP optimality, ubCost shape)
//! cargo run --bin planlint -- --query '//a/b/c' --cross
//! # order-property dataflow: prove the FP plan pipeline-safe statically
//! cargo run --bin planlint -- dataflow --query '//a/b/c' --algo fp
//! # record a DPP search trace and certify its admissibility
//! cargo run --bin planlint -- certify --gen pers:5000 --query '//manager//employee'
//! # prove the certifier rejects doctored evidence
//! cargo run --bin planlint -- certify --query '//a/b/c' --corrupt inflate-ubcost
//! # the full battery: mutations, dataflow, certification
//! cargo run --bin planlint -- --query '//a/b/c' --selftest
//! ```
//!
//! `--json` switches any mode's report to machine-readable JSON (rule
//! id, severity, plan node path, message) for CI annotation.
//!
//! Exit status: 0 when clean, 1 when any rule fired, 2 on usage
//! errors.

use sjos::core::{mutate_plan, Algorithm, PlanMutation};
use sjos::datagen::{dblp::dblp, mbench::mbench, pers::pers, GenConfig};
use sjos::explain::explain;
use sjos::{Database, Document};
use sjos_planck::{
    analyze_plan, certify_trace, corrupt_trace, lint_dataflow, lint_error_surfacing,
    lint_execution, lint_optimizers, lint_plan_with, record_search_trace, PlanExpectations, Report,
    TraceCorruption,
};

/// Fallback document when neither `--xml` nor `--gen` is given: big
/// enough that the optimizers make non-trivial choices.
const SAMPLE: &str = "<a>\
    <b><c>x</c><c>y</c><e/></b>\
    <b><c>z</c><e/></b>\
    <b><c/></b>\
    <d><e/><e/></d>\
    <d><e/></d>\
</a>";

/// Which analysis mode to run (leading positional argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Structural lint + dynamic cross-check (the default).
    Lint,
    /// Order-property dataflow only (PL040–PL043).
    Dataflow,
    /// Record and certify a search trace (PL050–PL053).
    Certify,
}

struct Options {
    command: Command,
    xml: Option<String>,
    gen: Option<String>,
    query: String,
    algo: String,
    mutate: Option<String>,
    corrupt: Option<String>,
    cross: bool,
    selftest: bool,
    json: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: planlint [dataflow|certify] \
                 [--xml <file> | --gen pers:<n>|dblp:<n>|mbench:<n>] \
                 --query <pattern> [--algo dp|dpp|dpp-nl|dpap-eb:<te>|dpap-ld|fp|random:<seed>] \
                 [--mutate <mutation>] \
                 [--corrupt inflate-ubcost|drop-finalized|cheap-prune] \
                 [--cross] [--selftest] [--json]"
            );
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(clean) => std::process::exit(if clean { 0 } else { 1 }),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        command: Command::Lint,
        xml: None,
        gen: None,
        query: String::new(),
        algo: "dpp".to_string(),
        mutate: None,
        corrupt: None,
        cross: false,
        selftest: false,
        json: false,
    };
    let mut it = args.iter().peekable();
    if let Some(first) = it.peek() {
        match first.as_str() {
            "dataflow" => {
                opts.command = Command::Dataflow;
                it.next();
            }
            "certify" => {
                opts.command = Command::Certify;
                it.next();
            }
            _ => {}
        }
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--xml" => opts.xml = Some(it.next().ok_or("--xml needs a file")?.clone()),
            "--gen" => opts.gen = Some(it.next().ok_or("--gen needs a spec")?.clone()),
            "--query" => opts.query = it.next().ok_or("--query needs a pattern")?.clone(),
            "--algo" => opts.algo = it.next().ok_or("--algo needs a name")?.clone(),
            "--mutate" => opts.mutate = Some(it.next().ok_or("--mutate needs a name")?.clone()),
            "--corrupt" => opts.corrupt = Some(it.next().ok_or("--corrupt needs a kind")?.clone()),
            "--cross" => opts.cross = true,
            "--selftest" => opts.selftest = true,
            "--json" => opts.json = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.query.is_empty() {
        return Err("--query is required".into());
    }
    if opts.corrupt.is_some() && opts.command != Command::Certify {
        return Err("--corrupt only applies to the certify command".into());
    }
    if opts.mutate.is_some() && opts.command == Command::Certify {
        return Err("certify records a fresh search trace; --mutate does not apply".into());
    }
    Ok(opts)
}

fn load(opts: &Options) -> Result<Database, String> {
    let doc: Document = match (&opts.xml, &opts.gen) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Document::parse(&text).map_err(|e| e.to_string())?
        }
        (None, Some(spec)) => {
            let (kind, n) = spec.split_once(':').ok_or("gen spec is kind:count")?;
            let n: usize = n.parse().map_err(|_| "bad node count")?;
            let config = GenConfig::sized(n);
            match kind {
                "pers" => pers(config),
                "dblp" => dblp(config),
                "mbench" => mbench(config),
                other => return Err(format!("unknown generator {other}")),
            }
        }
        (None, None) => Document::parse(SAMPLE).expect("sample parses"),
        _ => return Err("provide at most one of --xml and --gen".into()),
    };
    Ok(Database::from_document(doc))
}

fn parse_algo(name: &str) -> Result<(Algorithm, PlanExpectations), String> {
    let none = PlanExpectations::default();
    Ok(match name {
        "dp" => (Algorithm::Dp, none),
        "dpp" => (Algorithm::Dpp { lookahead: true }, none),
        "dpp-nl" => (Algorithm::Dpp { lookahead: false }, none),
        "dpap-ld" => {
            (Algorithm::DpapLd, PlanExpectations { left_deep: true, fully_pipelined: false })
        }
        "fp" => (Algorithm::Fp, PlanExpectations { fully_pipelined: true, left_deep: false }),
        other => {
            if let Some(te) = other.strip_prefix("dpap-eb:") {
                let te: usize = te.parse().map_err(|_| "bad T_e")?;
                (Algorithm::DpapEb { te }, none)
            } else if let Some(seed) = other.strip_prefix("random:") {
                let seed: u64 = seed.parse().map_err(|_| "bad seed")?;
                (Algorithm::WorstRandom { samples: 1, seed }, none)
            } else {
                return Err(format!("unknown algorithm {other}"));
            }
        }
    })
}

fn parse_mutation(name: &str) -> Result<PlanMutation, String> {
    Ok(match name {
        "swap-join-inputs" => PlanMutation::SwapJoinInputs,
        "flip-orientation" => PlanMutation::FlipOrientation,
        "rewire-join" => PlanMutation::RewireJoin,
        "flip-axis" => PlanMutation::FlipAxis,
        "drop-sort" => PlanMutation::DropSort,
        "retarget-sort" => PlanMutation::RetargetSort,
        "insert-input-sort" => PlanMutation::InsertInputSort,
        "duplicate-leaf" => PlanMutation::DuplicateLeaf,
        "wrap-root-sort" => PlanMutation::WrapRootSort,
        other => return Err(format!("unknown mutation {other}")),
    })
}

fn mutation_name(m: PlanMutation) -> &'static str {
    match m {
        PlanMutation::SwapJoinInputs => "swap-join-inputs",
        PlanMutation::FlipOrientation => "flip-orientation",
        PlanMutation::RewireJoin => "rewire-join",
        PlanMutation::FlipAxis => "flip-axis",
        PlanMutation::DropSort => "drop-sort",
        PlanMutation::RetargetSort => "retarget-sort",
        PlanMutation::InsertInputSort => "insert-input-sort",
        PlanMutation::DuplicateLeaf => "duplicate-leaf",
        PlanMutation::WrapRootSort => "wrap-root-sort",
    }
}

/// Print `report` in the selected format and return its cleanliness.
fn finish(opts: &Options, report: &Report) -> bool {
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    report.is_clean()
}

fn run(opts: &Options) -> Result<bool, String> {
    let db = load(opts)?;
    let pattern = sjos::parse_pattern(&opts.query).map_err(|e| e.to_string())?;
    let estimates = db.estimates(&pattern);
    let model = *db.cost_model();

    if opts.selftest {
        return selftest(&db, &pattern);
    }
    if opts.command == Command::Certify {
        return run_certify(opts, &pattern, &estimates, &model);
    }

    let (algorithm, mut expect) = parse_algo(&opts.algo)?;
    let optimized = db.optimize(&pattern, algorithm).map_err(|e| e.to_string())?;
    let mut plan = optimized.plan;
    if let Some(name) = &opts.mutate {
        let mutation = parse_mutation(name)?;
        plan = mutate_plan(&pattern, &plan, mutation)
            .ok_or_else(|| format!("mutation {name} does not apply to this plan"))?;
        if mutation == PlanMutation::WrapRootSort {
            // The mutated plan is only wrong *as* an FP claim.
            expect.fully_pipelined = true;
        }
        if !opts.json {
            println!("plan ({}, mutated by {name}):", algorithm.name());
        }
    } else if !opts.json {
        println!("plan ({}, estimated cost {:.1}):", algorithm.name(), optimized.estimated_cost);
    }

    // `explain` resolves node labels through the pattern; fall back to
    // the compact rendering when a corrupted plan references unknown
    // nodes.
    if !opts.json {
        let renderable = plan.bound_nodes().iter().all(|id| id.index() < pattern.len());
        if renderable {
            print!("{}", explain(&plan, &pattern, &estimates, &model));
        } else {
            println!("{plan}");
        }
        println!();
    }

    if opts.command == Command::Dataflow {
        let analysis = analyze_plan(&pattern, &plan, expect);
        if !opts.json {
            let p = analysis.root;
            println!(
                "dataflow: order {:?}, duplicate-free {}, document-order {}, blocking-free {}, \
                 proved pipelined {}",
                p.order,
                p.duplicate_free,
                p.document_order,
                p.blocking_free,
                analysis.proved_pipelined
            );
        }
        return Ok(finish(opts, &analysis.report));
    }

    let mut report = lint_plan_with(&pattern, &plan, expect, Some((&estimates, &model)));
    // The order-property dataflow pass runs in every lint: redundant
    // sorts and unprovable order contracts are plan defects whichever
    // mode asked.
    report.absorb("dataflow", lint_dataflow(&pattern, &plan, expect));
    if opts.mutate.is_none() {
        // Dynamic half (PL034): run the plan and verify the batch
        // stream delivers what the static rules proved it claims.
        report.absorb("exec", lint_execution(db.store(), &pattern, &plan));
        // Error discipline (PL035): the same plan on a fault-armed
        // store copy must fail with a typed storage error.
        report.absorb("exec", lint_error_surfacing(db.store(), &pattern, &plan));
    }
    if opts.cross {
        let cross = lint_optimizers(&pattern, &estimates, &model);
        report.absorb("cross", cross);
    }
    Ok(finish(opts, &report))
}

/// Record a search trace for the requested algorithm, optionally
/// corrupt it, and certify its admissibility.
fn run_certify(
    opts: &Options,
    pattern: &sjos::Pattern,
    estimates: &sjos::stats::PatternEstimates,
    model: &sjos::core::CostModel,
) -> Result<bool, String> {
    let (algorithm, _) = parse_algo(&opts.algo)?;
    let mut trace = record_search_trace(pattern, estimates, model, algorithm)?;
    let mut label = String::new();
    if let Some(kind) = &opts.corrupt {
        let corruption =
            TraceCorruption::parse(kind).ok_or_else(|| format!("unknown corruption {kind}"))?;
        trace = corrupt_trace(&trace, corruption);
        label = format!(", corrupted by {kind}");
    }
    if !opts.json {
        println!(
            "trace ({}, {} events, optimum {:.1}{label}):",
            trace.algorithm,
            trace.events.len(),
            trace.optimum
        );
    }
    let report = certify_trace(pattern, estimates, model, &trace);
    Ok(finish(opts, &report))
}

/// Lint every optimizer's plan (must be clean), then every mutation of
/// the DPP plan (must be caught). Returns overall success.
fn selftest(db: &Database, pattern: &sjos::Pattern) -> Result<bool, String> {
    let estimates = db.estimates(pattern);
    let model = *db.cost_model();
    let mut ok = true;

    let algorithms: [(Algorithm, PlanExpectations); 7] = [
        (Algorithm::Dp, PlanExpectations::default()),
        (Algorithm::Dpp { lookahead: true }, PlanExpectations::default()),
        (Algorithm::Dpp { lookahead: false }, PlanExpectations::default()),
        (Algorithm::DpapEb { te: 2 }, PlanExpectations::default()),
        (Algorithm::DpapLd, PlanExpectations { left_deep: true, fully_pipelined: false }),
        (Algorithm::Fp, PlanExpectations { fully_pipelined: true, left_deep: false }),
        (Algorithm::WorstRandom { samples: 16, seed: 42 }, PlanExpectations::default()),
    ];
    println!("== optimizer plans (expected clean) ==");
    for (alg, expect) in algorithms {
        let optimized = match db.optimize(pattern, alg) {
            Ok(o) => o,
            Err(e) => {
                println!("  {:<12} FAILED to optimize: {e}", alg.name());
                ok = false;
                continue;
            }
        };
        let mut report =
            lint_plan_with(pattern, &optimized.plan, expect, Some((&estimates, &model)));
        report.absorb("dataflow", lint_dataflow(pattern, &optimized.plan, expect));
        report.absorb("exec", lint_execution(db.store(), pattern, &optimized.plan));
        let verdict = if report.is_clean() { "clean" } else { "DIRTY" };
        println!("  {:<12} {verdict}", alg.name());
        if !report.is_clean() {
            print!("{}", report.render());
            ok = false;
        }
    }

    println!("== order-property dataflow (PL042, FP proved non-blocking statically) ==");
    match db.optimize(pattern, Algorithm::Fp) {
        Ok(fp) => {
            let expect = PlanExpectations { fully_pipelined: true, left_deep: false };
            let analysis = sjos_planck::analyze_plan(pattern, &fp.plan, expect);
            if analysis.proved_pipelined && analysis.report.is_clean() {
                println!("  clean (pipeline safety proved without execution)");
            } else {
                print!("{}", analysis.report.render());
                ok = false;
            }
        }
        Err(e) => {
            println!("  FAILED to optimize with FP: {e}");
            ok = false;
        }
    }

    println!("== error surfacing (PL035, expected clean) ==");
    let base =
        db.optimize(pattern, Algorithm::Dpp { lookahead: true }).map_err(|e| e.to_string())?.plan;
    let surfacing = lint_error_surfacing(db.store(), pattern, &base);
    if surfacing.is_clean() {
        println!("  clean (fault-armed execution reports a typed storage error)");
    } else {
        print!("{}", surfacing.render());
        ok = false;
    }

    println!("== mutated plans (expected caught) ==");
    for mutation in PlanMutation::ALL {
        let name = mutation_name(mutation);
        let Some(mutated) = mutate_plan(pattern, &base, mutation) else {
            println!("  {name:<18} (not applicable to this plan)");
            continue;
        };
        let expect = PlanExpectations {
            fully_pipelined: mutation == PlanMutation::WrapRootSort,
            left_deep: false,
        };
        let mut report = lint_plan_with(pattern, &mutated, expect, Some((&estimates, &model)));
        report.absorb("dataflow", lint_dataflow(pattern, &mutated, expect));
        if report.is_clean() {
            println!("  {name:<18} MISSED");
            ok = false;
        } else {
            let rules: Vec<&str> = report.rules().iter().map(|r| r.id()).collect();
            println!("  {name:<18} caught by {}", rules.join(", "));
        }
    }

    println!("== search-trace certification (expected clean) ==");
    for algorithm in [Algorithm::Dp, Algorithm::Dpp { lookahead: true }] {
        match record_search_trace(pattern, &estimates, &model, algorithm) {
            Ok(trace) => {
                let report = certify_trace(pattern, &estimates, &model, &trace);
                if report.is_clean() {
                    println!(
                        "  {:<12} certified ({} events)",
                        algorithm.name(),
                        trace.events.len()
                    );
                } else {
                    print!("{}", report.render());
                    ok = false;
                }
            }
            Err(e) => {
                println!("  {:<12} FAILED to record a trace: {e}", algorithm.name());
                ok = false;
            }
        }
    }

    println!("== corrupted traces (expected caught) ==");
    let honest =
        record_search_trace(pattern, &estimates, &model, Algorithm::Dpp { lookahead: true })?;
    for (corruption, name) in TraceCorruption::ALL {
        let doctored = corrupt_trace(&honest, corruption);
        let report = certify_trace(pattern, &estimates, &model, &doctored);
        if report.is_clean() {
            println!("  {name:<18} MISSED");
            ok = false;
        } else {
            let rules: Vec<&str> = report.rules().iter().map(|r| r.id()).collect();
            println!("  {name:<18} caught by {}", rules.join(", "));
        }
    }

    println!("== optimizer cross-checks ==");
    let cross: Report = lint_optimizers(pattern, &estimates, &model);
    if cross.is_clean() {
        println!("  clean");
    } else {
        print!("{}", cross.render());
        ok = false;
    }
    Ok(ok)
}
