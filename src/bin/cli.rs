//! `sjos-cli` — an interactive shell over the sjos engine.
//!
//! ```sh
//! # load an XML file
//! cargo run --release --bin sjos-cli -- data.xml
//! # or generate a corpus in-process
//! cargo run --release --bin sjos-cli -- --gen pers:20000
//! ```
//!
//! Then type tree-pattern queries (`//manager//employee/name`) or
//! commands (`\help`).

use std::io::{BufRead, Write};
use std::sync::Arc;

use sjos::datagen::{dblp::dblp, fold_document, mbench::mbench, pers::pers, GenConfig};
use sjos::explain::{analyze_summary, explain};
use sjos::{Algorithm, Database, Document, QueryService, ServiceConfig};

struct Session {
    db: Arc<Database>,
    algorithm: Algorithm,
    limit: usize,
    /// Lazily started concurrent query service sharing `db` (the
    /// `\service` command).
    service: Option<(QueryService, sjos::service::Session)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let db = match load(&args) {
        Ok(db) => db,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: sjos-cli <file.xml> | --gen pers:<n>|dblp:<n>|mbench:<n> [--fold <k>]"
            );
            std::process::exit(2);
        }
    };
    println!(
        "loaded {} elements, {} distinct tags. \\help for commands.",
        db.document().len(),
        db.document().tags().len()
    );
    let mut session = Session {
        db: Arc::new(db),
        algorithm: Algorithm::Dpp { lookahead: true },
        limit: 10,
        service: None,
    };
    let stdin = std::io::stdin();
    loop {
        print!("sjos> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        dispatch(&mut session, line);
    }
}

fn load(args: &[String]) -> Result<Database, String> {
    let mut file: Option<&str> = None;
    let mut gen: Option<&str> = None;
    let mut fold: usize = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gen" => gen = Some(it.next().ok_or("--gen needs a spec")?),
            "--fold" => {
                fold = it
                    .next()
                    .ok_or("--fold needs a factor")?
                    .parse()
                    .map_err(|_| "bad fold factor")?;
            }
            other => file = Some(other),
        }
    }
    let doc: Document = match (file, gen) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Document::parse(&text).map_err(|e| e.to_string())?
        }
        (None, Some(spec)) => {
            let (kind, n) = spec.split_once(':').ok_or("gen spec is kind:count")?;
            let n: usize = n.parse().map_err(|_| "bad node count")?;
            let config = GenConfig::sized(n);
            match kind {
                "pers" => pers(config),
                "dblp" => dblp(config),
                "mbench" => mbench(config),
                other => return Err(format!("unknown generator {other}")),
            }
        }
        _ => return Err("provide exactly one of <file.xml> or --gen".into()),
    };
    let doc = if fold > 1 { fold_document(&doc, fold) } else { doc };
    Ok(Database::from_document(doc))
}

fn dispatch(session: &mut Session, line: &str) {
    if let Some(rest) = line.strip_prefix('\\') {
        command(session, rest);
    } else {
        run_query(session, line, Mode::Query);
    }
}

fn command(session: &mut Session, rest: &str) {
    let (cmd, arg) = match rest.split_once(' ') {
        Some((c, a)) => (c, a.trim()),
        None => (rest, ""),
    };
    match cmd {
        "help" => {
            println!(
                "\\algo <dp|dpp|dpp-nl|eb:<n>|ld|fp|bad>   choose the optimizer (now: {})\n\
                 \\explain <query>                         show the chosen plan\n\
                 \\analyze <query>                         plan + execution counters\n\
                 \\holistic <query>                        evaluate with the TwigStack twig join\n\
                 \\calibrate                               measure cost factors on this machine\n\
                 \\service <query>                         serve via the admission-controlled service\n\
                 \\service                                 print service metrics as JSON\n\
                 \\stats                                   tag cardinalities\n\
                 \\limit <n>                               rows to print (now: {})\n\
                 \\quit                                    exit",
                session.algorithm.name(),
                session.limit
            );
        }
        "algo" => match parse_algo(arg) {
            Some(a) => {
                session.algorithm = a;
                println!("optimizer: {}", a.name());
            }
            None => println!("unknown algorithm {arg:?}"),
        },
        "limit" => match arg.parse::<usize>() {
            Ok(n) => session.limit = n,
            Err(_) => println!("bad limit {arg:?}"),
        },
        "stats" => {
            let doc = session.db.document();
            let mut tags: Vec<(String, u64)> = doc
                .tags()
                .iter()
                .map(|(t, name)| (name.to_owned(), session.db.catalog().cardinality(t)))
                .collect();
            tags.sort_by_key(|t| std::cmp::Reverse(t.1));
            for (name, card) in tags {
                println!("{card:>10}  {name}");
            }
        }
        "explain" => run_query(session, arg, Mode::Explain),
        "analyze" => run_query(session, arg, Mode::Analyze),
        "calibrate" => {
            let report = sjos::core::calibrate(session.db.store(), 20_000, 5);
            let f = report.factors;
            println!(
                "measured over {} elements: f_I={:.3} f_s={:.3} f_IO={:.3} f_st={:.3} \
                 (ns/unit: {:.1}/{:.1}/{:.1}/{:.1})",
                report.sample_size,
                f.f_i,
                f.f_s,
                f.f_io,
                f.f_st,
                report.nanos_per_unit[0],
                report.nanos_per_unit[1],
                report.nanos_per_unit[3],
                report.nanos_per_unit[2],
            );
            println!("(factors are informational; restart with Database::with_calibrated_model to apply)");
        }
        "service" => {
            let (service, svc_session) = session.service.get_or_insert_with(|| {
                let service = QueryService::new(Arc::clone(&session.db), ServiceConfig::default());
                let svc_session = service.session();
                (service, svc_session)
            });
            if arg.is_empty() {
                println!("{}", service.metrics_json());
            } else {
                match svc_session.query_with(arg, session.algorithm) {
                    Ok(out) => {
                        let mode = if out.degraded {
                            format!(
                                " | DEGRADED: spilled {} runs ({} B, {} merge passes)",
                                out.result.metrics.spilled_runs,
                                out.result.metrics.spilled_bytes,
                                out.result.metrics.spill_merge_passes,
                            )
                        } else {
                            String::new()
                        };
                        println!(
                            "{} rows | cache {} | waited {:.3} ms | certified {} B, measured {} B \
                             | {} disk reads, {} buffer hits (this query){mode}",
                            out.result.len(),
                            if out.cache_hit { "hit" } else { "miss" },
                            out.waited.as_secs_f64() * 1e3,
                            out.plan.bounds.peak_bytes,
                            out.result.metrics.peak_bytes,
                            out.io.disk_reads,
                            out.io.buffer_hits,
                        );
                    }
                    Err(e) => println!("service error: {e}"),
                }
            }
        }
        "holistic" => match sjos::parse_pattern(arg) {
            Ok(pattern) => {
                let t0 = std::time::Instant::now();
                match session.db.holistic(&pattern) {
                    Ok(res) => println!(
                        "holistic twig join: {} matches in {:.3} ms \
                         ({} stream elements, {} path solutions, {} pushes)",
                        res.metrics.matches,
                        t0.elapsed().as_secs_f64() * 1e3,
                        res.metrics.stream_elements,
                        res.metrics.path_solutions,
                        res.metrics.stack_pushes,
                    ),
                    Err(e) => println!("holistic evaluation failed: {e}"),
                }
            }
            Err(e) => println!("{e}"),
        },
        other => println!("unknown command \\{other} (try \\help)"),
    }
}

fn parse_algo(arg: &str) -> Option<Algorithm> {
    Some(match arg {
        "dp" => Algorithm::Dp,
        "dpp" => Algorithm::Dpp { lookahead: true },
        "dpp-nl" => Algorithm::Dpp { lookahead: false },
        "ld" => Algorithm::DpapLd,
        "fp" => Algorithm::Fp,
        "bad" => Algorithm::WorstRandom { samples: 64, seed: 2003 },
        _ => {
            let te = arg.strip_prefix("eb:")?.parse().ok()?;
            Algorithm::DpapEb { te }
        }
    })
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Plan only — no execution.
    Explain,
    /// Plan + execution counters, no rows.
    Analyze,
    /// Plan + counters + rows.
    Query,
}

fn run_query(session: &Session, query: &str, mode: Mode) {
    if query.is_empty() {
        println!("empty query");
        return;
    }
    let pattern = match sjos::parse_pattern(query) {
        Ok(p) => p,
        Err(e) => {
            println!("{e}");
            return;
        }
    };
    let optimized = match session.db.optimize(&pattern, session.algorithm) {
        Ok(o) => o,
        Err(e) => {
            println!("optimization failed: {e}");
            return;
        }
    };
    let est = session.db.estimates(&pattern);
    println!(
        "-- {} | {:.3} ms | {} plans considered",
        session.algorithm.name(),
        optimized.stats.elapsed.as_secs_f64() * 1e3,
        optimized.stats.plans_considered
    );
    print!("{}", explain(&optimized.plan, &pattern, &est, session.db.cost_model()));
    if mode == Mode::Explain {
        return;
    }
    match session.db.execute(&pattern, &optimized.plan) {
        Ok(result) => {
            println!("{}", analyze_summary(&result));
            if mode == Mode::Query {
                let doc = session.db.document();
                for row in result.canonical_rows().iter().take(session.limit) {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|&id| {
                            let node = doc.node(id);
                            let tag = doc.tag_name(node.tag);
                            let text = node.text.trim();
                            if text.is_empty() {
                                format!("{tag}@{}", node.region.start)
                            } else {
                                format!("{tag}={text}")
                            }
                        })
                        .collect();
                    println!("  {}", cells.join(" | "));
                }
                if result.len() > session.limit {
                    println!("  ... {} more", result.len() - session.limit);
                }
            }
        }
        Err(e) => println!("execution error: {e}"),
    }
}
