//! Multi-line plan rendering with cardinality estimates — the
//! `EXPLAIN` half of the CLI and a debugging aid for optimizer work.

use sjos_core::CostModel;
use sjos_exec::{JoinAlgo, PlanNode};
use sjos_pattern::{Axis, NodeSet, Pattern};
use sjos_stats::PatternEstimates;

/// Render `plan` as an indented tree, annotating every operator with
/// the estimated output cardinality and cost contribution under
/// `model`, e.g.:
///
/// ```text
/// STJ-D manager//employee            ~9037 rows  ordered by employee
/// ├─ Scan manager                     ~750 rows
/// └─ Scan employee                   ~1125 rows
/// ```
pub fn explain(
    plan: &PlanNode,
    pattern: &Pattern,
    estimates: &PatternEstimates,
    model: &CostModel,
) -> String {
    let mut out = String::new();
    render(plan, pattern, estimates, model, "", "", &mut out);
    out
}

fn node_label(pattern: &Pattern, id: sjos_pattern::PnId) -> String {
    format!("{}#{}", pattern.node(id).tag, id.0)
}

fn render(
    plan: &PlanNode,
    pattern: &Pattern,
    estimates: &PatternEstimates,
    model: &CostModel,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
) {
    let (cost, rows) = model.plan_cost(plan, pattern, estimates);
    let line = match plan {
        PlanNode::IndexScan { pnode } => {
            let mut s = format!("Scan {}", node_label(pattern, *pnode));
            if pattern.node(*pnode).predicate.is_some() {
                s.push_str(" [filtered]");
            }
            s
        }
        PlanNode::Sort { by, .. } => {
            format!("Sort by {}", node_label(pattern, *by))
        }
        PlanNode::StructuralJoin { anc, desc, axis, algo, .. } => {
            let alg = match algo {
                JoinAlgo::StackTreeAnc => "STJ-Anc",
                JoinAlgo::StackTreeDesc => "STJ-Desc",
                JoinAlgo::MergeJoin => "MPMGJN",
            };
            let ax = match axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            };
            format!("{alg} {}{ax}{}", node_label(pattern, *anc), node_label(pattern, *desc))
        }
    };
    let ordered = node_label(pattern, plan.ordered_by());
    out.push_str(&format!(
        "{prefix}{line:<40} ~{rows:.0} rows  cost {cost:.0}  ordered by {ordered}\n"
    ));
    let children: Vec<&PlanNode> = match plan {
        PlanNode::IndexScan { .. } => vec![],
        PlanNode::Sort { input, .. } => vec![input],
        PlanNode::StructuralJoin { left, right, .. } => vec![left, right],
    };
    let n = children.len();
    for (i, child) in children.into_iter().enumerate() {
        let last = i + 1 == n;
        let (head, tail) = if last {
            (format!("{child_prefix}└─ "), format!("{child_prefix}   "))
        } else {
            (format!("{child_prefix}├─ "), format!("{child_prefix}│  "))
        };
        render(child, pattern, estimates, model, &head, &tail, out);
    }
}

/// A one-paragraph summary of an executed query: plan class, work
/// counters, and storage traffic. The `EXPLAIN ANALYZE` companion to
/// [`explain`]. The counters are flushed batch-at-a-time by the
/// vectorized operators but their totals are exact per tuple. When a
/// sort spilled, a second segment reports the external-sort traffic;
/// in-memory executions keep the classic one-line shape.
pub fn analyze_summary(result: &sjos_exec::QueryResult) -> String {
    let m = &result.metrics;
    let mut s = format!(
        "matches: {}  | operator tuples: {} | scanned: {} | stack push/pop: {}/{} | \
         buffered pairs: {} | rescans: {} | sorts: {} ({} tuples) | peak buffered: {} B | \
         io: {} hits, {} reads, {} evictions | elapsed: {:.3} ms",
        m.output_tuples,
        m.produced_tuples,
        m.scanned_records,
        m.stack_pushes,
        m.stack_pops,
        m.buffered_pairs,
        m.merge_rescans,
        m.sort_operations,
        m.sorted_tuples,
        m.peak_bytes,
        result.io.buffer_hits,
        result.io.disk_reads,
        result.io.evictions,
        result.elapsed.as_secs_f64() * 1e3,
    );
    if m.spilled_runs > 0 {
        s.push_str(&format!(
            " | spill: {} runs, {} B, {} merge passes, {} pages written, {} pages read",
            m.spilled_runs,
            m.spilled_bytes,
            m.spill_merge_passes,
            result.io.spill_page_writes,
            result.io.spill_page_reads,
        ));
    }
    s
}

/// Sanity helper: estimated rows of the full pattern (what `explain`
/// shows at the plan root).
pub fn estimated_matches(pattern: &Pattern, estimates: &PatternEstimates) -> f64 {
    estimates.cluster_cardinality(pattern, NodeSet::full(pattern.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Database};

    fn setup() -> (Database, Pattern) {
        let db =
            Database::from_xml("<dept><emp><name>a</name></emp><emp><name>b</name></emp></dept>")
                .unwrap();
        let pattern = crate::parse_pattern("//dept/emp/name").unwrap();
        (db, pattern)
    }

    #[test]
    fn explain_renders_every_operator() {
        let (db, pattern) = setup();
        let optimized = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap();
        let est = db.estimates(&pattern);
        let text = explain(&optimized.plan, &pattern, &est, db.cost_model());
        assert_eq!(text.matches("Scan").count(), 3, "three scans expected:\n{text}");
        assert!(text.contains("STJ-"), "{text}");
        assert!(text.contains("rows"), "{text}");
        assert!(text.contains("dept#0"), "{text}");
    }

    #[test]
    fn explain_marks_filtered_scans() {
        let db = Database::from_xml("<e><n>x</n><n>y</n></e>").unwrap();
        let pattern = crate::parse_pattern("//e/n[text()='x']").unwrap();
        let optimized = db.optimize(&pattern, Algorithm::Fp).unwrap();
        let est = db.estimates(&pattern);
        let text = explain(&optimized.plan, &pattern, &est, db.cost_model());
        assert!(text.contains("[filtered]"), "{text}");
    }

    #[test]
    fn analyze_summary_reports_counters() {
        let (db, _) = setup();
        let out = db.query("//dept/emp/name").unwrap();
        let s = analyze_summary(&out.result);
        assert!(s.contains("matches: 2"), "{s}");
        assert!(s.contains("peak buffered"), "{s}");
        assert!(s.contains("elapsed"), "{s}");
    }

    #[test]
    fn analyze_summary_reports_spill_traffic_only_when_spilled() {
        use std::sync::Arc;

        use sjos_exec::{JoinAlgo, PlanNode, QueryGuard, SpillPolicy};
        use sjos_pattern::{Axis, PnId};

        let mut xml = String::from("<dept>");
        for _ in 0..3_000 {
            xml.push_str("<emp/>");
        }
        xml.push_str("</dept>");
        let db = Database::from_xml(&xml).unwrap();
        let pattern = crate::parse_pattern("//dept//emp").unwrap();
        let inner = PlanNode::StructuralJoin {
            left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
            right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Descendant,
            algo: JoinAlgo::StackTreeDesc,
        };
        let plan = PlanNode::Sort { input: Box::new(inner), by: PnId(0) };
        let guard = Arc::new(QueryGuard::unlimited());
        let spilled = sjos_exec::execute_guarded_spill(
            db.store(),
            &pattern,
            &plan,
            &guard,
            SpillPolicy::with_threshold(0),
        )
        .unwrap();
        let s = analyze_summary(&spilled);
        assert!(s.contains("spill:"), "{s}");
        assert!(s.contains("pages written"), "{s}");

        let resident = sjos_exec::execute(db.store(), &pattern, &plan).unwrap();
        let s = analyze_summary(&resident);
        assert!(!s.contains("spill:"), "in-memory summary must keep the classic shape: {s}");
    }

    #[test]
    fn estimated_matches_is_positive_for_matching_patterns() {
        let (db, pattern) = setup();
        let est = db.estimates(&pattern);
        assert!(estimated_matches(&pattern, &est) > 0.0);
    }
}
