//! # sjos — Structural Join Order Selection for XML Query Optimization
//!
//! A full reproduction of Wu, Patel & Jagadish, *Structural Join
//! Order Selection for XML Query Optimization* (ICDE 2003): a
//! miniature native XML database (parser, region-encoded storage,
//! buffer pool, tag indexes, positional-histogram statistics,
//! stack-tree structural join executor) and the paper's five
//! cost-based join-order optimizers (DP, DPP, DPAP-EB, DPAP-LD, FP).
//!
//! ## Quickstart
//!
//! ```
//! use sjos::Database;
//!
//! let db = Database::from_xml(
//!     "<dept><emp><name>ada</name></emp><emp><name>bob</name></emp></dept>",
//! ).unwrap();
//! let outcome = db.query("//dept/emp/name").unwrap();
//! assert_eq!(outcome.result.len(), 2);
//! println!("plan: {}", outcome.optimized.plan);
//! ```
//!
//! The heavy lifting lives in the member crates, re-exported here:
//!
//! * [`xml`] — parsing, document model, region encoding
//! * [`storage`] — pages, buffer pool, heap file, tag index
//! * [`pattern`] — query pattern trees and the query parser
//! * [`stats`] — positional histograms and cardinality estimation
//! * [`exec`] — physical plans, stack-tree joins, and the vectorized
//!   executor (operators exchange columnar [`TupleBatch`]es of
//!   [`BATCH_ROWS`] rows; metric totals stay exact per tuple)
//! * [`core`] — the cost model and the five optimizers
//! * [`datagen`] — Pers/DBLP/Mbench-shaped generators and the
//!   benchmark query catalog
//! * [`planck`] — the static plan analyzer, including the
//!   resource-bound admission pass behind [`Database::resource_bounds`]
//!   and [`Database::admit`]
//!
//! For serving many queries concurrently over one engine, see
//! [`service::QueryService`]: shared-engine sessions with global
//! certified-bytes admission control, an LRU plan cache keyed by
//! catalog version, and a JSON observability surface.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod service;

use std::fmt;
use std::sync::Arc;

pub use sjos_core as core;
pub use sjos_datagen as datagen;
pub use sjos_exec as exec;
pub use sjos_pattern as pattern;
pub use sjos_planck as planck;
pub use sjos_stats as stats;
pub use sjos_storage as storage;
pub use sjos_xml as xml;

pub use sjos_core::OptimizerError;
pub use sjos_core::{optimize, Algorithm, CostModel, OptimizedPlan};
pub use sjos_exec::{
    execute, BatchedResult, CancelToken, EngineError, GuardBreach, PlanNode, QueryGuard,
    QueryResult, SpillPolicy, TupleBatch, BATCH_ROWS,
};
pub use sjos_pattern::{parse_pattern, Pattern};
pub use sjos_stats::{Catalog, PatternEstimates};
pub use sjos_storage::{StoreConfig, XmlStore};
pub use sjos_xml::Document;

pub use service::{QueryService, ServiceConfig, ServiceError, ServiceOutcome, Session};

/// Anything that can go wrong between query text and query result.
#[derive(Debug)]
pub enum Error {
    /// XML text failed to parse.
    Xml(sjos_xml::ParseError),
    /// Query text failed to parse.
    Query(sjos_pattern::PatternParseError),
    /// The optimizer failed to produce a usable plan (broken
    /// estimates or an internal search bug).
    Optimize(sjos_core::OptimizerError),
    /// Execution failed: invalid plan, storage fault, or a resource-
    /// guard breach.
    Exec(sjos_exec::EngineError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::Optimize(e) => write!(f, "{e}"),
            Error::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<sjos_xml::ParseError> for Error {
    fn from(e: sjos_xml::ParseError) -> Self {
        Error::Xml(e)
    }
}
impl From<sjos_pattern::PatternParseError> for Error {
    fn from(e: sjos_pattern::PatternParseError) -> Self {
        Error::Query(e)
    }
}
impl From<sjos_core::OptimizerError> for Error {
    fn from(e: sjos_core::OptimizerError) -> Self {
        Error::Optimize(e)
    }
}
impl From<sjos_exec::EngineError> for Error {
    fn from(e: sjos_exec::EngineError) -> Self {
        Error::Exec(e)
    }
}

/// A query's optimization artifacts plus its materialized answer.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The plan the optimizer chose, with search-effort statistics.
    pub optimized: OptimizedPlan,
    /// The executed result.
    pub result: QueryResult,
}

/// A loaded XML database: storage + statistics + optimizer + executor
/// behind one handle.
pub struct Database {
    store: XmlStore,
    catalog: Catalog,
    model: CostModel,
}

impl Database {
    /// Parse and load XML text.
    pub fn from_xml(text: &str) -> Result<Database, Error> {
        Ok(Self::from_document(Document::parse(text)?))
    }

    /// Load an already-parsed document with default configuration
    /// (16 MiB buffer pool, default cost model).
    pub fn from_document(doc: Document) -> Database {
        Self::from_document_with(doc, StoreConfig::default(), CostModel::default())
    }

    /// Load with explicit storage and cost-model configuration.
    pub fn from_document_with(
        doc: Document,
        store_config: StoreConfig,
        model: CostModel,
    ) -> Database {
        let catalog = Catalog::build(&doc);
        let store = XmlStore::load_with(doc, store_config);
        Database { store, catalog, model }
    }

    /// The stored document.
    pub fn document(&self) -> &Arc<Document> {
        self.store.document()
    }

    /// The storage engine handle.
    pub fn store(&self) -> &XmlStore {
        &self.store
    }

    /// The statistics catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Cardinality estimates for a pattern against this database.
    pub fn estimates(&self, pattern: &Pattern) -> PatternEstimates {
        PatternEstimates::new(&self.catalog, self.document(), pattern)
    }

    /// Optimize a pattern with the given algorithm.
    pub fn optimize(
        &self,
        pattern: &Pattern,
        algorithm: Algorithm,
    ) -> Result<OptimizedPlan, Error> {
        let est = self.estimates(pattern);
        Ok(optimize(pattern, &est, &self.model, algorithm)?)
    }

    /// Execute an explicit plan for a pattern.
    pub fn execute(&self, pattern: &Pattern, plan: &PlanNode) -> Result<QueryResult, Error> {
        Ok(execute(&self.store, pattern, plan)?)
    }

    /// Execute an explicit plan under a resource [`QueryGuard`]:
    /// deadline, batch budget, memory budget, and cancellation are
    /// checked at every batch boundary, so a runaway plan stops
    /// within one batch of tripping a limit. On a breach the error
    /// carries the metrics accumulated up to the stop.
    pub fn execute_guarded(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
        guard: &Arc<QueryGuard>,
    ) -> Result<QueryResult, Error> {
        Ok(sjos_exec::execute_guarded(&self.store, pattern, plan, guard)?)
    }

    /// Execute an explicit plan, keeping the root operator's columnar
    /// batches as emitted instead of flattening them to row-major
    /// tuples — for inspecting the engine's ordering and row-count
    /// invariants (planck's executed-plan lint builds on this).
    pub fn execute_batches(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
    ) -> Result<BatchedResult, Error> {
        Ok(sjos_exec::execute_batches(&self.store, pattern, plan)?)
    }

    /// Measure this machine's cost factors against the loaded data
    /// (see [`fn@sjos_core::calibrate`]) and return a database handle
    /// whose optimizer uses them. The paper's factors are
    /// implementation-specific constants; this derives them
    /// empirically.
    pub fn with_calibrated_model(mut self) -> (Database, sjos_core::CalibrationReport) {
        let report = sjos_core::calibrate(&self.store, 20_000, 5);
        self.model = report.model();
        // Plans are priced under the model: recalibration invalidates
        // anything cached against the old catalog generation.
        self.catalog.bump_version();
        (self, report)
    }

    /// Derive guaranteed resource bounds for an explicit plan at the
    /// default batch granularity: cardinality intervals per operator
    /// plus worst-case peak buffering bytes and batch-pull counts,
    /// computed from the catalog's exact index statistics without
    /// executing anything (planck's PL060–PL064 family).
    pub fn resource_bounds(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
    ) -> sjos_planck::ResourceBounds {
        let est = self.estimates(pattern);
        sjos_planck::analyze_bounds(pattern, &est, &self.model, plan, BATCH_ROWS)
    }

    /// Static admission control: decide *before execution* whether
    /// `plan` can possibly breach `guard`'s memory or batch budgets.
    /// A clean report means no execution of the plan on this database
    /// can trip the guard; running it is then breach-free by
    /// construction rather than by mid-flight termination.
    pub fn admit(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
        guard: &QueryGuard,
    ) -> (sjos_planck::ResourceBounds, sjos_planck::Report) {
        let bounds = self.resource_bounds(pattern, plan);
        let report = sjos_planck::admit_guard(&bounds, guard);
        (bounds, report)
    }

    /// [`Database::resource_bounds`] re-derived under a spill policy:
    /// every sort's buffer term is capped at the policy's *resident*
    /// bound because the rest of its input lives in temp pages — the
    /// certificate behind degraded admission (planck's PL066).
    pub fn resource_bounds_spill(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
        policy: SpillPolicy,
    ) -> sjos_planck::ResourceBounds {
        let est = self.estimates(pattern);
        sjos_planck::analyze_bounds_spill(pattern, &est, &self.model, plan, BATCH_ROWS, policy)
    }

    /// Degraded static admission: like [`Database::admit`], but with
    /// every sort allowed to spill under `policy`. A clean report
    /// admits in spill mode a plan whose in-memory bound the guard
    /// rejected (PL066).
    pub fn admit_spill(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
        guard: &QueryGuard,
        policy: SpillPolicy,
    ) -> (sjos_planck::ResourceBounds, sjos_planck::Report) {
        let bounds = self.resource_bounds_spill(pattern, plan, policy);
        let report = sjos_planck::admit_spill_guard(&bounds, guard);
        (bounds, report)
    }

    /// Execute an explicit plan with sorts spilling through the buffer
    /// pool under `policy` — the degraded execution mode paired with
    /// [`Database::admit_spill`]. Output is bit-identical to the
    /// in-memory path; only the resident footprint changes.
    pub fn execute_spill(
        &self,
        pattern: &Pattern,
        plan: &PlanNode,
        guard: &Arc<QueryGuard>,
        policy: SpillPolicy,
    ) -> Result<QueryResult, Error> {
        Ok(sjos_exec::execute_guarded_spill(&self.store, pattern, plan, guard, policy)?)
    }

    /// Evaluate a pattern with the holistic twig join (TwigStack)
    /// instead of a binary structural join plan — the multi-way
    /// alternative the paper's future work points at. Returns
    /// canonical rows plus twig-level counters.
    pub fn holistic(&self, pattern: &Pattern) -> Result<sjos_exec::holistic::TwigResult, Error> {
        Ok(sjos_exec::holistic::evaluate(&self.store, pattern)?)
    }

    /// Parse, optimize (with DPP — the paper's recommendation for
    /// optimal plans), and execute a query.
    pub fn query(&self, query: &str) -> Result<QueryOutcome, Error> {
        self.query_with(query, Algorithm::Dpp { lookahead: true })
    }

    /// Parse, optimize with a chosen algorithm, and execute.
    pub fn query_with(&self, query: &str, algorithm: Algorithm) -> Result<QueryOutcome, Error> {
        let pattern = parse_pattern(query)?;
        let optimized = self.optimize(&pattern, algorithm)?;
        let result = self.execute(&pattern, &optimized.plan)?;
        Ok(QueryOutcome { optimized, result })
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Database({} elements, {} tags)",
            self.document().len(),
            self.document().tags().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XML: &str = "<dept><emp><name>ada</name></emp><emp><name>bob</name></emp></dept>";

    #[test]
    fn end_to_end_query() {
        let db = Database::from_xml(XML).unwrap();
        let out = db.query("//dept/emp/name").unwrap();
        assert_eq!(out.result.len(), 2);
        out.optimized.plan.validate(&parse_pattern("//dept/emp/name").unwrap()).unwrap();
    }

    #[test]
    fn bad_xml_is_an_error() {
        assert!(matches!(Database::from_xml("<a><b></a>"), Err(Error::Xml(_))));
    }

    #[test]
    fn bad_query_is_an_error() {
        let db = Database::from_xml(XML).unwrap();
        assert!(matches!(db.query("//dept["), Err(Error::Query(_))));
    }

    #[test]
    fn admission_gates_on_the_static_bound() {
        let db = Database::from_xml(XML).unwrap();
        let pattern = parse_pattern("//dept//name").unwrap();
        let plan = db.optimize(&pattern, Algorithm::Dpp { lookahead: true }).unwrap().plan;
        let bounds = db.resource_bounds(&pattern, &plan);
        assert!(bounds.peak_bytes > 0);

        let starved = QueryGuard::unlimited().with_memory_budget(1);
        let (_, report) = db.admit(&pattern, &plan, &starved);
        assert!(!report.is_clean(), "a 1-byte budget must reject the plan");

        let roomy = QueryGuard::unlimited().with_memory_budget(bounds.peak_bytes as usize);
        let (_, report) = db.admit(&pattern, &plan, &roomy);
        assert!(report.is_clean(), "{report}");
        // Admission is a guarantee: the admitted plan runs to
        // completion under the same guard.
        db.execute_guarded(&pattern, &plan, &Arc::new(roomy)).unwrap();
    }

    #[test]
    fn all_algorithms_agree_on_results() {
        let db = Database::from_xml(XML).unwrap();
        let baseline = db.query("//dept//name").unwrap().result.canonical_rows();
        for alg in [
            Algorithm::Dp,
            Algorithm::DpapEb { te: 2 },
            Algorithm::DpapLd,
            Algorithm::Fp,
            Algorithm::WorstRandom { samples: 10, seed: 1 },
        ] {
            let out = db.query_with("//dept//name", alg).unwrap();
            assert_eq!(out.result.canonical_rows(), baseline, "{}", alg.name());
        }
    }
}
