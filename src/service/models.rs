//! Deterministic interleaving models of the service's concurrency
//! protocols, explored exhaustively by [`sjos_planck::explore()`]
//! (rule PL076).
//!
//! Each model is a small cloneable state machine mirroring one live
//! protocol next to the code it models:
//!
//! * [`AdmissionModel`] — the [`super::admission`] reserve / timeout /
//!   release dance: a holder admits and releases while a waiter
//!   queues under a deadline that can fire at any explored instant.
//! * [`PlanCacheModel`] — [`super::plan_cache`] lookup racing a
//!   catalog-version bump; the PL065 revalidation must keep a stale
//!   plan from being served on *any* schedule.
//! * [`GuardDebitModel`] — racing morsels debiting one shared
//!   [`sjos_exec::QueryGuard`] atomic; the debit must be a single
//!   atomic read-modify-write.
//! * [`SpillFreeListModel`] — concurrent spill temp-page alloc/free
//!   against one free list; no double-free, no leak.
//!
//! Every model carries a mutation mode reproducing a seeded defect
//! (the admission model's [`AdmissionMode::GrantAfterDeadline`] is
//! exactly the grant-before-deadline race fixed in
//! [`super::admission`]); the non-vacuity harness asserts the
//! explorer finds a violating schedule for each defect while the
//! healthy variants certify clean.

use sjos_planck::{Model, ModelCondvar, ModelMutex};

/// All healthy models, in a fixed order — what `planlint conc`
/// explores for the certification verdict.
pub fn healthy_models() -> Vec<ServiceModel> {
    vec![
        ServiceModel::Admission(AdmissionModel::new(AdmissionMode::Healthy)),
        ServiceModel::PlanCache(PlanCacheModel::new(PlanCacheMode::Healthy)),
        ServiceModel::GuardDebit(GuardDebitModel::new(GuardDebitMode::Healthy)),
        ServiceModel::SpillFreeList(SpillFreeListModel::new(SpillFreeListMode::Healthy)),
    ]
}

/// Every seeded model defect, with a stable kebab-case name — the
/// explorer must find a violating schedule for each.
pub fn mutated_models() -> Vec<(&'static str, ServiceModel)> {
    vec![
        (
            "grant-after-deadline",
            ServiceModel::Admission(AdmissionModel::new(AdmissionMode::GrantAfterDeadline)),
        ),
        (
            "skip-timeout-release",
            ServiceModel::Admission(AdmissionModel::new(AdmissionMode::SkipTimeoutRelease)),
        ),
        (
            "release-without-notify",
            ServiceModel::Admission(AdmissionModel::new(AdmissionMode::ReleaseWithoutNotify)),
        ),
        (
            "skip-revalidation",
            ServiceModel::PlanCache(PlanCacheModel::new(PlanCacheMode::SkipRevalidation)),
        ),
        (
            "torn-read-modify-write",
            ServiceModel::GuardDebit(GuardDebitModel::new(GuardDebitMode::TornReadModifyWrite)),
        ),
        (
            "double-free",
            ServiceModel::SpillFreeList(SpillFreeListModel::new(SpillFreeListMode::DoubleFree)),
        ),
        (
            "leak-on-error",
            ServiceModel::SpillFreeList(SpillFreeListModel::new(SpillFreeListMode::LeakOnError)),
        ),
    ]
}

/// A sum over the four protocol models so callers can hold them in
/// one collection.
#[derive(Clone)]
pub enum ServiceModel {
    /// The admission reserve/timeout/release protocol.
    Admission(AdmissionModel),
    /// Plan-cache lookup vs. catalog-version bump.
    PlanCache(PlanCacheModel),
    /// Concurrent morsel debits against one guard atomic.
    GuardDebit(GuardDebitModel),
    /// Spill temp-page free-list alloc/free.
    SpillFreeList(SpillFreeListModel),
}

impl Model for ServiceModel {
    fn name(&self) -> &'static str {
        match self {
            ServiceModel::Admission(m) => m.name(),
            ServiceModel::PlanCache(m) => m.name(),
            ServiceModel::GuardDebit(m) => m.name(),
            ServiceModel::SpillFreeList(m) => m.name(),
        }
    }
    fn threads(&self) -> usize {
        match self {
            ServiceModel::Admission(m) => m.threads(),
            ServiceModel::PlanCache(m) => m.threads(),
            ServiceModel::GuardDebit(m) => m.threads(),
            ServiceModel::SpillFreeList(m) => m.threads(),
        }
    }
    fn finished(&self, t: usize) -> bool {
        match self {
            ServiceModel::Admission(m) => m.finished(t),
            ServiceModel::PlanCache(m) => m.finished(t),
            ServiceModel::GuardDebit(m) => m.finished(t),
            ServiceModel::SpillFreeList(m) => m.finished(t),
        }
    }
    fn enabled(&self, t: usize) -> bool {
        match self {
            ServiceModel::Admission(m) => m.enabled(t),
            ServiceModel::PlanCache(m) => m.enabled(t),
            ServiceModel::GuardDebit(m) => m.enabled(t),
            ServiceModel::SpillFreeList(m) => m.enabled(t),
        }
    }
    fn step(&mut self, t: usize) -> Result<(), String> {
        match self {
            ServiceModel::Admission(m) => m.step(t),
            ServiceModel::PlanCache(m) => m.step(t),
            ServiceModel::GuardDebit(m) => m.step(t),
            ServiceModel::SpillFreeList(m) => m.step(t),
        }
    }
    fn invariant(&self) -> Result<(), String> {
        match self {
            ServiceModel::Admission(m) => m.invariant(),
            ServiceModel::PlanCache(m) => m.invariant(),
            ServiceModel::GuardDebit(m) => m.invariant(),
            ServiceModel::SpillFreeList(m) => m.invariant(),
        }
    }
    fn final_check(&self) -> Result<(), String> {
        match self {
            ServiceModel::Admission(m) => m.final_check(),
            ServiceModel::PlanCache(m) => m.final_check(),
            ServiceModel::GuardDebit(m) => m.final_check(),
            ServiceModel::SpillFreeList(m) => m.final_check(),
        }
    }
}

// ---------------------------------------------------------------------------
// Admission: reserve / timeout / release
// ---------------------------------------------------------------------------

/// Which admission protocol variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// The fixed protocol: deadline checked before grant, timed-out
    /// tickets dequeue themselves, every release notifies.
    Healthy,
    /// The pre-fix race: the grant check runs before the deadline
    /// check, so a release landing in the expiry window grants an
    /// expired ticket whose caller already left — leaking the bytes.
    GrantAfterDeadline,
    /// A timed-out waiter leaves without dequeuing its ticket.
    SkipTimeoutRelease,
    /// Release without `notify_all`; with no deadline to rescue it,
    /// the waiter parks forever — the classic lost wakeup.
    ReleaseWithoutNotify,
}

/// Three logical threads against a 100-byte budget: T0 admits 90 and
/// releases it; T1 wants 20, queues, and waits under a deadline; T2
/// is the deadline timer, whose single step may fire at any explored
/// instant (it unparks T1 the way `wait_timeout` returning does).
/// In [`AdmissionMode::ReleaseWithoutNotify`] the timer is disabled
/// (an infinite deadline) so only the notify can unpark the waiter.
#[derive(Clone)]
pub struct AdmissionModel {
    mode: AdmissionMode,
    mutex: ModelMutex,
    cond: ModelCondvar,
    in_use: u64,
    peak: u64,
    queue: Vec<usize>,
    expired: bool,
    pc: [usize; 3],
}

const ADM_BUDGET: u64 = 100;
const HOLDER_BYTES: u64 = 90;
const WAITER_BYTES: u64 = 20;

impl AdmissionModel {
    /// A fresh model in `mode`.
    pub fn new(mode: AdmissionMode) -> AdmissionModel {
        AdmissionModel {
            mode,
            mutex: ModelMutex::default(),
            cond: ModelCondvar::default(),
            in_use: 0,
            peak: 0,
            queue: Vec::new(),
            expired: false,
            // In ReleaseWithoutNotify the timer thread starts finished.
            pc: [0, 0, if mode == AdmissionMode::ReleaseWithoutNotify { 1 } else { 0 }],
        }
    }

    fn grant(&mut self, bytes: u64) {
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
    }
}

impl Model for AdmissionModel {
    fn name(&self) -> &'static str {
        "admission"
    }

    fn threads(&self) -> usize {
        3
    }

    fn finished(&self, t: usize) -> bool {
        match t {
            0 | 1 => self.pc[t] >= 4,
            _ => self.pc[2] >= 1,
        }
    }

    fn enabled(&self, t: usize) -> bool {
        if self.finished(t) {
            return false;
        }
        match t {
            0 | 1 => !self.cond.is_waiting(t) && self.mutex.available(t),
            // The timer needs no lock: it models the kernel's timeout.
            _ => true,
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if t == 2 {
            // The deadline fires: wake the waiter in the expired
            // state, exactly like `wait_timeout` returning.
            self.expired = true;
            self.cond.remove(1);
            self.pc[2] = 1;
            return Ok(());
        }
        let bytes = if t == 0 { HOLDER_BYTES } else { WAITER_BYTES };
        // Both actors run the same admit loop; only T1 has a deadline
        // (T0's wait limit is infinite).
        match self.pc[t] {
            0 => {
                self.mutex.acquire(t);
                self.pc[t] = 1;
            }
            1 => {
                // The admit loop body, one wakeup at a time. A woken
                // waiter re-acquires the mutex (what `Condvar::wait`
                // does before returning) as part of this step.
                if self.mutex.owner() != Some(t) {
                    self.mutex.acquire(t);
                }
                let fits = self.in_use + bytes <= ADM_BUDGET;
                let at_head = match self.queue.first() {
                    None => true,
                    Some(&head) => head == t,
                };
                let timed_out = t == 1 && self.expired;
                let grant_first = self.mode == AdmissionMode::GrantAfterDeadline;
                if (grant_first || !timed_out) && fits && at_head {
                    self.queue.retain(|&q| q != t);
                    self.grant(bytes);
                    self.cond.notify_all();
                    self.mutex.release(t);
                    // The seeded race: an expired ticket granted here
                    // belongs to a caller who already left, so the
                    // permit is never dropped and the bytes leak.
                    self.pc[t] = if timed_out { 4 } else { 2 };
                } else if timed_out {
                    if self.mode != AdmissionMode::SkipTimeoutRelease {
                        self.queue.retain(|&q| q != t);
                    }
                    self.cond.notify_all();
                    self.mutex.release(t);
                    self.pc[t] = 4; // rejected: TimedOut.
                } else {
                    if !self.queue.contains(&t) {
                        self.queue.push(t);
                    }
                    self.cond.wait(t);
                    self.mutex.release(t);
                    // stay at pc 1: the next step is the wakeup.
                }
            }
            2 => {
                // lock to drop the admitted permit.
                self.mutex.acquire(t);
                self.pc[t] = 3;
            }
            _ => {
                self.in_use = self.in_use.saturating_sub(bytes);
                if !(t == 0 && self.mode == AdmissionMode::ReleaseWithoutNotify) {
                    self.cond.notify_all();
                }
                self.mutex.release(t);
                self.pc[t] = 4;
            }
        }
        Ok(())
    }

    fn invariant(&self) -> Result<(), String> {
        if self.in_use > ADM_BUDGET {
            return Err(format!("budget overshoot: in_use {} > budget {ADM_BUDGET}", self.in_use));
        }
        if self.peak > ADM_BUDGET {
            return Err(format!("peak_in_use {} exceeded the budget {ADM_BUDGET}", self.peak));
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.in_use != 0 {
            return Err(format!(
                "{} certified bytes leaked: a reservation was never released",
                self.in_use
            ));
        }
        if !self.queue.is_empty() {
            return Err("a departed ticket was left in the admission queue".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Plan cache: lookup vs. catalog-version bump (PL065)
// ---------------------------------------------------------------------------

/// Which plan-cache protocol variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanCacheMode {
    /// Every cache hit is revalidated against the live catalog
    /// version under the cache lock (the PL065 protocol).
    Healthy,
    /// The seeded defect: a hit is served without revalidation.
    SkipRevalidation,
}

/// T0 looks up and serves a plan cached at catalog version 0; T1
/// bumps the catalog to version 1 (a DDL). On every schedule the
/// served plan's version must equal the catalog version at serve
/// time.
#[derive(Clone)]
pub struct PlanCacheModel {
    mode: PlanCacheMode,
    lock: ModelMutex,
    catalog_version: u64,
    cached_version: u64,
    served: Option<(u64, u64)>,
    pc: [usize; 2],
}

impl PlanCacheModel {
    /// A fresh model in `mode`, with a version-0 plan already cached.
    pub fn new(mode: PlanCacheMode) -> PlanCacheModel {
        PlanCacheModel {
            mode,
            lock: ModelMutex::default(),
            catalog_version: 0,
            cached_version: 0,
            served: None,
            pc: [0, 0],
        }
    }
}

impl Model for PlanCacheModel {
    fn name(&self) -> &'static str {
        "plan-cache"
    }

    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, t: usize) -> bool {
        self.pc[t] >= 2
    }

    fn enabled(&self, t: usize) -> bool {
        !self.finished(t) && self.lock.available(t)
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        match (t, self.pc[t]) {
            (0, 0) => {
                self.lock.acquire(0);
                self.pc[0] = 1;
            }
            (0, _) => {
                // Hit on the cached plan; healthy code revalidates
                // against the catalog generation before serving.
                let mut plan = self.cached_version;
                if self.mode == PlanCacheMode::Healthy && plan != self.catalog_version {
                    // Re-plan against the live catalog and refresh.
                    plan = self.catalog_version;
                    self.cached_version = plan;
                }
                self.served = Some((plan, self.catalog_version));
                self.lock.release(0);
                self.pc[0] = 2;
            }
            (1, 0) => {
                self.lock.acquire(1);
                self.pc[1] = 1;
            }
            (1, _) => {
                self.catalog_version += 1;
                self.lock.release(1);
                self.pc[1] = 2;
            }
            _ => unreachable!("stepped a finished thread"),
        }
        Ok(())
    }

    fn invariant(&self) -> Result<(), String> {
        if let Some((plan, catalog)) = self.served {
            if plan != catalog {
                return Err(format!(
                    "stale plan served: plan version {plan} under catalog version {catalog}"
                ));
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.served.is_none() {
            return Err("the lookup thread never served a plan".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Guard debit: racing morsels against one atomic
// ---------------------------------------------------------------------------

/// Which guard-debit variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardDebitMode {
    /// The debit is one atomic `fetch_add` — a single model step.
    Healthy,
    /// The seeded defect: the read-modify-write is torn into a read
    /// step and a write step, so a racing debit is lost.
    TornReadModifyWrite,
}

/// Two morsel threads each reserve 40 bytes from one shared counter,
/// then release. The ghost sum of held reservations must equal the
/// counter after every step; a torn RMW loses an update and breaks
/// the equality.
#[derive(Clone)]
pub struct GuardDebitModel {
    mode: GuardDebitMode,
    counter: u64,
    held: [u64; 2],
    stashed: [u64; 2],
    pc: [usize; 2],
}

const DEBIT: u64 = 40;

impl GuardDebitModel {
    /// A fresh model in `mode`.
    pub fn new(mode: GuardDebitMode) -> GuardDebitModel {
        GuardDebitModel { mode, counter: 0, held: [0, 0], stashed: [0, 0], pc: [0, 0] }
    }
}

impl Model for GuardDebitModel {
    fn name(&self) -> &'static str {
        "guard-debit"
    }

    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, t: usize) -> bool {
        self.pc[t] >= 3
    }

    fn enabled(&self, t: usize) -> bool {
        !self.finished(t)
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        match self.pc[t] {
            0 => {
                if self.mode == GuardDebitMode::Healthy {
                    // fetch_add: read and write in one atomic step.
                    self.counter += DEBIT;
                    self.held[t] = DEBIT;
                    self.pc[t] = 2;
                } else {
                    // Torn: stash the read; the write lands later.
                    self.stashed[t] = self.counter;
                    self.pc[t] = 1;
                }
            }
            1 => {
                self.counter = self.stashed[t] + DEBIT;
                self.held[t] = DEBIT;
                self.pc[t] = 2;
            }
            _ => {
                // Release is a single atomic fetch_sub either way.
                self.counter = self.counter.saturating_sub(self.held[t]);
                self.held[t] = 0;
                self.pc[t] = 3;
            }
        }
        Ok(())
    }

    fn invariant(&self) -> Result<(), String> {
        // Between a torn read and its write the counter may transiently
        // disagree for the tearing thread itself; what must NEVER
        // happen is the counter dropping below the ghost sum once both
        // debits landed — a lost update undercounts reserved bytes.
        let ghost: u64 = self.held.iter().sum();
        let mid_rmw = self.pc.contains(&1);
        if !mid_rmw && self.counter != ghost {
            return Err(format!(
                "guard counter {} disagrees with {} bytes actually reserved — a debit was lost",
                self.counter, ghost
            ));
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.counter != 0 {
            return Err(format!("guard counter ended at {} after all releases", self.counter));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Spill free list: temp-page alloc / free
// ---------------------------------------------------------------------------

/// Which spill free-list variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillFreeListMode {
    /// Alloc pops under the lock; release pushes back exactly once.
    Healthy,
    /// The seeded defect: one thread releases its page twice.
    DoubleFree,
    /// The seeded defect: one thread's error path skips the release.
    LeakOnError,
}

/// Two threads share a free list seeded with pages 0 and 1: each
/// allocates a page, works, and releases it. At quiescence the free
/// list must hold both pages exactly once and no page may appear on
/// the list while also held.
#[derive(Clone)]
pub struct SpillFreeListModel {
    mode: SpillFreeListMode,
    lock: ModelMutex,
    free: Vec<u32>,
    holding: [Option<u32>; 2],
    released: [u32; 2],
    pc: [usize; 2],
}

impl SpillFreeListModel {
    /// A fresh model in `mode`.
    pub fn new(mode: SpillFreeListMode) -> SpillFreeListModel {
        SpillFreeListModel {
            mode,
            lock: ModelMutex::default(),
            free: vec![0, 1],
            holding: [None, None],
            released: [0, 0],
            pc: [0, 0],
        }
    }

    fn release_steps(&self, t: usize) -> usize {
        match (self.mode, t) {
            (SpillFreeListMode::DoubleFree, 0) => 2,
            (SpillFreeListMode::LeakOnError, 0) => 0,
            _ => 1,
        }
    }
}

impl Model for SpillFreeListModel {
    fn name(&self) -> &'static str {
        "spill-free-list"
    }

    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, t: usize) -> bool {
        self.pc[t] > self.release_steps(t)
    }

    fn enabled(&self, t: usize) -> bool {
        !self.finished(t) && self.lock.available(t)
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if self.pc[t] == 0 {
            // Alloc: lock, pop, unlock — one statement-scoped latch.
            self.lock.acquire(t);
            self.holding[t] = self.free.pop();
            self.lock.release(t);
            self.pc[t] = 1;
            return Ok(());
        }
        // Release (possibly doubled by the mutation).
        self.lock.acquire(t);
        if let Some(page) = self.holding[t] {
            self.free.push(page);
            self.released[t] += 1;
            if self.released[t] as usize >= self.release_steps(t) {
                self.holding[t] = None;
            }
        }
        self.lock.release(t);
        self.pc[t] += 1;
        Ok(())
    }

    fn invariant(&self) -> Result<(), String> {
        for (t, held) in self.holding.iter().enumerate() {
            if let Some(page) = held {
                if self.released[t] > 0 && self.free.contains(page) {
                    return Err(format!(
                        "page {page} is on the free list while T{t} still holds it (double free)"
                    ));
                }
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        let mut pages = self.free.clone();
        pages.sort_unstable();
        if pages != vec![0, 1] {
            return Err(format!(
                "free list ended as {pages:?}, expected exactly [0, 1] — a temp page was \
                 leaked or double-freed"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_planck::{explore, ExploreConfig};

    #[test]
    fn healthy_models_certify_clean() {
        for model in healthy_models() {
            let outcome = explore(&model, ExploreConfig::default());
            assert!(
                outcome.is_clean(),
                "{} must certify clean: {:?}",
                outcome.model,
                outcome.violation
            );
            assert!(outcome.schedules > 1, "{}: exploration must branch", outcome.model);
        }
    }

    #[test]
    fn every_model_mutation_is_caught() {
        for (name, model) in mutated_models() {
            let outcome = explore(&model, ExploreConfig::default());
            assert!(
                outcome.violation.is_some(),
                "mutation {name} must produce a violating schedule"
            );
            assert!(!outcome.truncated, "mutation {name} must be found within the budget");
        }
    }

    #[test]
    fn grant_after_deadline_leaks_the_reservation() {
        let outcome = explore(
            &AdmissionModel::new(AdmissionMode::GrantAfterDeadline),
            ExploreConfig::default(),
        );
        let v = outcome.violation.expect("the pre-fix race must be found");
        assert!(v.message.contains("leaked"), "{v}");
    }

    #[test]
    fn release_without_notify_is_a_lost_wakeup() {
        let outcome = explore(
            &AdmissionModel::new(AdmissionMode::ReleaseWithoutNotify),
            ExploreConfig::default(),
        );
        let v = outcome.violation.expect("the lost wakeup must be found");
        assert!(v.message.contains("lost wakeup"), "{v}");
    }

    #[test]
    fn skip_revalidation_serves_a_stale_plan() {
        let outcome = explore(
            &PlanCacheModel::new(PlanCacheMode::SkipRevalidation),
            ExploreConfig::default(),
        );
        let v = outcome.violation.expect("the stale serve must be found");
        assert!(v.message.contains("stale plan"), "{v}");
    }

    #[test]
    fn exploration_of_models_is_deterministic() {
        for model in healthy_models() {
            let a = explore(&model, ExploreConfig::default());
            let b = explore(&model, ExploreConfig::default());
            assert_eq!(a.schedules, b.schedules, "{}", a.model);
            assert_eq!(a.max_depth, b.max_depth, "{}", a.model);
        }
    }
}
