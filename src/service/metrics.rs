//! Service-level observability: per-session and aggregate counters,
//! latency percentiles, and the JSON export the server bench and CLI
//! surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sjos_exec::MetricsSnapshot;
use sjos_storage::{IoSnapshot, IoStats};

/// Aggregate query-outcome counters plus the latency reservoir.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Queries that ran to completion.
    pub completed: AtomicU64,
    /// Queries that failed in parse/optimize/execute (admission
    /// rejections are counted by the controller, not here).
    pub failed: AtomicU64,
    /// Plan-cache hits observed by sessions (mirrors the cache's own
    /// counter; kept here so one snapshot struct carries everything).
    pub cache_hits: AtomicU64,
    /// Completed queries whose measured `peak_bytes` exceeded their
    /// certified bound — must stay 0; anything else falsifies the
    /// bound analysis (PL064) and the admission guarantee with it.
    pub bound_violations: AtomicU64,
    /// Largest measured per-query `peak_bytes` seen.
    pub max_measured_peak: AtomicU64,
    /// Largest certified per-query peak admitted.
    pub max_certified_peak: AtomicU64,
    /// Queries the in-memory certificate could never fit that were
    /// re-certified and admitted in spill mode (PL066).
    pub degraded_admissions: AtomicU64,
    /// Completed queries whose sorts actually spilled at least one
    /// run to temp pages.
    pub spilled_queries: AtomicU64,
    /// Sorted runs flushed to temp pages across all queries.
    pub spilled_runs: AtomicU64,
    /// Buffered bytes released to temp pages across all queries.
    pub spilled_bytes: AtomicU64,
    /// Cascade merge passes performed across all queries.
    pub spill_merge_passes: AtomicU64,
    /// Completed-query latencies in microseconds.
    latencies_us: Mutex<Vec<u64>>,
}

impl ServiceMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// Record one completed query's wall-clock latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.latencies_us.lock().expect("latency mutex poisoned").push(us);
    }

    /// Record a completed query's measured vs. certified peak bytes,
    /// counting a violation if the measurement escaped the bound.
    pub fn record_peaks(&self, measured: u64, certified: u64) {
        self.max_measured_peak.fetch_max(measured, Ordering::Relaxed);
        self.max_certified_peak.fetch_max(certified, Ordering::Relaxed);
        if measured > certified {
            self.bound_violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold one completed query's spill counters into the aggregates.
    pub fn record_spill(&self, m: &MetricsSnapshot) {
        if m.spilled_runs > 0 {
            self.spilled_queries.fetch_add(1, Ordering::Relaxed);
        }
        self.spilled_runs.fetch_add(m.spilled_runs, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(m.spilled_bytes, Ordering::Relaxed);
        self.spill_merge_passes.fetch_add(m.spill_merge_passes, Ordering::Relaxed);
    }

    /// Latency percentiles over everything recorded so far.
    pub fn latency_summary(&self) -> LatencySummary {
        let mut us = self.latencies_us.lock().expect("latency mutex poisoned").clone();
        us.sort_unstable();
        LatencySummary::from_sorted(&us)
    }
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded latencies.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize an ascending-sorted latency vector (nearest-rank
    /// percentiles).
    pub fn from_sorted(sorted_us: &[u64]) -> LatencySummary {
        if sorted_us.is_empty() {
            return LatencySummary::default();
        }
        let pick = |p: f64| {
            let rank = ((p * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
            sorted_us[rank - 1]
        };
        LatencySummary {
            count: sorted_us.len() as u64,
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: sorted_us[sorted_us.len() - 1],
        }
    }
}

/// Per-session accounting: identity, outcome counters, and the
/// session-local I/O attribution tap target.
#[derive(Debug)]
pub struct SessionMetrics {
    /// Session id (assigned at creation, dense from 0).
    pub id: u64,
    /// Queries this session completed.
    pub completed: AtomicU64,
    /// Queries this session failed (including admission rejections).
    pub failed: AtomicU64,
    /// Queries this session ran in degraded (spill) mode.
    pub degraded: AtomicU64,
    /// The session's private I/O counters — every bump the session's
    /// thread performs during execution is mirrored here via
    /// [`sjos_storage::IoTap`].
    pub io: Arc<IoStats>,
}

impl SessionMetrics {
    /// Fresh metrics for session `id`.
    pub fn new(id: u64) -> SessionMetrics {
        SessionMetrics {
            id,
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            io: Arc::new(IoStats::new()),
        }
    }
}

fn io_json(io: &IoSnapshot) -> String {
    format!(
        "{{\"buffer_hits\":{},\"disk_reads\":{},\"disk_writes\":{},\"evictions\":{},\
         \"record_reads\":{},\"read_retries\":{},\"write_retries\":{},\
         \"spill_page_writes\":{},\"spill_page_reads\":{}}}",
        io.buffer_hits,
        io.disk_reads,
        io.disk_writes,
        io.evictions,
        io.record_reads,
        io.read_retries,
        io.write_retries,
        io.spill_page_writes,
        io.spill_page_reads
    )
}

/// Render one session's metrics as a JSON object.
pub fn session_json(s: &SessionMetrics) -> String {
    format!(
        "{{\"id\":{},\"completed\":{},\"failed\":{},\"degraded\":{},\"io\":{}}}",
        s.id,
        s.completed.load(Ordering::Relaxed),
        s.failed.load(Ordering::Relaxed),
        s.degraded.load(Ordering::Relaxed),
        io_json(&s.io.snapshot())
    )
}

/// Render a latency summary as a JSON object (milliseconds, 3 decimal
/// places).
pub fn latency_json(l: &LatencySummary) -> String {
    let ms = |us: u64| us as f64 / 1000.0;
    format!(
        "{{\"count\":{},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
        l.count,
        ms(l.p50_us),
        ms(l.p95_us),
        ms(l.p99_us),
        ms(l.max_us)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        let l = LatencySummary::from_sorted(&us);
        assert_eq!(l.p50_us, 50);
        assert_eq!(l.p95_us, 95);
        assert_eq!(l.p99_us, 99);
        assert_eq!(l.max_us, 100);
        assert_eq!(l.count, 100);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(LatencySummary::from_sorted(&[]), LatencySummary::default());
    }

    #[test]
    fn bound_violation_is_counted_only_when_measured_escapes() {
        let m = ServiceMetrics::new();
        m.record_peaks(100, 200);
        assert_eq!(m.bound_violations.load(Ordering::Relaxed), 0);
        m.record_peaks(300, 200);
        assert_eq!(m.bound_violations.load(Ordering::Relaxed), 1);
        assert_eq!(m.max_measured_peak.load(Ordering::Relaxed), 300);
        assert_eq!(m.max_certified_peak.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn spill_counters_accumulate_and_count_spilling_queries_once() {
        let m = ServiceMetrics::new();
        m.record_spill(&MetricsSnapshot::default());
        assert_eq!(m.spilled_queries.load(Ordering::Relaxed), 0, "no runs, no spilled query");
        m.record_spill(&MetricsSnapshot {
            spilled_runs: 3,
            spilled_bytes: 4096,
            spill_merge_passes: 1,
            ..Default::default()
        });
        assert_eq!(m.spilled_queries.load(Ordering::Relaxed), 1);
        assert_eq!(m.spilled_runs.load(Ordering::Relaxed), 3);
        assert_eq!(m.spilled_bytes.load(Ordering::Relaxed), 4096);
        assert_eq!(m.spill_merge_passes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn latency_json_renders_milliseconds() {
        let m = ServiceMetrics::new();
        m.record_latency(Duration::from_micros(1500));
        let j = latency_json(&m.latency_summary());
        assert!(j.contains("\"count\":1"), "{j}");
        assert!(j.contains("\"p50_ms\":1.500"), "{j}");
    }
}
