//! Global admission control over certified peak-memory bytes.
//!
//! Every query entering the service carries a *certified* worst-case
//! peak-buffering bound from [`sjos_planck::analyze_bounds`] — a
//! guaranteed upper bound, not an estimate (PL060–PL064). The
//! controller admits a query only while the sum of certified peaks of
//! all in-flight queries stays within the service-wide budget, so the
//! aggregate *measured* footprint provably cannot exceed the budget
//! either: each query runs under a [`sjos_exec::QueryGuard`] whose
//! memory budget equals its certified peak, and PR 6's soundness
//! invariant keeps every measured peak at or below its certificate.
//!
//! Queries that do not fit immediately wait in a bounded FIFO with a
//! deadline-aware timeout; a full queue or an expired wait is a typed
//! [`crate::service::ServiceError::Overloaded`], never an unbounded
//! stall. The queue is strictly FIFO — a small query arriving behind a
//! large one waits its turn rather than barging, so admission is
//! starvation-free.
//!
//! This module deliberately uses `std::sync::{Mutex, Condvar}` (not
//! the workspace's `parking_lot` stub, which has no condition
//! variable); the buffer pool underneath keeps its `parking_lot`
//! discipline untouched.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why an admission request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The certificate alone exceeds the whole budget; the query can
    /// never run on this service.
    NeverFits,
    /// The wait queue was already at capacity.
    QueueFull,
    /// The request waited its full limit without the budget freeing.
    TimedOut,
}

/// A rejected admission request, with the numbers behind the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Why the request was rejected.
    pub reason: RejectReason,
    /// The certified peak bytes the query asked to reserve.
    pub certified_bytes: u64,
    /// The service-wide budget.
    pub budget: u64,
    /// How long the request waited before giving up.
    pub waited: Duration,
}

#[derive(Debug, Default)]
struct AdmState {
    /// Sum of certified peak bytes of currently admitted queries.
    in_use: u64,
    /// High-water mark of `in_use` — the invariant witness: it must
    /// never exceed the budget.
    peak_in_use: u64,
    /// FIFO of waiting tickets (front is next to be admitted).
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Monotonic admission counters plus the current reservation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Service-wide certified-bytes budget.
    pub budget: u64,
    /// Certified bytes currently reserved by in-flight queries.
    pub in_use: u64,
    /// High-water mark of `in_use` since the controller was built.
    pub peak_in_use: u64,
    /// Requests admitted (immediately or after queueing).
    pub admitted: u64,
    /// Requests that had to wait in the queue before their verdict.
    pub queued: u64,
    /// Requests rejected (never-fits, full queue, or timeout).
    pub rejected: u64,
    /// Requests currently waiting.
    pub waiting: u64,
}

/// The global admission controller (see the module docs for the
/// protocol).
#[derive(Debug)]
pub struct AdmissionController {
    budget: u64,
    queue_capacity: usize,
    state: Mutex<AdmState>,
    cond: Condvar,
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
}

impl AdmissionController {
    /// A controller over `budget` certified bytes with a wait queue of
    /// at most `queue_capacity` requests.
    pub fn new(budget: u64, queue_capacity: usize) -> AdmissionController {
        AdmissionController {
            budget,
            queue_capacity,
            state: Mutex::new(AdmState::default()),
            cond: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The service-wide budget in certified bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Try to reserve `certified_bytes` of the budget, waiting at most
    /// `wait_limit` in the FIFO. On success the returned permit holds
    /// the reservation until dropped.
    pub fn admit(
        &self,
        certified_bytes: u64,
        wait_limit: Duration,
    ) -> Result<AdmissionPermit<'_>, Rejection> {
        let started = Instant::now();
        let reject = |reason: RejectReason, waited: Duration| {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Rejection { reason, certified_bytes, budget: self.budget, waited }
        };
        if certified_bytes > self.budget {
            return Err(reject(RejectReason::NeverFits, Duration::ZERO));
        }
        let mut state = self.state.lock().expect("admission mutex poisoned");
        // Fast path: nobody waiting and the reservation fits now.
        if state.queue.is_empty() && state.in_use + certified_bytes <= self.budget {
            return Ok(self.grant(&mut state, certified_bytes));
        }
        if state.queue.len() >= self.queue_capacity {
            return Err(reject(RejectReason::QueueFull, Duration::ZERO));
        }
        // Queue up and wait for our turn at the head.
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        self.queued.fetch_add(1, Ordering::Relaxed);
        loop {
            // Deadline first, grant second: a waiter woken at or past
            // its deadline must leave — never take a reservation (and
            // bump `peak_in_use`) its caller already gave up on. The
            // reverse order had a race where a release landing in the
            // expiry window granted an expired ticket.
            let waited = started.elapsed();
            if waited >= wait_limit {
                state.queue.retain(|&t| t != ticket);
                // Our departure may unblock the ticket behind us.
                self.cond.notify_all();
                return Err(reject(RejectReason::TimedOut, waited));
            }
            let at_head = state.queue.front() == Some(&ticket);
            if at_head && state.in_use + certified_bytes <= self.budget {
                state.queue.pop_front();
                let permit = self.grant(&mut state, certified_bytes);
                // The next waiter may also fit in what remains.
                self.cond.notify_all();
                return Ok(permit);
            }
            let (next, timeout) = self
                .cond
                .wait_timeout(state, wait_limit - waited)
                .expect("admission mutex poisoned");
            state = next;
            let _ = timeout; // re-checked via `started.elapsed()` above
        }
    }

    fn grant<'c>(&'c self, state: &mut AdmState, certified_bytes: u64) -> AdmissionPermit<'c> {
        state.in_use += certified_bytes;
        state.peak_in_use = state.peak_in_use.max(state.in_use);
        debug_assert!(state.in_use <= self.budget, "admission invariant violated");
        self.admitted.fetch_add(1, Ordering::Relaxed);
        AdmissionPermit { controller: self, certified_bytes }
    }

    /// Counters and current reservation state.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let state = self.state.lock().expect("admission mutex poisoned");
        AdmissionSnapshot {
            budget: self.budget,
            in_use: state.in_use,
            peak_in_use: state.peak_in_use,
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            waiting: state.queue.len() as u64,
        }
    }
}

/// An admitted reservation of certified bytes. Dropping it returns the
/// bytes to the budget and wakes the queue head.
#[derive(Debug)]
pub struct AdmissionPermit<'c> {
    controller: &'c AdmissionController,
    certified_bytes: u64,
}

impl AdmissionPermit<'_> {
    /// The certified bytes this permit reserves.
    pub fn certified_bytes(&self) -> u64 {
        self.certified_bytes
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.controller.state.lock().expect("admission mutex poisoned");
        state.in_use = state.in_use.saturating_sub(self.certified_bytes);
        drop(state);
        self.controller.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fast_path_admits_and_releases() {
        let ctl = AdmissionController::new(100, 4);
        let p = ctl.admit(60, Duration::from_millis(10)).unwrap();
        assert_eq!(ctl.snapshot().in_use, 60);
        drop(p);
        let snap = ctl.snapshot();
        assert_eq!(snap.in_use, 0);
        assert_eq!(snap.peak_in_use, 60);
        assert_eq!(snap.admitted, 1);
    }

    #[test]
    fn oversized_request_is_rejected_immediately() {
        let ctl = AdmissionController::new(100, 4);
        let err = ctl.admit(101, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.reason, RejectReason::NeverFits);
        assert!(err.waited < Duration::from_secs(1), "no pointless waiting");
    }

    #[test]
    fn starved_budget_queues_then_times_out() {
        let ctl = AdmissionController::new(100, 4);
        let _held = ctl.admit(90, Duration::ZERO).unwrap();
        let err = ctl.admit(20, Duration::from_millis(30)).unwrap_err();
        assert_eq!(err.reason, RejectReason::TimedOut);
        assert!(err.waited >= Duration::from_millis(30));
        let snap = ctl.snapshot();
        assert_eq!(snap.queued, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.waiting, 0, "timed-out ticket left the queue");
    }

    #[test]
    fn full_queue_rejects_without_waiting() {
        let ctl = Arc::new(AdmissionController::new(100, 1));
        let _held = ctl.admit(100, Duration::ZERO).unwrap();
        // Fill the single queue slot from another thread.
        let c = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || c.admit(10, Duration::from_millis(200)).is_err());
        while ctl.snapshot().waiting == 0 {
            std::thread::yield_now();
        }
        let err = ctl.admit(10, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull);
        assert!(waiter.join().unwrap(), "the queued request times out too");
    }

    #[test]
    fn release_admits_the_waiting_head() {
        let ctl = Arc::new(AdmissionController::new(100, 4));
        let held = ctl.admit(80, Duration::ZERO).unwrap();
        let c = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            let p = c.admit(50, Duration::from_secs(10)).unwrap();
            p.certified_bytes()
        });
        while ctl.snapshot().waiting == 0 {
            std::thread::yield_now();
        }
        drop(held);
        assert_eq!(waiter.join().unwrap(), 50);
        assert_eq!(ctl.snapshot().admitted, 2);
    }

    #[test]
    fn concurrent_reservations_never_exceed_the_budget() {
        let ctl = Arc::new(AdmissionController::new(64, 64));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let c = Arc::clone(&ctl);
                std::thread::spawn(move || {
                    let mut granted = 0u32;
                    for _ in 0..50 {
                        if let Ok(p) = c.admit(16 + (i % 3) * 8, Duration::from_millis(50)) {
                            granted += 1;
                            std::thread::yield_now();
                            drop(p);
                        }
                    }
                    granted
                })
            })
            .collect();
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "some requests must get through");
        let snap = ctl.snapshot();
        assert_eq!(snap.in_use, 0, "all permits released");
        assert!(snap.peak_in_use <= 64, "peak {} exceeded the budget", snap.peak_in_use);
    }
}
