//! LRU plan cache keyed by (pattern signature, algorithm, catalog
//! version).
//!
//! Repeated Table-1-style patterns dominate a realistic workload;
//! caching the optimizer's output (plan + estimated cost + certified
//! resource bounds) turns the second and later arrivals of a pattern
//! into a hash lookup instead of a DP/DPP search. Keying on the
//! catalog version makes stale service *structurally* impossible — a
//! catalog rebuild or recalibration changes the version, so old
//! entries simply stop being addressable and age out via LRU. On top
//! of the key, every hit replays planck's PL065 revalidation
//! ([`sjos_planck::revalidate_cached`]) against the live catalog as
//! defense in depth; a dirty entry is dropped and counted as an
//! invalidation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sjos_core::Algorithm;
use sjos_exec::PlanNode;
use sjos_planck::ResourceBounds;

/// Cache key: everything that determines the optimizer's output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical pattern text (the `Display` form of a parsed
    /// [`sjos_pattern::Pattern`], so `//a[./b]` and equivalent
    /// spellings normalize together).
    pub signature: String,
    /// The optimization algorithm the plan came from.
    pub algorithm: Algorithm,
    /// The catalog generation the plan was derived under.
    pub catalog_version: u64,
}

/// A cached optimizer artifact: the plan, its price, and the certified
/// resource bounds admission control charges against.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The chosen physical plan.
    pub plan: PlanNode,
    /// Its estimated cost under the catalog generation it was built
    /// with.
    pub estimated_cost: f64,
    /// Certified worst-case resource bounds (PL060-sound).
    pub bounds: ResourceBounds,
    /// Catalog generation the entry was derived under.
    pub catalog_version: u64,
    /// Catalog content fingerprint at derivation time.
    pub catalog_fingerprint: u64,
}

#[derive(Debug)]
struct CacheSlot {
    plan: std::sync::Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<PlanKey, CacheSlot>,
    tick: u64,
}

/// Counter snapshot for the observability surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheSnapshot {
    /// Lookups served from the cache (after revalidation).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Hits discarded because PL065 revalidation failed.
    pub invalidations: u64,
    /// Entries currently resident.
    pub len: u64,
    /// Maximum resident entries.
    pub capacity: u64,
}

impl PlanCacheSnapshot {
    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded LRU plan cache (see the module docs).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up `key`, revalidating any hit against the live catalog
    /// generation (`live_version`, `live_fingerprint`). A dirty entry
    /// is removed and the lookup counts as a miss.
    pub fn get(
        &self,
        key: &PlanKey,
        live_version: u64,
        live_fingerprint: u64,
    ) -> Option<std::sync::Arc<CachedPlan>> {
        let mut inner = self.inner.lock().expect("plan-cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(key) {
            let entry = std::sync::Arc::clone(&slot.plan);
            let verdict = sjos_planck::revalidate_cached(
                entry.catalog_version,
                entry.catalog_fingerprint,
                live_version,
                live_fingerprint,
            );
            if verdict.is_clean() {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry);
            }
            inner.map.remove(key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert `plan` under `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&self, key: PlanKey, plan: std::sync::Arc<CachedPlan>) {
        let mut inner = self.inner.lock().expect("plan-cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(n) LRU scan, same policy as the buffer pool: the
            // cache is small (hundreds of entries) and insertion is
            // off the hot lookup path.
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, CacheSlot { plan, last_used: tick });
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> PlanCacheSnapshot {
        let inner = self.inner.lock().expect("plan-cache mutex poisoned");
        PlanCacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: inner.map.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(version: u64, fingerprint: u64) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            plan: PlanNode::IndexScan { pnode: sjos_pattern::PnId(0) },
            estimated_cost: 1.0,
            bounds: sjos_planck::ResourceBounds {
                operators: vec![],
                peak_bytes: 64,
                batch_pulls: 1,
                batch_rows: 1,
            },
            catalog_version: version,
            catalog_fingerprint: fingerprint,
        })
    }

    fn key(sig: &str, version: u64) -> PlanKey {
        PlanKey {
            signature: sig.to_string(),
            algorithm: Algorithm::Dpp { lookahead: true },
            catalog_version: version,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = PlanCache::new(4);
        assert!(cache.get(&key("//a/b", 1), 1, 7).is_none());
        cache.insert(key("//a/b", 1), entry(1, 7));
        assert!(cache.get(&key("//a/b", 1), 1, 7).is_some());
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert!((snap.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn algorithm_is_part_of_the_key() {
        let cache = PlanCache::new(4);
        cache.insert(key("//a/b", 1), entry(1, 7));
        let other = PlanKey {
            signature: "//a/b".to_string(),
            algorithm: Algorithm::Fp,
            catalog_version: 1,
        };
        assert!(cache.get(&other, 1, 7).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        cache.insert(key("//a", 1), entry(1, 7));
        cache.insert(key("//b", 1), entry(1, 7));
        assert!(cache.get(&key("//a", 1), 1, 7).is_some(), "warm //a");
        cache.insert(key("//c", 1), entry(1, 7));
        assert!(cache.get(&key("//b", 1), 1, 7).is_none(), "//b was coldest");
        assert!(cache.get(&key("//a", 1), 1, 7).is_some());
        assert!(cache.get(&key("//c", 1), 1, 7).is_some());
        assert_eq!(cache.snapshot().evictions, 1);
    }

    #[test]
    fn stale_entry_is_invalidated_on_revalidation() {
        let cache = PlanCache::new(4);
        // An entry recorded under version 1 looked up while the live
        // catalog is at version 2 (same key — simulates a recorded
        // version diverging from its key, which PL065 exists to catch).
        cache.insert(key("//a/b", 1), entry(1, 7));
        assert!(cache.get(&key("//a/b", 1), 2, 8).is_none());
        let snap = cache.snapshot();
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.len, 0, "dirty entry removed");
    }
}
