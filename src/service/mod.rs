//! A concurrent multi-session query service over one shared engine.
//!
//! [`QueryService`] wraps one [`Database`] — one `XmlStore`, one
//! buffer pool, one catalog — and serves many [`Session`]s at once,
//! each typically owned by one worker thread. Three mechanisms make
//! the sharing safe and observable:
//!
//! 1. **Global admission control** ([`admission`]). Every query's
//!    plan carries a *certified* worst-case peak-memory bound from
//!    [`sjos_planck::analyze_bounds`]; the controller admits queries
//!    only while the sum of in-flight certificates fits the
//!    service-wide budget, queueing (bounded FIFO, deadline-aware
//!    timeout) or rejecting with [`ServiceError::Overloaded`]
//!    otherwise. Because each query then runs under a
//!    [`QueryGuard`] whose memory budget equals its certificate, and
//!    certificates are sound upper bounds (PL064), the aggregate
//!    *measured* footprint of admitted queries provably cannot exceed
//!    the budget. A certificate that can *never* fit degrades instead
//!    of failing: the plan is re-certified in spill mode
//!    ([`sjos_planck::analyze_bounds_spill`], PL066) where sorts park
//!    their buffers in temp pages, and admitted under the smaller
//!    resident certificate — the query runs slower but answers
//!    bit-identically.
//! 2. **Plan caching** ([`plan_cache`]). Plans are cached under
//!    (pattern signature, algorithm, catalog version) with an LRU
//!    bound, so repeated patterns skip DP/DPP entirely; every hit is
//!    revalidated against the live catalog generation (PL065).
//! 3. **Intra-query parallelism** ([`ServiceConfig::parallelism`]).
//!    Above 1, non-degraded queries run morsel-partitioned through
//!    [`sjos_exec::parallel`]: admission reserves `parallelism ×` the
//!    plan's certificate (the aggregate a shared-guard morsel run is
//!    bounded by), falling back to serial admission when the scaled
//!    reservation does not fit; results and metric totals stay
//!    bit-identical to the serial run (PL068).
//! 4. **Observability** ([`metrics`]). Per-session and aggregate
//!    counters — admitted/queued/rejected, cache hit rate, latency
//!    percentiles, certified vs. measured peaks — export as JSON via
//!    [`QueryService::metrics_json`]. Per-session I/O uses the
//!    storage layer's thread-local [`sjos_storage::IoTap`], so each
//!    session sees its own buffer-pool and disk traffic even though
//!    the underlying counters are engine-global.

pub mod admission;
pub mod metrics;
pub mod models;
pub mod plan_cache;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sjos_core::Algorithm;
use sjos_exec::{PlanNode, QueryGuard, QueryResult, SpillPolicy, BATCH_ROWS};
use sjos_pattern::{parse_pattern, Pattern};
use sjos_storage::{IoSnapshot, IoTap};

use crate::{Database, Error};

pub use admission::{AdmissionController, AdmissionSnapshot, RejectReason, Rejection};
pub use metrics::{LatencySummary, ServiceMetrics, SessionMetrics};
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheSnapshot, PlanKey};

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Service-wide budget of certified peak bytes across all
    /// in-flight queries.
    pub memory_budget: u64,
    /// Maximum queries waiting for admission before new arrivals are
    /// rejected outright.
    pub queue_capacity: usize,
    /// Maximum time a query waits in the admission queue (a query
    /// deadline shortens this further).
    pub queue_timeout: Duration,
    /// Maximum resident plan-cache entries.
    pub plan_cache_capacity: usize,
    /// Algorithm used by [`Session::query`] (the paper's
    /// recommendation, DPP, by default).
    pub default_algorithm: Algorithm,
    /// Worker threads per query (1 = serial, the default). Above 1,
    /// non-degraded queries run morsel-partitioned: admission
    /// reserves `parallelism ×` the plan's certificate (the sound
    /// aggregate bound — see [`sjos_planck::admit_parallel`]) and
    /// falls back to serial admission when that scaled reservation
    /// does not fit. Degraded (spill) queries always run serially.
    pub parallelism: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            memory_budget: sjos_planck::DEFAULT_MEMORY_BUDGET,
            queue_capacity: 64,
            queue_timeout: Duration::from_secs(2),
            plan_cache_capacity: 256,
            default_algorithm: Algorithm::Dpp { lookahead: true },
            parallelism: 1,
        }
    }
}

/// Everything that can go wrong for a query passing through the
/// service.
#[derive(Debug)]
pub enum ServiceError {
    /// Parse, optimize, or execution failure from the engine.
    Engine(Error),
    /// Admission control turned the query away: the budget is
    /// saturated (after queueing up to the wait limit), the queue is
    /// full, or the certificate can never fit.
    Overloaded(Rejection),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::Overloaded(r) => write!(
                f,
                "overloaded ({:?}): certified {} B against a {} B budget after waiting {:?}",
                r.reason, r.certified_bytes, r.budget, r.waited
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Error> for ServiceError {
    fn from(e: Error) -> ServiceError {
        ServiceError::Engine(e)
    }
}

/// One successfully served query.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The executed result (rows, executor metrics, elapsed time).
    pub result: QueryResult,
    /// The plan that ran, with its certified bounds.
    pub plan: Arc<CachedPlan>,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether the query ran in degraded (spill) mode: its in-memory
    /// certificate could never fit the budget, but a spill-mode
    /// re-certification (PL066) did, so its sorts spilled to temp
    /// pages instead of the query being rejected.
    pub degraded: bool,
    /// Time spent waiting for admission.
    pub waited: Duration,
    /// This query's own I/O traffic (session-tap attributed).
    pub io: IoSnapshot,
    /// Morsels the query ran as: 1 for serial execution (including
    /// degraded mode and parallel runs with no valid cut), more when
    /// the morsel partitioner actually split the work.
    pub morsels: usize,
}

struct ServiceInner {
    db: Arc<Database>,
    config: ServiceConfig,
    admission: AdmissionController,
    cache: PlanCache,
    metrics: ServiceMetrics,
    sessions: Mutex<Vec<Arc<SessionMetrics>>>,
    next_session: AtomicU64,
}

/// A shareable handle to the concurrent query service. Cloning is
/// cheap (an `Arc` bump); all clones serve the same engine, budget,
/// and cache.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl fmt::Debug for QueryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryService({:?}, budget {} B)", self.inner.db, self.inner.admission.budget())
    }
}

impl QueryService {
    /// Serve `db` under `config`. The database is taken as an `Arc`
    /// so a CLI or test can keep using the same handle directly.
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> QueryService {
        let admission = AdmissionController::new(config.memory_budget, config.queue_capacity);
        let cache = PlanCache::new(config.plan_cache_capacity);
        QueryService {
            inner: Arc::new(ServiceInner {
                db,
                config,
                admission,
                cache,
                metrics: ServiceMetrics::new(),
                sessions: Mutex::new(Vec::new()),
                next_session: AtomicU64::new(0),
            }),
        }
    }

    /// The shared database under the service.
    pub fn database(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Open a session. Sessions are `Send` — hand one to each worker
    /// thread; a session's queries execute on the calling thread and
    /// its I/O counters attribute that thread's traffic.
    pub fn session(&self) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let metrics = Arc::new(SessionMetrics::new(id));
        self.inner.sessions.lock().expect("session registry poisoned").push(Arc::clone(&metrics));
        Session { inner: Arc::clone(&self.inner), metrics }
    }

    /// Admission counters and reservation state.
    pub fn admission_snapshot(&self) -> AdmissionSnapshot {
        self.inner.admission.snapshot()
    }

    /// Plan-cache counters.
    pub fn cache_snapshot(&self) -> PlanCacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Aggregate outcome counters and latency reservoir.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// The full observability surface as one JSON object: query
    /// outcomes, plan-cache counters, admission state (budget vs.
    /// peak reservation, certified vs. measured peaks, bound
    /// violations), latency percentiles, and one entry per session.
    pub fn metrics_json(&self) -> String {
        let m = &self.inner.metrics;
        let adm = self.admission_snapshot();
        let cache = self.cache_snapshot();
        let latency = m.latency_summary();
        let sessions = self.inner.sessions.lock().expect("session registry poisoned");
        let session_objs: Vec<String> = sessions.iter().map(|s| metrics::session_json(s)).collect();
        format!(
            "{{\n  \"queries\":{{\"admitted\":{},\"queued\":{},\"rejected\":{},\
             \"completed\":{},\"failed\":{}}},\n  \
             \"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"invalidations\":{},\"hit_rate\":{:.4},\"len\":{},\"capacity\":{}}},\n  \
             \"admission\":{{\"budget_bytes\":{},\"in_use_bytes\":{},\
             \"peak_reserved_bytes\":{},\"max_certified_peak_bytes\":{},\
             \"max_measured_peak_bytes\":{},\"bound_violations\":{}}},\n  \
             \"spill\":{{\"degraded_admissions\":{},\"spilled_queries\":{},\
             \"spilled_runs\":{},\"spilled_bytes\":{},\"merge_passes\":{}}},\n  \
             \"latency\":{},\n  \"sessions\":[{}]\n}}",
            adm.admitted,
            adm.queued,
            adm.rejected,
            m.completed.load(Ordering::Relaxed),
            m.failed.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.invalidations,
            cache.hit_rate(),
            cache.len,
            cache.capacity,
            adm.budget,
            adm.in_use,
            adm.peak_in_use,
            m.max_certified_peak.load(Ordering::Relaxed),
            m.max_measured_peak.load(Ordering::Relaxed),
            m.bound_violations.load(Ordering::Relaxed),
            m.degraded_admissions.load(Ordering::Relaxed),
            m.spilled_queries.load(Ordering::Relaxed),
            m.spilled_runs.load(Ordering::Relaxed),
            m.spilled_bytes.load(Ordering::Relaxed),
            m.spill_merge_passes.load(Ordering::Relaxed),
            metrics::latency_json(&latency),
            session_objs.join(",")
        )
    }
}

/// One client's handle on the service. Queries run synchronously on
/// the calling thread; open one session per worker.
pub struct Session {
    inner: Arc<ServiceInner>,
    metrics: Arc<SessionMetrics>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Session#{}", self.metrics.id)
    }
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.metrics.id
    }

    /// This session's private I/O counters (tap-attributed).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.metrics.io.snapshot()
    }

    /// Serve a query with the service's default algorithm and no
    /// deadline.
    pub fn query(&self, query: &str) -> Result<ServiceOutcome, ServiceError> {
        let algorithm = self.inner.config.default_algorithm;
        self.query_opts(query, algorithm, None)
    }

    /// Serve a query with an explicit algorithm.
    pub fn query_with(
        &self,
        query: &str,
        algorithm: Algorithm,
    ) -> Result<ServiceOutcome, ServiceError> {
        self.query_opts(query, algorithm, None)
    }

    /// Serve a query with an explicit algorithm and an end-to-end
    /// deadline covering both the admission wait and execution.
    pub fn query_opts(
        &self,
        query: &str,
        algorithm: Algorithm,
        deadline: Option<Duration>,
    ) -> Result<ServiceOutcome, ServiceError> {
        let outcome = self.serve(query, algorithm, deadline);
        match &outcome {
            Ok(_) => {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Engine(_)) => {
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Overloaded(_)) => {
                // The controller's `rejected` counter owns this case.
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn serve(
        &self,
        query: &str,
        algorithm: Algorithm,
        deadline: Option<Duration>,
    ) -> Result<ServiceOutcome, ServiceError> {
        let inner = &*self.inner;
        let started = Instant::now();
        let pattern = parse_pattern(query).map_err(|e| ServiceError::Engine(Error::Query(e)))?;
        let catalog = inner.db.catalog();
        let key = PlanKey {
            signature: pattern.to_string(),
            algorithm,
            catalog_version: catalog.version(),
        };

        // Plan: cache hit (PL065-revalidated) or optimize + certify.
        let (cached, cache_hit) =
            match inner.cache.get(&key, catalog.version(), catalog.fingerprint()) {
                Some(plan) => {
                    inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    (plan, true)
                }
                None => {
                    let optimized =
                        inner.db.optimize(&pattern, algorithm).map_err(ServiceError::Engine)?;
                    let bounds = inner.db.resource_bounds(&pattern, &optimized.plan);
                    let plan = Arc::new(CachedPlan {
                        plan: optimized.plan,
                        estimated_cost: optimized.estimated_cost,
                        bounds,
                        catalog_version: catalog.version(),
                        catalog_fingerprint: catalog.fingerprint(),
                    });
                    inner.cache.insert(key, Arc::clone(&plan));
                    (plan, false)
                }
            };

        // Admission: reserve the certificate against the global
        // budget, waiting at most the configured timeout (shortened
        // by the query deadline, if any). A certificate that can
        // *never* fit gets one more chance: re-certified in spill
        // mode (PL066), where sorts park their buffers in temp pages
        // and only the resident footprint counts.
        let wait_limit = match deadline {
            Some(d) => inner.config.queue_timeout.min(d),
            None => inner.config.queue_timeout,
        };
        // Parallel-first: a `parallelism > 1` service reserves
        // `workers ×` the certificate, the aggregate a shared-guard
        // morsel run is bounded by (sjos_planck::admit_parallel's
        // scaling). If the scaled reservation does not fit, the query
        // falls through to the plain serial path below rather than
        // being rejected.
        let workers = inner.config.parallelism.max(1);
        let mut parallel_grant: Option<(admission::AdmissionPermit<'_>, u64)> = None;
        if workers > 1 {
            let scaled = cached.bounds.peak_bytes.saturating_mul(workers as u64);
            if let Ok(permit) = inner.admission.admit(scaled, wait_limit) {
                parallel_grant = Some((permit, scaled));
            }
        }
        let remaining_wait = wait_limit.saturating_sub(started.elapsed());
        let (permit, certified, spill, parallel) = match parallel_grant {
            Some((permit, scaled)) => (permit, scaled, None, true),
            None => match inner.admission.admit(cached.bounds.peak_bytes, remaining_wait) {
                Ok(permit) => (permit, cached.bounds.peak_bytes, None, false),
                Err(rejection) if rejection.reason == RejectReason::NeverFits => {
                    let budget = inner.admission.budget();
                    let Some((policy, bounds)) =
                        degraded_certificate(&inner.db, &pattern, &cached.plan, budget)
                    else {
                        // No sort to spill, or not even the spill
                        // floor fits: the rejection stands.
                        return Err(ServiceError::Overloaded(rejection));
                    };
                    let remaining = wait_limit.saturating_sub(started.elapsed());
                    let permit = inner
                        .admission
                        .admit(bounds.peak_bytes, remaining)
                        .map_err(ServiceError::Overloaded)?;
                    inner.metrics.degraded_admissions.fetch_add(1, Ordering::Relaxed);
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    (permit, bounds.peak_bytes, Some(policy), false)
                }
                Err(rejection) => return Err(ServiceError::Overloaded(rejection)),
            },
        };
        let waited = started.elapsed();

        // Execute under a guard whose memory budget *is* the
        // certificate: the static admission theorem (PL062/PL064)
        // says this run cannot breach it.
        let mut guard = QueryGuard::unlimited()
            .with_memory_budget(usize::try_from(certified).unwrap_or(usize::MAX));
        if let Some(d) = deadline {
            guard = guard.with_deadline(d.saturating_sub(waited));
        }
        let guard = Arc::new(guard);
        let io_before = self.metrics.io.snapshot();
        let result = {
            // The tap is installed on this session thread; the
            // parallel executor mirrors it onto every worker
            // (IoTap::current), so attribution survives the hop.
            let _tap = IoTap::install(Arc::clone(&self.metrics.io));
            match spill {
                Some(policy) => sjos_exec::execute_guarded_spill(
                    inner.db.store(),
                    &pattern,
                    &cached.plan,
                    &guard,
                    policy,
                )
                .map(|r| (r, 1)),
                None if parallel => sjos_exec::execute_parallel_guarded(
                    inner.db.store(),
                    &pattern,
                    &cached.plan,
                    &guard,
                    sjos_exec::ParallelPolicy::with_threads(workers),
                )
                .map(|p| {
                    let morsels = p.morsel_count();
                    (p.result, morsels)
                }),
                None => {
                    sjos_exec::execute_guarded(inner.db.store(), &pattern, &cached.plan, &guard)
                        .map(|r| (r, 1))
                }
            }
        };
        drop(permit);
        let io = self.metrics.io.snapshot().since(&io_before);

        match result {
            Ok((result, morsels)) => {
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.record_latency(started.elapsed());
                inner.metrics.record_peaks(result.metrics.peak_bytes, certified);
                inner.metrics.record_spill(&result.metrics);
                Ok(ServiceOutcome {
                    result,
                    plan: cached,
                    cache_hit,
                    degraded: spill.is_some(),
                    waited,
                    io,
                    morsels,
                })
            }
            Err(e) => Err(ServiceError::Engine(Error::Exec(e))),
        }
    }
}

/// The widest sort input anywhere in `plan` (its column count), or
/// `None` when the plan has no sort — nothing to spill, so degraded
/// admission cannot help.
fn max_sort_width(plan: &PlanNode) -> Option<usize> {
    fn go(plan: &PlanNode) -> (usize, Option<usize>) {
        match plan {
            PlanNode::IndexScan { .. } => (1, None),
            PlanNode::Sort { input, .. } => {
                let (width, inner) = go(input);
                (width, Some(inner.map_or(width, |m| m.max(width))))
            }
            PlanNode::StructuralJoin { left, right, .. } => {
                let (lw, ls) = go(left);
                let (rw, rs) = go(right);
                let widest = match (ls, rs) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
                (lw + rw, widest)
            }
        }
    }
    go(plan).1
}

/// Find a spill policy under which `plan`'s resident certificate fits
/// `budget`, if one exists: start from the largest threshold whose
/// sort-local resident bound fits (keeping as much of the sort in
/// memory as possible), and while the whole-plan certificate still
/// overshoots — the other operators' buffers, or a sort whose full
/// materialization is below the cap — shrink the threshold by the
/// overshoot, down to the floor of zero. The resident peak is
/// monotone in the threshold, so a handful of strictly-decreasing
/// steps either certifies (PL066) or proves not even the floor fits.
fn degraded_certificate(
    db: &Database,
    pattern: &Pattern,
    plan: &PlanNode,
    budget: u64,
) -> Option<(SpillPolicy, sjos_planck::ResourceBounds)> {
    let width = max_sort_width(plan)?;
    let budget_usize = usize::try_from(budget).unwrap_or(usize::MAX);
    let mut threshold = SpillPolicy::for_budget(budget_usize, width, BATCH_ROWS)?.threshold_bytes;
    for _ in 0..4 {
        let policy = SpillPolicy::with_threshold(threshold);
        let bounds = db.resource_bounds_spill(pattern, plan, policy);
        if sjos_planck::admit_spill(&bounds, Some(budget), None).is_clean() {
            return Some((policy, bounds));
        }
        if threshold == 0 {
            return None;
        }
        let over = usize::try_from(bounds.peak_bytes.saturating_sub(budget)).unwrap_or(usize::MAX);
        threshold = threshold.saturating_sub(over.max(1));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_shareable() {
        assert_send_sync::<Database>();
        assert_send_sync::<QueryService>();
        assert_send_sync::<Session>();
        assert_send_sync::<ServiceError>();
        assert_send_sync::<ServiceOutcome>();
    }

    #[test]
    fn never_fits_query_degrades_to_spill_instead_of_rejecting() {
        use sjos_pattern::PnId;

        // A corpus whose sort input dwarfs the spill machinery's
        // resident floor, so spilling genuinely shrinks the
        // certificate.
        let mut xml = String::from("<db><dept>");
        for _ in 0..20_000 {
            xml.push_str("<emp/>");
        }
        xml.push_str("</dept></db>");
        let db = Arc::new(Database::from_xml(&xml).unwrap());
        let query = "//dept//emp";
        let pattern = parse_pattern(query).unwrap();
        let algorithm = Algorithm::Dpp { lookahead: true };
        let base = db.optimize(&pattern, algorithm).unwrap();
        let plan = sjos_exec::PlanNode::Sort { input: Box::new(base.plan.clone()), by: PnId(0) };
        let full = db.resource_bounds(&pattern, &plan);
        let floor = db.resource_bounds_spill(&pattern, &plan, SpillPolicy::with_threshold(0));
        assert!(
            floor.peak_bytes < full.peak_bytes,
            "corpus too small: spilling must shrink the certificate \
             ({} vs {})",
            floor.peak_bytes,
            full.peak_bytes
        );

        // A budget the in-memory certificate can never fit, but the
        // spill floor can.
        let service = QueryService::new(
            Arc::clone(&db),
            ServiceConfig { memory_budget: floor.peak_bytes, ..ServiceConfig::default() },
        );
        // Seed the cache with the sort-rooted plan so the service
        // serves exactly this shape.
        let catalog = db.catalog();
        service.inner.cache.insert(
            PlanKey {
                signature: pattern.to_string(),
                algorithm,
                catalog_version: catalog.version(),
            },
            Arc::new(CachedPlan {
                plan: plan.clone(),
                estimated_cost: base.estimated_cost,
                bounds: full,
                catalog_version: catalog.version(),
                catalog_fingerprint: catalog.fingerprint(),
            }),
        );

        let session = service.session();
        let out = session.query(query).unwrap();
        assert!(out.degraded, "the query must be admitted in spill mode");
        assert!(out.result.metrics.spilled_runs > 0, "the sort must actually spill");
        assert_eq!(
            out.result.canonical_rows(),
            db.execute(&pattern, &plan).unwrap().canonical_rows(),
            "degraded execution must answer bit-identically"
        );
        assert_eq!(db.store().spill().live_pages(), 0, "no leaked temp pages");

        let m = service.metrics();
        assert_eq!(m.degraded_admissions.load(Ordering::Relaxed), 1);
        assert_eq!(m.spilled_queries.load(Ordering::Relaxed), 1);
        assert!(m.spilled_runs.load(Ordering::Relaxed) > 0);
        assert_eq!(m.bound_violations.load(Ordering::Relaxed), 0);
        let json = service.metrics_json();
        assert!(json.contains("\"degraded_admissions\":1"), "{json}");
        assert!(json.contains("\"spill_page_writes\""), "{json}");
    }

    #[test]
    fn parallel_service_splits_queries_and_answers_identically() {
        let mut xml = String::from("<db>");
        for i in 0..64 {
            xml.push_str(&format!("<dept><emp><name>p{i}</name></emp></dept>"));
        }
        xml.push_str("</db>");
        let db = Arc::new(Database::from_xml(&xml).unwrap());
        let serial = QueryService::new(Arc::clone(&db), ServiceConfig::default());
        let parallel = QueryService::new(
            Arc::clone(&db),
            ServiceConfig { parallelism: 4, ..ServiceConfig::default() },
        );
        let query = "//dept//emp";
        let s = serial.session().query(query).unwrap();
        let p = parallel.session().query(query).unwrap();
        assert_eq!(s.morsels, 1);
        assert!(p.morsels > 1, "the forest corpus must split into morsels");
        assert_eq!(p.result.canonical_rows(), s.result.canonical_rows());
        assert_eq!(p.result.metrics.output_tuples, s.result.metrics.output_tuples);
        assert_eq!(p.result.metrics.stack_pushes, s.result.metrics.stack_pushes);
        // Admission reserved the scaled certificate, not the serial one.
        assert!(
            parallel.admission_snapshot().peak_in_use
                >= 4 * serial.admission_snapshot().peak_in_use
        );
        // The worker-side I/O still lands in this session's tap.
        assert!(p.io.record_reads > 0, "worker record reads must attribute to the session");
    }

    #[test]
    fn second_arrival_of_a_pattern_hits_the_cache() {
        let db = Arc::new(
            Database::from_xml(
                "<dept><emp><name>ada</name></emp><emp><name>bob</name></emp></dept>",
            )
            .unwrap(),
        );
        let service = QueryService::new(db, ServiceConfig::default());
        let session = service.session();
        let first = session.query("//dept/emp/name").unwrap();
        assert!(!first.cache_hit);
        let second = session.query("//dept/emp/name").unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.result.canonical_rows(), second.result.canonical_rows());
        let cache = service.cache_snapshot();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(service.admission_snapshot().admitted, 2);
        assert_eq!(service.metrics().bound_violations.load(Ordering::Relaxed), 0);
    }
}
