//! A concurrent multi-session query service over one shared engine.
//!
//! [`QueryService`] wraps one [`Database`] — one `XmlStore`, one
//! buffer pool, one catalog — and serves many [`Session`]s at once,
//! each typically owned by one worker thread. Three mechanisms make
//! the sharing safe and observable:
//!
//! 1. **Global admission control** ([`admission`]). Every query's
//!    plan carries a *certified* worst-case peak-memory bound from
//!    [`sjos_planck::analyze_bounds`]; the controller admits queries
//!    only while the sum of in-flight certificates fits the
//!    service-wide budget, queueing (bounded FIFO, deadline-aware
//!    timeout) or rejecting with [`ServiceError::Overloaded`]
//!    otherwise. Because each query then runs under a
//!    [`QueryGuard`] whose memory budget equals its certificate, and
//!    certificates are sound upper bounds (PL064), the aggregate
//!    *measured* footprint of admitted queries provably cannot exceed
//!    the budget.
//! 2. **Plan caching** ([`plan_cache`]). Plans are cached under
//!    (pattern signature, algorithm, catalog version) with an LRU
//!    bound, so repeated patterns skip DP/DPP entirely; every hit is
//!    revalidated against the live catalog generation (PL065).
//! 3. **Observability** ([`metrics`]). Per-session and aggregate
//!    counters — admitted/queued/rejected, cache hit rate, latency
//!    percentiles, certified vs. measured peaks — export as JSON via
//!    [`QueryService::metrics_json`]. Per-session I/O uses the
//!    storage layer's thread-local [`sjos_storage::IoTap`], so each
//!    session sees its own buffer-pool and disk traffic even though
//!    the underlying counters are engine-global.

pub mod admission;
pub mod metrics;
pub mod plan_cache;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sjos_core::Algorithm;
use sjos_exec::{QueryGuard, QueryResult};
use sjos_pattern::parse_pattern;
use sjos_storage::{IoSnapshot, IoTap};

use crate::{Database, Error};

pub use admission::{AdmissionController, AdmissionSnapshot, RejectReason, Rejection};
pub use metrics::{LatencySummary, ServiceMetrics, SessionMetrics};
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheSnapshot, PlanKey};

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Service-wide budget of certified peak bytes across all
    /// in-flight queries.
    pub memory_budget: u64,
    /// Maximum queries waiting for admission before new arrivals are
    /// rejected outright.
    pub queue_capacity: usize,
    /// Maximum time a query waits in the admission queue (a query
    /// deadline shortens this further).
    pub queue_timeout: Duration,
    /// Maximum resident plan-cache entries.
    pub plan_cache_capacity: usize,
    /// Algorithm used by [`Session::query`] (the paper's
    /// recommendation, DPP, by default).
    pub default_algorithm: Algorithm,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            memory_budget: sjos_planck::DEFAULT_MEMORY_BUDGET,
            queue_capacity: 64,
            queue_timeout: Duration::from_secs(2),
            plan_cache_capacity: 256,
            default_algorithm: Algorithm::Dpp { lookahead: true },
        }
    }
}

/// Everything that can go wrong for a query passing through the
/// service.
#[derive(Debug)]
pub enum ServiceError {
    /// Parse, optimize, or execution failure from the engine.
    Engine(Error),
    /// Admission control turned the query away: the budget is
    /// saturated (after queueing up to the wait limit), the queue is
    /// full, or the certificate can never fit.
    Overloaded(Rejection),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::Overloaded(r) => write!(
                f,
                "overloaded ({:?}): certified {} B against a {} B budget after waiting {:?}",
                r.reason, r.certified_bytes, r.budget, r.waited
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Error> for ServiceError {
    fn from(e: Error) -> ServiceError {
        ServiceError::Engine(e)
    }
}

/// One successfully served query.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The executed result (rows, executor metrics, elapsed time).
    pub result: QueryResult,
    /// The plan that ran, with its certified bounds.
    pub plan: Arc<CachedPlan>,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Time spent waiting for admission.
    pub waited: Duration,
    /// This query's own I/O traffic (session-tap attributed).
    pub io: IoSnapshot,
}

struct ServiceInner {
    db: Arc<Database>,
    config: ServiceConfig,
    admission: AdmissionController,
    cache: PlanCache,
    metrics: ServiceMetrics,
    sessions: Mutex<Vec<Arc<SessionMetrics>>>,
    next_session: AtomicU64,
}

/// A shareable handle to the concurrent query service. Cloning is
/// cheap (an `Arc` bump); all clones serve the same engine, budget,
/// and cache.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl fmt::Debug for QueryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryService({:?}, budget {} B)", self.inner.db, self.inner.admission.budget())
    }
}

impl QueryService {
    /// Serve `db` under `config`. The database is taken as an `Arc`
    /// so a CLI or test can keep using the same handle directly.
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> QueryService {
        let admission = AdmissionController::new(config.memory_budget, config.queue_capacity);
        let cache = PlanCache::new(config.plan_cache_capacity);
        QueryService {
            inner: Arc::new(ServiceInner {
                db,
                config,
                admission,
                cache,
                metrics: ServiceMetrics::new(),
                sessions: Mutex::new(Vec::new()),
                next_session: AtomicU64::new(0),
            }),
        }
    }

    /// The shared database under the service.
    pub fn database(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Open a session. Sessions are `Send` — hand one to each worker
    /// thread; a session's queries execute on the calling thread and
    /// its I/O counters attribute that thread's traffic.
    pub fn session(&self) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let metrics = Arc::new(SessionMetrics::new(id));
        self.inner.sessions.lock().expect("session registry poisoned").push(Arc::clone(&metrics));
        Session { inner: Arc::clone(&self.inner), metrics }
    }

    /// Admission counters and reservation state.
    pub fn admission_snapshot(&self) -> AdmissionSnapshot {
        self.inner.admission.snapshot()
    }

    /// Plan-cache counters.
    pub fn cache_snapshot(&self) -> PlanCacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Aggregate outcome counters and latency reservoir.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// The full observability surface as one JSON object: query
    /// outcomes, plan-cache counters, admission state (budget vs.
    /// peak reservation, certified vs. measured peaks, bound
    /// violations), latency percentiles, and one entry per session.
    pub fn metrics_json(&self) -> String {
        let m = &self.inner.metrics;
        let adm = self.admission_snapshot();
        let cache = self.cache_snapshot();
        let latency = m.latency_summary();
        let sessions = self.inner.sessions.lock().expect("session registry poisoned");
        let session_objs: Vec<String> = sessions.iter().map(|s| metrics::session_json(s)).collect();
        format!(
            "{{\n  \"queries\":{{\"admitted\":{},\"queued\":{},\"rejected\":{},\
             \"completed\":{},\"failed\":{}}},\n  \
             \"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"invalidations\":{},\"hit_rate\":{:.4},\"len\":{},\"capacity\":{}}},\n  \
             \"admission\":{{\"budget_bytes\":{},\"in_use_bytes\":{},\
             \"peak_reserved_bytes\":{},\"max_certified_peak_bytes\":{},\
             \"max_measured_peak_bytes\":{},\"bound_violations\":{}}},\n  \
             \"latency\":{},\n  \"sessions\":[{}]\n}}",
            adm.admitted,
            adm.queued,
            adm.rejected,
            m.completed.load(Ordering::Relaxed),
            m.failed.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.invalidations,
            cache.hit_rate(),
            cache.len,
            cache.capacity,
            adm.budget,
            adm.in_use,
            adm.peak_in_use,
            m.max_certified_peak.load(Ordering::Relaxed),
            m.max_measured_peak.load(Ordering::Relaxed),
            m.bound_violations.load(Ordering::Relaxed),
            metrics::latency_json(&latency),
            session_objs.join(",")
        )
    }
}

/// One client's handle on the service. Queries run synchronously on
/// the calling thread; open one session per worker.
pub struct Session {
    inner: Arc<ServiceInner>,
    metrics: Arc<SessionMetrics>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Session#{}", self.metrics.id)
    }
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.metrics.id
    }

    /// This session's private I/O counters (tap-attributed).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.metrics.io.snapshot()
    }

    /// Serve a query with the service's default algorithm and no
    /// deadline.
    pub fn query(&self, query: &str) -> Result<ServiceOutcome, ServiceError> {
        let algorithm = self.inner.config.default_algorithm;
        self.query_opts(query, algorithm, None)
    }

    /// Serve a query with an explicit algorithm.
    pub fn query_with(
        &self,
        query: &str,
        algorithm: Algorithm,
    ) -> Result<ServiceOutcome, ServiceError> {
        self.query_opts(query, algorithm, None)
    }

    /// Serve a query with an explicit algorithm and an end-to-end
    /// deadline covering both the admission wait and execution.
    pub fn query_opts(
        &self,
        query: &str,
        algorithm: Algorithm,
        deadline: Option<Duration>,
    ) -> Result<ServiceOutcome, ServiceError> {
        let outcome = self.serve(query, algorithm, deadline);
        match &outcome {
            Ok(_) => {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Engine(_)) => {
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Overloaded(_)) => {
                // The controller's `rejected` counter owns this case.
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn serve(
        &self,
        query: &str,
        algorithm: Algorithm,
        deadline: Option<Duration>,
    ) -> Result<ServiceOutcome, ServiceError> {
        let inner = &*self.inner;
        let started = Instant::now();
        let pattern = parse_pattern(query).map_err(|e| ServiceError::Engine(Error::Query(e)))?;
        let catalog = inner.db.catalog();
        let key = PlanKey {
            signature: pattern.to_string(),
            algorithm,
            catalog_version: catalog.version(),
        };

        // Plan: cache hit (PL065-revalidated) or optimize + certify.
        let (cached, cache_hit) =
            match inner.cache.get(&key, catalog.version(), catalog.fingerprint()) {
                Some(plan) => {
                    inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    (plan, true)
                }
                None => {
                    let optimized =
                        inner.db.optimize(&pattern, algorithm).map_err(ServiceError::Engine)?;
                    let bounds = inner.db.resource_bounds(&pattern, &optimized.plan);
                    let plan = Arc::new(CachedPlan {
                        plan: optimized.plan,
                        estimated_cost: optimized.estimated_cost,
                        bounds,
                        catalog_version: catalog.version(),
                        catalog_fingerprint: catalog.fingerprint(),
                    });
                    inner.cache.insert(key, Arc::clone(&plan));
                    (plan, false)
                }
            };

        // Admission: reserve the certificate against the global
        // budget, waiting at most the configured timeout (shortened
        // by the query deadline, if any).
        let certified = cached.bounds.peak_bytes;
        let wait_limit = match deadline {
            Some(d) => inner.config.queue_timeout.min(d),
            None => inner.config.queue_timeout,
        };
        let permit =
            inner.admission.admit(certified, wait_limit).map_err(ServiceError::Overloaded)?;
        let waited = started.elapsed();

        // Execute under a guard whose memory budget *is* the
        // certificate: the static admission theorem (PL062/PL064)
        // says this run cannot breach it.
        let mut guard = QueryGuard::unlimited()
            .with_memory_budget(usize::try_from(certified).unwrap_or(usize::MAX));
        if let Some(d) = deadline {
            guard = guard.with_deadline(d.saturating_sub(waited));
        }
        let guard = Arc::new(guard);
        let io_before = self.metrics.io.snapshot();
        let result = {
            let _tap = IoTap::install(Arc::clone(&self.metrics.io));
            sjos_exec::execute_guarded(inner.db.store(), &pattern, &cached.plan, &guard)
        };
        drop(permit);
        let io = self.metrics.io.snapshot().since(&io_before);

        match result {
            Ok(result) => {
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.record_latency(started.elapsed());
                inner.metrics.record_peaks(result.metrics.peak_bytes, certified);
                Ok(ServiceOutcome { result, plan: cached, cache_hit, waited, io })
            }
            Err(e) => Err(ServiceError::Engine(Error::Exec(e))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_shareable() {
        assert_send_sync::<Database>();
        assert_send_sync::<QueryService>();
        assert_send_sync::<Session>();
        assert_send_sync::<ServiceError>();
        assert_send_sync::<ServiceOutcome>();
    }

    #[test]
    fn second_arrival_of_a_pattern_hits_the_cache() {
        let db = Arc::new(
            Database::from_xml(
                "<dept><emp><name>ada</name></emp><emp><name>bob</name></emp></dept>",
            )
            .unwrap(),
        );
        let service = QueryService::new(db, ServiceConfig::default());
        let session = service.session();
        let first = session.query("//dept/emp/name").unwrap();
        assert!(!first.cache_hit);
        let second = session.query("//dept/emp/name").unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.result.canonical_rows(), second.result.canonical_rows());
        let cache = service.cache_snapshot();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(service.admission_snapshot().admitted, 2);
        assert_eq!(service.metrics().bound_violations.load(Ordering::Relaxed), 0);
    }
}
