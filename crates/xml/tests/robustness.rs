//! Robustness: the parser must never panic — any input either parses
//! or returns a structured error — and parsing is deterministic.

use proptest::prelude::*;
use sjos_xml::Document;

/// A well-formed single-root document: nested open tags, a text
/// payload, matching close tags. ASCII-only so byte surgery below
/// stays on char boundaries.
fn build_doc(tag_draws: &[usize], text_draw: usize) -> String {
    // The vendored proptest shim ignores string regexes, so tag and
    // text content are drawn as indices into fixed ASCII vocabularies.
    const TAGS: [&str; 8] = ["a", "bb", "node", "x", "item", "tag", "q", "name"];
    const TEXTS: [&str; 4] = ["", "t", "some text", "x y z"];
    let tags: Vec<&str> = tag_draws.iter().map(|&i| TAGS[i % TAGS.len()]).collect();
    let mut s = String::new();
    for t in &tags {
        s.push('<');
        s.push_str(t);
        s.push('>');
    }
    s.push_str(TEXTS[text_draw % TEXTS.len()]);
    for t in tags.iter().rev() {
        s.push_str("</");
        s.push_str(t);
        s.push('>');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (valid UTF-8) never panics the parser.
    #[test]
    fn parser_total_on_arbitrary_strings(input in "\\PC*") {
        let _ = Document::parse(&input);
    }

    /// Markup-shaped soup (higher chance of entering deep parser
    /// paths) never panics either.
    #[test]
    fn parser_total_on_markup_like_strings(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<a/>".to_string()),
                Just("<a x='1'>".to_string()),
                Just("<!-- c -->".to_string()),
                Just("<![CDATA[x]]>".to_string()),
                Just("<?pi d?>".to_string()),
                Just("&amp;".to_string()),
                Just("&#65;".to_string()),
                Just("&bad;".to_string()),
                Just("text".to_string()),
                Just("]]>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("\"".to_string()),
            ],
            0..24,
        )
    ) {
        let input: String = parts.concat();
        let first = Document::parse(&input);
        let second = Document::parse(&input);
        match (first, second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.len(), b.len()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "non-deterministic parse"),
        }
    }

    /// Every strict prefix of a well-formed document is an error —
    /// truncation (a torn file, a short read) must be *reported*, not
    /// parsed into a silently smaller document. And it must never
    /// panic.
    #[test]
    fn truncated_documents_always_error(
        tags in prop::collection::vec(0..8usize, 1..6),
        text in 0..4usize,
        cut_draw in 0..10_000usize,
    ) {
        let full = build_doc(&tags, text);
        prop_assert!(Document::parse(&full).is_ok(), "fixture must be well-formed: {full}");
        let cut = 1 + cut_draw % (full.len() - 1); // 1..len: a strict, non-empty prefix
        let prefix = &full[..cut];
        prop_assert!(
            Document::parse(prefix).is_err(),
            "truncation at byte {cut} parsed silently: {prefix}"
        );
    }

    /// Smashing one byte of a well-formed document never panics the
    /// parser, whatever it turns into.
    #[test]
    fn corrupted_documents_never_panic(
        tags in prop::collection::vec(0..8usize, 1..6),
        text in 0..4usize,
        pos_draw in 0..10_000usize,
        junk_draw in 0..8usize,
    ) {
        const JUNK: [u8; 8] = [b'<', b'>', b'&', b'/', b'=', b'"', b'\0', 0xFF];
        let mut bytes = build_doc(&tags, text).into_bytes();
        let i = pos_draw % bytes.len();
        bytes[i] = JUNK[junk_draw];
        // 0xFF breaks UTF-8; the parser only sees &str, so that case
        // is rejected before it — everything else must not panic.
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = Document::parse(&s);
        }
    }

    /// Every successfully parsed document upholds the region
    /// invariants.
    #[test]
    fn parsed_documents_have_valid_regions(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b/>".to_string()),
                Just("t".to_string()),
            ],
            0..20,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(doc) = Document::parse(&input) {
            for n in doc.nodes() {
                prop_assert!(n.region.start < n.region.end);
            }
            for (i, n) in doc.nodes().iter().enumerate() {
                if let Some(p) = n.parent {
                    prop_assert!(doc.region(p).contains(n.region));
                    prop_assert!(p.index() < i, "parents precede children");
                }
            }
        }
    }
}
