//! Robustness: the parser must never panic — any input either parses
//! or returns a structured error — and parsing is deterministic.

use proptest::prelude::*;
use sjos_xml::Document;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (valid UTF-8) never panics the parser.
    #[test]
    fn parser_total_on_arbitrary_strings(input in "\\PC*") {
        let _ = Document::parse(&input);
    }

    /// Markup-shaped soup (higher chance of entering deep parser
    /// paths) never panics either.
    #[test]
    fn parser_total_on_markup_like_strings(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<a/>".to_string()),
                Just("<a x='1'>".to_string()),
                Just("<!-- c -->".to_string()),
                Just("<![CDATA[x]]>".to_string()),
                Just("<?pi d?>".to_string()),
                Just("&amp;".to_string()),
                Just("&#65;".to_string()),
                Just("&bad;".to_string()),
                Just("text".to_string()),
                Just("]]>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("\"".to_string()),
            ],
            0..24,
        )
    ) {
        let input: String = parts.concat();
        let first = Document::parse(&input);
        let second = Document::parse(&input);
        match (first, second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.len(), b.len()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "non-deterministic parse"),
        }
    }

    /// Every successfully parsed document upholds the region
    /// invariants.
    #[test]
    fn parsed_documents_have_valid_regions(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b/>".to_string()),
                Just("t".to_string()),
            ],
            0..20,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(doc) = Document::parse(&input) {
            for n in doc.nodes() {
                prop_assert!(n.region.start < n.region.end);
            }
            for (i, n) in doc.nodes().iter().enumerate() {
                if let Some(p) = n.parent {
                    prop_assert!(doc.region(p).contains(n.region));
                    prop_assert!(p.index() < i, "parents precede children");
                }
            }
        }
    }
}
