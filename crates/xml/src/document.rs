//! Arena document model with region-encoded elements.
//!
//! A [`Document`] holds every element of a parsed XML document in a
//! flat arena in document order (so a node's arena index doubles as
//! its document-order rank) together with interned tags, attribute
//! lists, immediate text content, and the `(start, end, level)`
//! [`Region`] encoding assigned during parsing.

use std::collections::HashMap;

use crate::error::ParseError;
use crate::parser::{Attribute, EventReader, XmlEvent};
use crate::region::Region;
use crate::tag::{Tag, TagInterner};

/// Arena handle for an element node. Indexes are assigned in document
/// order: `NodeId(0)` is the root element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One element node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Interned element name.
    pub tag: Tag,
    /// Region (interval + level) encoding.
    pub region: Region,
    /// Parent element; `None` for the root.
    pub parent: Option<NodeId>,
    /// First child element in document order.
    pub first_child: Option<NodeId>,
    /// Next sibling element in document order.
    pub next_sibling: Option<NodeId>,
    /// Attributes in source order (names interned alongside tags).
    pub attributes: Vec<(Tag, String)>,
    /// Concatenated *immediate* character data of this element (text
    /// and CDATA children, not descendants').
    pub text: String,
}

/// A parsed XML document.
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
    tags: TagInterner,
    /// Document-order element lists per tag, the raw material for the
    /// storage layer's tag index.
    by_tag: HashMap<Tag, Vec<NodeId>>,
}

impl Document {
    /// Parse `input` into a document. Line endings are normalized
    /// (`\r\n`/`\r` → `\n`) and a leading BOM is skipped, per the XML
    /// 1.0 input-processing rules.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let normalized = crate::parser::normalize_line_ends(input);
        let mut builder = crate::builder::DocumentBuilder::new();
        let mut reader = EventReader::new(&normalized);
        while let Some(ev) = reader.next_event()? {
            match ev {
                XmlEvent::StartElement { name, attributes, .. } => {
                    builder.start_element_with_attrs(name, attrs_to_pairs(attributes));
                }
                XmlEvent::EndElement { .. } => {
                    builder.end_element();
                }
                XmlEvent::Text(t) => builder.text(&t),
                XmlEvent::CData(t) => builder.text(t),
                XmlEvent::Comment(_)
                | XmlEvent::ProcessingInstruction { .. }
                | XmlEvent::Declaration(_)
                | XmlEvent::DocType(_) => {}
            }
        }
        Ok(builder.finish())
    }

    /// Construct directly from parts (used by [`crate::builder`]).
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        tags: TagInterner,
        by_tag: HashMap<Tag, Vec<NodeId>>,
    ) -> Self {
        Document { nodes, tags, by_tag }
    }

    /// Number of element nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds no elements (only possible for the
    /// `Default` value; parsing rejects empty documents).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root element.
    pub fn root(&self) -> Option<NodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(NodeId(0))
        }
    }

    /// Access a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// A node's region encoding.
    #[inline]
    pub fn region(&self, id: NodeId) -> Region {
        self.nodes[id.index()].region
    }

    /// All nodes, in document order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The tag interner (shared name space of this document).
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Resolve a tag name.
    pub fn tag_name(&self, tag: Tag) -> &str {
        self.tags.name(tag)
    }

    /// Look up the handle for `name` if any element used it.
    pub fn tag(&self, name: &str) -> Option<Tag> {
        self.tags.get(name)
    }

    /// Document-order list of the elements with tag `tag`.
    pub fn elements_with_tag(&self, tag: Tag) -> &[NodeId] {
        self.by_tag.get(&tag).map_or(&[], Vec::as_slice)
    }

    /// Iterate over `(tag, element list)` pairs.
    pub fn tag_lists(&self) -> impl Iterator<Item = (Tag, &[NodeId])> {
        self.by_tag.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// Child elements of `id`, in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { doc: self, next: self.node(id).first_child }
    }

    /// Walk ancestors from parent up to the root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, next: self.node(id).parent }
    }

    /// All elements in the subtree rooted at `id` (excluding `id`), in
    /// document order. Relies on the arena being in document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let region = self.region(id);
        let first = id.index() + 1;
        self.nodes[first..]
            .iter()
            .take_while(move |n| n.region.end < region.end)
            .enumerate()
            .map(move |(i, _)| NodeId((first + i) as u32))
    }

    /// True iff `anc` is a proper ancestor of `desc`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.region(anc).contains(self.region(desc))
    }

    /// Attribute value by name, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        let tag = self.tags.get(name)?;
        self.node(id).attributes.iter().find(|(t, _)| *t == tag).map(|(_, v)| v.as_str())
    }
}

fn attrs_to_pairs(attrs: Vec<Attribute>) -> Vec<(String, String)> {
    attrs.into_iter().map(|a| (a.name, a.value)).collect()
}

/// Iterator over child elements.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(id)
    }
}

/// Iterator over ancestors, nearest first.
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<dept name=\"R&amp;D\">\
        <emp><name>Ada</name><name>Lovelace</name></emp>\
        <emp><name>Grace</name></emp>\
        <note>restructuring</note>\
    </dept>";

    #[test]
    fn arena_is_in_document_order() {
        let doc = Document::parse(SAMPLE).unwrap();
        let starts: Vec<u32> = doc.nodes().iter().map(|n| n.region.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn regions_nest_properly() {
        let doc = Document::parse(SAMPLE).unwrap();
        let root = doc.root().unwrap();
        for id in doc.descendants(root) {
            assert!(doc.region(root).contains(doc.region(id)));
        }
    }

    #[test]
    fn levels_match_tree_depth() {
        let doc = Document::parse(SAMPLE).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.region(root).level, 0);
        for child in doc.children(root) {
            assert_eq!(doc.region(child).level, 1);
            for gc in doc.children(child) {
                assert_eq!(doc.region(gc).level, 2);
            }
        }
    }

    #[test]
    fn tag_lists_are_docorder_and_complete() {
        let doc = Document::parse(SAMPLE).unwrap();
        let name = doc.tag("name").unwrap();
        let list = doc.elements_with_tag(name);
        assert_eq!(list.len(), 3);
        for w in list.windows(2) {
            assert!(doc.region(w[0]).start < doc.region(w[1]).start);
        }
        let total: usize = doc.tag_lists().map(|(_, l)| l.len()).sum();
        assert_eq!(total, doc.len());
    }

    #[test]
    fn text_is_immediate_only() {
        let doc = Document::parse(SAMPLE).unwrap();
        let note = doc.tag("note").unwrap();
        let note_id = doc.elements_with_tag(note)[0];
        assert_eq!(doc.node(note_id).text, "restructuring");
        let root = doc.root().unwrap();
        assert_eq!(doc.node(root).text, "", "root has no immediate text");
    }

    #[test]
    fn attributes_are_reachable_by_name() {
        let doc = Document::parse(SAMPLE).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.attribute(root, "name"), Some("R&D"));
        assert_eq!(doc.attribute(root, "missing"), None);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let doc = Document::parse(SAMPLE).unwrap();
        let name = doc.tag("name").unwrap();
        let deepest = doc.elements_with_tag(name)[0];
        let chain: Vec<_> = doc.ancestors(deepest).collect();
        assert_eq!(chain.len(), 2); // emp, dept
        assert_eq!(chain[1], doc.root().unwrap());
    }

    #[test]
    fn descendants_match_region_containment() {
        let doc = Document::parse(SAMPLE).unwrap();
        let emp = doc.tag("emp").unwrap();
        let first_emp = doc.elements_with_tag(emp)[0];
        let descs: Vec<_> = doc.descendants(first_emp).collect();
        assert_eq!(descs.len(), 2);
        for d in descs {
            assert!(doc.is_ancestor(first_emp, d));
        }
    }

    #[test]
    fn is_ancestor_agrees_with_parent_links() {
        let doc = Document::parse(SAMPLE).unwrap();
        for (i, n) in doc.nodes().iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(doc.is_ancestor(p, NodeId(i as u32)));
                assert!(doc.region(p).is_parent_of(n.region));
            }
        }
    }
}
