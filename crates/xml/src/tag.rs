//! Interned element/attribute names.
//!
//! A database touching millions of elements cannot afford a `String`
//! per node; tags are interned once into a dense `u32` symbol space
//! shared by the document, the storage layer's per-tag index, pattern
//! trees, and the statistics module.

use std::collections::HashMap;

/// A dense handle for an interned name. `Tag(0)` is the first name
/// interned in a given [`TagInterner`]; handles from different
/// interners must not be mixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// The dense index of this tag, usable to index side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional name <-> [`Tag`] mapping.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    by_name: HashMap<String, Tag>,
    names: Vec<String>,
}

impl TagInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its existing handle if already present.
    pub fn intern(&mut self, name: &str) -> Tag {
        if let Some(&tag) = self.by_name.get(name) {
            return tag;
        }
        let tag = Tag(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), tag);
        tag
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Tag> {
        self.by_name.get(name).copied()
    }

    /// The name behind a handle.
    ///
    /// # Panics
    /// Panics if `tag` did not come from this interner.
    pub fn name(&self, tag: Tag) -> &str {
        &self.names[tag.index()]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(tag, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Tag, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Tag(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = TagInterner::new();
        let a1 = it.intern("manager");
        let a2 = it.intern("manager");
        assert_eq!(a1, a2);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn handles_are_dense_and_reversible() {
        let mut it = TagInterner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        assert_eq!(a, Tag(0));
        assert_eq!(b, Tag(1));
        assert_eq!(it.name(a), "a");
        assert_eq!(it.name(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = TagInterner::new();
        assert_eq!(it.get("x"), None);
        assert!(it.is_empty());
        it.intern("x");
        assert_eq!(it.get("x"), Some(Tag(0)));
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut it = TagInterner::new();
        for n in ["dept", "emp", "name"] {
            it.intern(n);
        }
        let collected: Vec<_> = it.iter().map(|(t, n)| (t.0, n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "dept".into()), (1, "emp".into()), (2, "name".into())]);
    }
}
