//! Pull-based XML event parser.
//!
//! [`EventReader`] turns input text into a stream of [`XmlEvent`]s,
//! enforcing well-formedness (tag balance, attribute uniqueness, legal
//! entities, exactly one root). Document construction on top of the
//! event stream lives in [`crate::document`].

use std::borrow::Cow;

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::Scanner;

/// One attribute on a start tag, with entities in the value resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written.
    pub name: String,
    /// Attribute value with entity/char references expanded.
    pub value: String,
}

/// A parsed XML event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// `<name a="v" ...>`; `self_closing` for `<name/>`.
    StartElement {
        /// Element tag name.
        name: &'a str,
        /// Attributes in document order, duplicates rejected.
        attributes: Vec<Attribute>,
        /// Whether the element was written `<name/>`.
        self_closing: bool,
    },
    /// `</name>`. Also emitted synthetically after a self-closing
    /// start element, so start/end events always balance.
    EndElement {
        /// Element tag name.
        name: &'a str,
    },
    /// Character data between tags, with entities expanded. Runs of
    /// pure whitespace between elements are still reported; the
    /// document builder decides what to keep.
    Text(Cow<'a, str>),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(&'a str),
    /// `<!-- ... -->` content.
    Comment(&'a str),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target (the word after `<?`).
        target: &'a str,
        /// Everything between the target and `?>`, verbatim.
        data: &'a str,
    },
    /// `<?xml version=... ?>` at the very start of the document.
    Declaration(&'a str),
    /// `<!DOCTYPE ...>`; the internal subset is skipped, not parsed.
    DocType(&'a str),
}

/// Streaming well-formedness-checking parser.
///
/// ```
/// use sjos_xml::{EventReader, XmlEvent};
/// let mut rd = EventReader::new("<a x='1'><b/></a>");
/// let mut names = vec![];
/// while let Some(ev) = rd.next_event().unwrap() {
///     if let XmlEvent::StartElement { name, .. } = ev { names.push(name.to_owned()); }
/// }
/// assert_eq!(names, ["a", "b"]);
/// ```
pub struct EventReader<'a> {
    input: &'a str,
    scanner: Scanner<'a>,
    open_stack: Vec<&'a str>,
    seen_root: bool,
    /// Set when the previous event was a self-closing start element;
    /// holds the name for the synthetic end event.
    pending_end: Option<&'a str>,
    finished: bool,
}

impl<'a> EventReader<'a> {
    /// Parse `input` from the beginning. A leading UTF-8 byte-order
    /// mark is skipped.
    pub fn new(input: &'a str) -> Self {
        let input = input.strip_prefix('\u{FEFF}').unwrap_or(input);
        EventReader {
            input,
            scanner: Scanner::new(input),
            open_stack: Vec::new(),
            seen_root: false,
            pending_end: None,
            finished: false,
        }
    }

    /// Current element nesting depth (root element = depth 1 while
    /// open).
    pub fn depth(&self) -> usize {
        self.open_stack.len()
    }

    /// Produce the next event, or `Ok(None)` at the end of a
    /// well-formed document.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent<'a>>, ParseError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        if self.finished {
            return Ok(None);
        }
        loop {
            if self.scanner.at_eof() {
                return self.finish();
            }
            if self.scanner.rest().starts_with('<') {
                return self.markup().map(Some);
            }
            // Character data run.
            let ev = self.text()?;
            match &ev {
                XmlEvent::Text(t)
                    if self.open_stack.is_empty() && t.chars().all(|c| c.is_ascii_whitespace()) =>
                {
                    // Whitespace at document level is ignorable.
                    continue;
                }
                _ => return Ok(Some(ev)),
            }
        }
    }

    /// Collect the remaining events into a vector (mainly for tests).
    pub fn collect_events(mut self) -> Result<Vec<XmlEvent<'a>>, ParseError> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    fn finish(&mut self) -> Result<Option<XmlEvent<'a>>, ParseError> {
        if let Some(open) = self.open_stack.last() {
            return Err(ParseError::new(
                ParseErrorKind::UnclosedElement((*open).to_owned()),
                self.scanner.position(),
            ));
        }
        if !self.seen_root {
            return Err(ParseError::new(ParseErrorKind::EmptyDocument, self.scanner.position()));
        }
        self.finished = true;
        Ok(None)
    }

    fn markup(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        if self.scanner.rest().starts_with("<!--") {
            return self.comment();
        }
        if self.scanner.rest().starts_with("<![CDATA[") {
            return self.cdata();
        }
        if self.scanner.rest().starts_with("<!DOCTYPE") {
            return self.doctype();
        }
        if self.scanner.rest().starts_with("<?") {
            return self.pi_or_declaration();
        }
        if self.scanner.rest().starts_with("</") {
            return self.end_tag();
        }
        self.start_tag()
    }

    fn comment(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        self.scanner.expect("<!--")?;
        let body = self.scanner.take_until("-->")?;
        if body.contains("--") {
            return Err(ParseError::new(
                ParseErrorKind::IllegalSequence("-- inside comment"),
                self.scanner.position(),
            ));
        }
        self.scanner.expect("-->")?;
        Ok(XmlEvent::Comment(body))
    }

    fn cdata(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        if self.open_stack.is_empty() {
            return Err(ParseError::new(
                ParseErrorKind::ContentOutsideRoot,
                self.scanner.position(),
            ));
        }
        self.scanner.expect("<![CDATA[")?;
        let body = self.scanner.take_until("]]>")?;
        self.scanner.expect("]]>")?;
        Ok(XmlEvent::CData(body))
    }

    fn doctype(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        self.scanner.expect("<!DOCTYPE")?;
        // Skip to the closing '>', honoring a bracketed internal subset.
        let start = self.scanner.position().offset;
        let mut depth = 0usize;
        loop {
            match self.scanner.bump() {
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => break,
                Some(_) => {}
                None => {
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof,
                        self.scanner.position(),
                    ))
                }
            }
        }
        let end = self.scanner.position().offset - 1;
        Ok(XmlEvent::DocType(self.slice(start, end).trim()))
    }

    fn slice(&self, start: usize, end: usize) -> &'a str {
        &self.input[start..end]
    }

    fn pi_or_declaration(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        let at_start = self.scanner.position().offset == 0;
        self.scanner.expect("<?")?;
        let target = self.scanner.take_name()?;
        let body = self.scanner.take_until("?>")?;
        self.scanner.expect("?>")?;
        if target.eq_ignore_ascii_case("xml") {
            if !at_start {
                return Err(ParseError::new(
                    ParseErrorKind::IllegalSequence("XML declaration not at document start"),
                    self.scanner.position(),
                ));
            }
            return Ok(XmlEvent::Declaration(body.trim()));
        }
        Ok(XmlEvent::ProcessingInstruction { target, data: body.trim() })
    }

    fn end_tag(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        self.scanner.expect("</")?;
        let name = self.scanner.take_name()?;
        self.scanner.skip_whitespace();
        self.scanner.expect(">")?;
        match self.open_stack.pop() {
            Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
            Some(open) => Err(ParseError::new(
                ParseErrorKind::MismatchedCloseTag {
                    expected: open.to_owned(),
                    found: name.to_owned(),
                },
                self.scanner.position(),
            )),
            None => Err(ParseError::new(
                ParseErrorKind::UnmatchedCloseTag(name.to_owned()),
                self.scanner.position(),
            )),
        }
    }

    fn start_tag(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        self.scanner.expect("<")?;
        if self.open_stack.is_empty() && self.seen_root {
            return Err(ParseError::new(ParseErrorKind::MultipleRoots, self.scanner.position()));
        }
        let name = self.scanner.take_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            let skipped = self.scanner.skip_whitespace();
            match self.scanner.peek() {
                Some('>') => {
                    self.scanner.bump();
                    self.open_stack.push(name);
                    self.seen_root = true;
                    return Ok(XmlEvent::StartElement { name, attributes, self_closing: false });
                }
                Some('/') => {
                    self.scanner.expect("/>")?;
                    self.seen_root = true;
                    self.pending_end = Some(name);
                    return Ok(XmlEvent::StartElement { name, attributes, self_closing: true });
                }
                Some(_) if skipped == 0 => return Err(self.scanner.err_here()),
                Some(_) => {
                    let attr = self.attribute()?;
                    if attributes.iter().any(|a| a.name == attr.name) {
                        return Err(ParseError::new(
                            ParseErrorKind::DuplicateAttribute(attr.name),
                            self.scanner.position(),
                        ));
                    }
                    attributes.push(attr);
                }
                None => {
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof,
                        self.scanner.position(),
                    ))
                }
            }
        }
    }

    fn attribute(&mut self) -> Result<Attribute, ParseError> {
        let name = self.scanner.take_name()?;
        self.scanner.skip_whitespace();
        self.scanner.expect("=")?;
        self.scanner.skip_whitespace();
        let quote = match self.scanner.peek() {
            Some(q @ ('"' | '\'')) => {
                self.scanner.bump();
                q
            }
            _ => return Err(self.scanner.err_here()),
        };
        let raw = self.scanner.take_until(&quote.to_string())?;
        self.scanner.expect(&quote.to_string())?;
        if raw.contains('<') {
            return Err(ParseError::new(
                ParseErrorKind::IllegalSequence("'<' in attribute value"),
                self.scanner.position(),
            ));
        }
        // XML 1.0 §3.3.3 attribute-value normalization: *literal*
        // whitespace becomes a space (before entity expansion, so
        // character references like `&#10;` survive verbatim).
        let normalized: String = {
            let mut out = String::with_capacity(raw.len());
            let mut chars = raw.chars().peekable();
            while let Some(c) = chars.next() {
                match c {
                    '\r' => {
                        if chars.peek() == Some(&'\n') {
                            chars.next();
                        }
                        out.push(' ');
                    }
                    '\n' | '\t' => out.push(' '),
                    other => out.push(other),
                }
            }
            out
        };
        let value = expand_entities(&normalized, self.scanner.position())?.into_owned();
        Ok(Attribute { name: name.to_owned(), value })
    }

    fn text(&mut self) -> Result<XmlEvent<'a>, ParseError> {
        let rest = self.scanner.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let raw = &rest[..end];
        if raw.contains("]]>") {
            return Err(ParseError::new(
                ParseErrorKind::IllegalSequence("]]> in character data"),
                self.scanner.position(),
            ));
        }
        if self.open_stack.is_empty() && !raw.chars().all(|c| c.is_ascii_whitespace()) {
            return Err(ParseError::new(
                ParseErrorKind::ContentOutsideRoot,
                self.scanner.position(),
            ));
        }
        let pos = self.scanner.position();
        for _ in raw.chars() {
            self.scanner.bump();
        }
        Ok(XmlEvent::Text(expand_entities(raw, pos)?))
    }
}

/// XML 1.0 §2.11 end-of-line normalization: `\r\n` and lone `\r`
/// become `\n`. [`crate::Document::parse`] applies this to the whole
/// input before event parsing (the spec's "before parsing"
/// semantics); direct [`EventReader`] users may call it themselves.
pub fn normalize_line_ends(input: &str) -> Cow<'_, str> {
    if !input.contains('\r') {
        return Cow::Borrowed(input);
    }
    let mut out = String::with_capacity(input.len());
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\r' {
            if chars.peek() == Some(&'\n') {
                chars.next();
            }
            out.push('\n');
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

/// Parsed form of the `<?xml ...?>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// `version` pseudo-attribute (`1.0` or `1.1`).
    pub version: String,
    /// `encoding`, if declared.
    pub encoding: Option<String>,
    /// `standalone`, if declared.
    pub standalone: Option<bool>,
}

/// Parse the body of an XML declaration (the text between `<?xml`
/// and `?>`), validating the pseudo-attributes.
pub fn parse_declaration(body: &str) -> Result<Declaration, String> {
    let mut version = None;
    let mut encoding = None;
    let mut standalone = None;
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("bad declaration near {rest:?}"))?;
        let key = rest[..eq].trim();
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|c| *c == '"' || *c == '\'')
            .ok_or_else(|| format!("unquoted value for {key:?}"))?;
        let close =
            after[1..].find(quote).ok_or_else(|| format!("unterminated value for {key:?}"))?;
        let value = &after[1..1 + close];
        rest = after[close + 2..].trim_start();
        match key {
            "version" => {
                if value != "1.0" && value != "1.1" {
                    return Err(format!("unsupported XML version {value:?}"));
                }
                version = Some(value.to_owned());
            }
            "encoding" => encoding = Some(value.to_owned()),
            "standalone" => {
                standalone = Some(match value {
                    "yes" => true,
                    "no" => false,
                    other => return Err(format!("bad standalone value {other:?}")),
                });
            }
            other => return Err(format!("unknown declaration attribute {other:?}")),
        }
    }
    let version = version.ok_or("declaration missing version")?;
    Ok(Declaration { version, encoding, standalone })
}

/// Expand the predefined entities and numeric character references in
/// `raw`. Returns a borrowed slice when nothing needed expanding.
pub fn expand_entities<'a>(
    raw: &'a str,
    pos: crate::error::Position,
) -> Result<Cow<'a, str>, ParseError> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let semi = rest
            .find(';')
            .ok_or_else(|| ParseError::new(ParseErrorKind::InvalidEntity(clip(rest)), pos))?;
        let ent = &rest[1..semi];
        let expanded: char = match ent {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                char_from_code(u32::from_str_radix(&ent[2..], 16).ok(), ent, pos)?
            }
            _ if ent.starts_with('#') => char_from_code(ent[1..].parse::<u32>().ok(), ent, pos)?,
            _ => return Err(ParseError::new(ParseErrorKind::InvalidEntity(ent.to_owned()), pos)),
        };
        out.push(expanded);
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

fn char_from_code(
    code: Option<u32>,
    ent: &str,
    pos: crate::error::Position,
) -> Result<char, ParseError> {
    code.and_then(char::from_u32)
        .ok_or_else(|| ParseError::new(ParseErrorKind::InvalidEntity(ent.to_owned()), pos))
}

fn clip(s: &str) -> String {
    s.chars().take(12).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent<'_>> {
        EventReader::new(input).collect_events().unwrap()
    }

    fn parse_err(input: &str) -> ParseErrorKind {
        EventReader::new(input).collect_events().unwrap_err().kind
    }

    #[test]
    fn simple_document_event_stream() {
        let evs = events("<a><b>hi</b></a>");
        assert_eq!(evs.len(), 5);
        assert!(matches!(evs[0], XmlEvent::StartElement { name: "a", .. }));
        assert!(matches!(evs[2], XmlEvent::Text(ref t) if t == "hi"));
        assert!(matches!(evs[4], XmlEvent::EndElement { name: "a" }));
    }

    #[test]
    fn self_closing_emits_balanced_end() {
        let evs = events("<a><b/></a>");
        assert!(matches!(evs[1], XmlEvent::StartElement { name: "b", self_closing: true, .. }));
        assert!(matches!(evs[2], XmlEvent::EndElement { name: "b" }));
    }

    #[test]
    fn attributes_parse_with_both_quote_styles() {
        let evs = events(r#"<a x="1" y='two'/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0], Attribute { name: "x".into(), value: "1".into() });
                assert_eq!(attributes[1], Attribute { name: "y".into(), value: "two".into() });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entity_expansion_in_text_and_attributes() {
        let evs = events(r#"<a t="&lt;&amp;&#65;">x &gt; y &#x41;</a>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "<&A");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "x > y A"));
    }

    #[test]
    fn cdata_is_verbatim() {
        let evs = events("<a><![CDATA[<not & parsed>]]></a>");
        assert!(matches!(evs[1], XmlEvent::CData("<not & parsed>")));
    }

    #[test]
    fn comments_pis_doctype_and_declaration() {
        let evs = events(
            "<?xml version=\"1.0\"?><!DOCTYPE root [<!ELEMENT a ANY>]><!-- c --><a><?go fast?></a>",
        );
        assert!(matches!(evs[0], XmlEvent::Declaration(_)));
        assert!(matches!(evs[1], XmlEvent::DocType(_)));
        assert!(matches!(evs[2], XmlEvent::Comment(" c ")));
        assert!(matches!(evs[4], XmlEvent::ProcessingInstruction { target: "go", data: "fast" }));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(parse_err("<a><b></a></b>"), ParseErrorKind::MismatchedCloseTag { .. }));
    }

    #[test]
    fn unclosed_root_rejected() {
        assert!(matches!(parse_err("<a><b></b>"), ParseErrorKind::UnclosedElement(_)));
    }

    #[test]
    fn stray_close_rejected() {
        assert!(matches!(parse_err("<a/></b>"), ParseErrorKind::UnmatchedCloseTag(_)));
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(matches!(parse_err("<a/><b/>"), ParseErrorKind::MultipleRoots));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(matches!(parse_err("<a/>junk"), ParseErrorKind::ContentOutsideRoot));
        assert!(matches!(parse_err("junk<a/>"), ParseErrorKind::ContentOutsideRoot));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(matches!(parse_err("  \n "), ParseErrorKind::EmptyDocument));
        assert!(matches!(parse_err("<!-- only a comment -->"), ParseErrorKind::EmptyDocument));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(matches!(parse_err(r#"<a x="1" x="2"/>"#), ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn bad_entity_rejected() {
        assert!(matches!(parse_err("<a>&nope;</a>"), ParseErrorKind::InvalidEntity(_)));
        assert!(matches!(parse_err("<a>&#xZZ;</a>"), ParseErrorKind::InvalidEntity(_)));
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        assert!(matches!(
            parse_err("<a><!-- bad -- comment --></a>"),
            ParseErrorKind::IllegalSequence(_)
        ));
    }

    #[test]
    fn cdata_end_in_text_rejected() {
        assert!(matches!(parse_err("<a>bad ]]> text</a>"), ParseErrorKind::IllegalSequence(_)));
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(matches!(parse_err(r#"<a x="<"/>"#), ParseErrorKind::IllegalSequence(_)));
    }

    #[test]
    fn bom_is_skipped() {
        let evs = events("\u{FEFF}<a/>");
        assert!(matches!(evs[0], XmlEvent::StartElement { name: "a", .. }));
    }

    #[test]
    fn attribute_values_normalize_literal_whitespace() {
        let evs = events("<a x=\"one\ttwo\nthree\"/>");
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "one two three");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Character references survive normalization.
        let evs = events("<a x=\"one&#10;two\"/>");
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "one\ntwo");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn line_end_normalization() {
        assert_eq!(normalize_line_ends("a\r\nb\rc\nd"), "a\nb\nc\nd");
        assert!(matches!(normalize_line_ends("plain"), Cow::Borrowed(_)));
        let doc = crate::Document::parse("<a>x\r\ny\rz</a>").unwrap();
        assert_eq!(doc.node(doc.root().unwrap()).text, "x\ny\nz");
    }

    #[test]
    fn declaration_parsing() {
        let d = parse_declaration("version=\"1.0\" encoding='UTF-8' standalone=\"yes\"").unwrap();
        assert_eq!(d.version, "1.0");
        assert_eq!(d.encoding.as_deref(), Some("UTF-8"));
        assert_eq!(d.standalone, Some(true));
        assert_eq!(
            parse_declaration("version=\"1.1\"").unwrap(),
            Declaration { version: "1.1".into(), encoding: None, standalone: None }
        );
        assert!(parse_declaration("version=\"2.0\"").is_err());
        assert!(parse_declaration("encoding=\"UTF-8\"").is_err(), "version required");
        assert!(parse_declaration("version=1.0").is_err(), "quotes required");
        assert!(parse_declaration("version=\"1.0\" standalone=\"maybe\"").is_err());
    }

    #[test]
    fn whitespace_between_top_level_markup_ok() {
        let evs = events("  <a>  </a>  ");
        assert!(matches!(evs[0], XmlEvent::StartElement { name: "a", .. }));
        // Whitespace inside the root is reported as text.
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "  "));
    }
}
