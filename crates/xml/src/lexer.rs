//! Low-level input scanning for the XML parser.
//!
//! [`Scanner`] is a byte cursor over the input with line/column
//! tracking and the primitive operations the event parser is written
//! in terms of: peeking, bumping, expecting literals, and reading XML
//! names. It knows nothing about XML grammar beyond name characters.

use crate::error::{ParseError, ParseErrorKind, Position};

/// Byte cursor over UTF-8 input with position tracking.
#[derive(Debug, Clone)]
pub struct Scanner<'a> {
    input: &'a str,
    offset: usize,
    line: u32,
    /// Byte column within the current line, 1-based.
    column: u32,
}

impl<'a> Scanner<'a> {
    /// Start scanning at the beginning of `input`.
    pub fn new(input: &'a str) -> Self {
        Scanner { input, offset: 0, line: 1, column: 1 }
    }

    /// Current position, for error reporting.
    pub fn position(&self) -> Position {
        Position { offset: self.offset, line: self.line, column: self.column }
    }

    /// True when the whole input has been consumed.
    pub fn at_eof(&self) -> bool {
        self.offset >= self.input.len()
    }

    /// The not-yet-consumed remainder of the input.
    pub fn rest(&self) -> &'a str {
        &self.input[self.offset..]
    }

    /// Peek at the next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Peek at the byte `n` positions ahead (0 == next byte).
    pub fn peek_byte_at(&self, n: usize) -> Option<u8> {
        self.input.as_bytes().get(self.offset + n).copied()
    }

    /// Consume and return the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += c.len_utf8() as u32;
        }
        Some(c)
    }

    /// Consume `lit` if the input starts with it.
    pub fn eat(&mut self, lit: &str) -> bool {
        if self.rest().starts_with(lit) {
            for _ in 0..lit.chars().count() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Consume `lit` or fail with `UnexpectedChar`/`UnexpectedEof`.
    pub fn expect(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.eat(lit) {
            Ok(())
        } else {
            Err(self.err_here())
        }
    }

    /// Skip XML whitespace (space, tab, CR, LF); returns how many
    /// characters were skipped.
    pub fn skip_whitespace(&mut self) -> usize {
        let mut n = 0;
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
            n += 1;
        }
        n
    }

    /// Consume input until (not including) the first occurrence of
    /// `delim`, returning the consumed slice. Errors with
    /// `UnexpectedEof` if `delim` never occurs.
    pub fn take_until(&mut self, delim: &str) -> Result<&'a str, ParseError> {
        match self.rest().find(delim) {
            Some(idx) => {
                let start = self.offset;
                let target = self.offset + idx;
                while self.offset < target {
                    self.bump();
                }
                Ok(&self.input[start..target])
            }
            None => Err(ParseError::new(ParseErrorKind::UnexpectedEof, self.position())),
        }
    }

    /// Read an XML `Name` (tag, attribute, or PI target).
    pub fn take_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.offset;
        match self.peek() {
            Some(c) if is_name_start_char(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(ParseError::new(
                    ParseErrorKind::InvalidName(c.to_string()),
                    self.position(),
                ))
            }
            None => return Err(ParseError::new(ParseErrorKind::UnexpectedEof, self.position())),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(&self.input[start..self.offset])
    }

    /// An `UnexpectedChar` (or `UnexpectedEof`) error at the current
    /// position.
    pub fn err_here(&self) -> ParseError {
        match self.peek() {
            Some(c) => ParseError::new(ParseErrorKind::UnexpectedChar(c), self.position()),
            None => ParseError::new(ParseErrorKind::UnexpectedEof, self.position()),
        }
    }
}

/// XML 1.0 `NameStartChar`, restricted to the common ranges (full
/// astral ranges included).
pub fn is_name_start_char(c: char) -> bool {
    matches!(c,
        ':' | '_' | 'A'..='Z' | 'a'..='z'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// XML 1.0 `NameChar`.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c)
        || matches!(c, '-' | '.' | '0'..='9' | '\u{B7}'
            | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_tracks_lines_and_columns() {
        let mut s = Scanner::new("ab\ncd");
        assert_eq!(s.position().line, 1);
        s.bump();
        s.bump();
        s.bump(); // newline
        assert_eq!(s.position().line, 2);
        assert_eq!(s.position().column, 1);
        s.bump();
        assert_eq!(s.position().column, 2);
    }

    #[test]
    fn eat_only_consumes_on_match() {
        let mut s = Scanner::new("<?xml");
        assert!(!s.eat("<!"));
        assert_eq!(s.position().offset, 0);
        assert!(s.eat("<?"));
        assert_eq!(s.rest(), "xml");
    }

    #[test]
    fn take_until_stops_before_delimiter() {
        let mut s = Scanner::new("hello--> tail");
        let got = s.take_until("-->").unwrap();
        assert_eq!(got, "hello");
        assert!(s.eat("-->"));
        assert_eq!(s.rest(), " tail");
    }

    #[test]
    fn take_until_missing_delimiter_is_eof_error() {
        let mut s = Scanner::new("no terminator");
        let err = s.take_until("]]>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn names_accept_xml_identifiers() {
        let mut s = Scanner::new("emp-record_1 rest");
        assert_eq!(s.take_name().unwrap(), "emp-record_1");
        assert_eq!(s.rest(), " rest");
    }

    #[test]
    fn names_reject_leading_digit() {
        let mut s = Scanner::new("1abc");
        assert!(matches!(s.take_name().unwrap_err().kind, ParseErrorKind::InvalidName(_)));
    }

    #[test]
    fn skip_whitespace_counts() {
        let mut s = Scanner::new(" \t\r\nx");
        assert_eq!(s.skip_whitespace(), 4);
        assert_eq!(s.peek(), Some('x'));
    }

    #[test]
    fn multibyte_names_supported() {
        let mut s = Scanner::new("说明>");
        assert_eq!(s.take_name().unwrap(), "说明");
        assert_eq!(s.peek(), Some('>'));
    }
}
