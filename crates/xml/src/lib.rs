//! # sjos-xml
//!
//! A from-scratch XML substrate for the SJOS (Structural Join Order
//! Selection) reproduction: a well-formedness-checking pull parser, an
//! arena document model, and the pre-order **region encoding**
//! (`(start, end, level)`) that structural join algorithms rely on.
//!
//! The scope follows what a native XML database loader needs:
//! elements, attributes, character data (including CDATA), comments,
//! processing instructions, the XML declaration, a tolerated-but-ignored
//! `DOCTYPE`, and the five predefined entities plus numeric character
//! references. DTD-defined entities and namespaces-aware processing are
//! out of scope (Timber's loader in the paper similarly treats names as
//! plain tags).
//!
//! ## Quick tour
//!
//! ```
//! use sjos_xml::Document;
//!
//! let doc = Document::parse("<dept><emp><name>Ada</name></emp></dept>").unwrap();
//! let dept = doc.root().unwrap();
//! let emp = doc.children(dept).next().unwrap();
//! assert!(doc.region(dept).contains(doc.region(emp)));
//! assert_eq!(doc.tag_name(doc.node(emp).tag), "emp");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod document;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod region;
pub mod serialize;
pub mod tag;

pub use builder::DocumentBuilder;
pub use document::{Document, Node, NodeId};
pub use error::{ParseError, ParseErrorKind};
pub use parser::{
    normalize_line_ends, parse_declaration, Attribute, Declaration, EventReader, XmlEvent,
};
pub use region::Region;
pub use tag::{Tag, TagInterner};
