//! Parse errors with source positions.

use std::fmt;

/// Position of an error within the input text (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes from last newline).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The category of well-formedness violation encountered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closed an element opened as `<a>`.
    MismatchedCloseTag {
        /// Tag name of the innermost open element.
        expected: String,
        /// Tag name the close tag actually carried.
        found: String,
    },
    /// A close tag with no matching open tag.
    UnmatchedCloseTag(String),
    /// Document ended while elements were still open.
    UnclosedElement(String),
    /// An element name, attribute name, or PI target was empty/invalid.
    InvalidName(String),
    /// The same attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// Malformed entity or character reference.
    InvalidEntity(String),
    /// Content found outside the single root element.
    ContentOutsideRoot,
    /// More than one root element.
    MultipleRoots,
    /// The document has no root element at all.
    EmptyDocument,
    /// `--` inside a comment, `]]>` in text, and similar lexical rules.
    IllegalSequence(&'static str),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::MismatchedCloseTag { expected, found } => {
                write!(f, "mismatched close tag: expected </{expected}>, found </{found}>")
            }
            ParseErrorKind::UnmatchedCloseTag(name) => {
                write!(f, "close tag </{name}> has no matching open tag")
            }
            ParseErrorKind::UnclosedElement(name) => {
                write!(f, "element <{name}> is never closed")
            }
            ParseErrorKind::InvalidName(name) => write!(f, "invalid XML name {name:?}"),
            ParseErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::InvalidEntity(ent) => write!(f, "invalid entity reference {ent:?}"),
            ParseErrorKind::ContentOutsideRoot => write!(f, "content outside the root element"),
            ParseErrorKind::MultipleRoots => write!(f, "more than one root element"),
            ParseErrorKind::EmptyDocument => write!(f, "document has no root element"),
            ParseErrorKind::IllegalSequence(s) => write!(f, "illegal sequence {s:?}"),
        }
    }
}

/// A well-formedness error, with the position where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where it went wrong.
    pub position: Position,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, position: Position) -> Self {
        ParseError { kind, position }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: {}", self.position, self.kind)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_kind() {
        let err = ParseError::new(
            ParseErrorKind::UnexpectedChar('<'),
            Position { offset: 10, line: 2, column: 3 },
        );
        let s = err.to_string();
        assert!(s.contains("2:3"), "{s}");
        assert!(s.contains("unexpected character"), "{s}");
    }

    #[test]
    fn mismatched_close_tag_names_both_tags() {
        let kind = ParseErrorKind::MismatchedCloseTag { expected: "a".into(), found: "b".into() };
        let s = kind.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"), "{s}");
    }
}
