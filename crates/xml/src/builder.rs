//! Programmatic document construction.
//!
//! [`DocumentBuilder`] assigns region numbers while the tree is being
//! built, so both the parser and the synthetic data generators produce
//! identically-encoded documents without a second numbering pass.

use std::collections::HashMap;

use crate::document::{Document, Node, NodeId};
use crate::region::Region;
use crate::tag::{Tag, TagInterner};

/// Streaming builder: `start_element` / `text` / `end_element` calls
/// mirror the parser's event stream.
///
/// ```
/// use sjos_xml::DocumentBuilder;
/// let mut b = DocumentBuilder::new();
/// b.start_element("a");
/// b.start_element("b");
/// b.text("hello");
/// b.end_element();
/// b.end_element();
/// let doc = b.finish();
/// assert_eq!(doc.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    nodes: Vec<Node>,
    tags: TagInterner,
    by_tag: HashMap<Tag, Vec<NodeId>>,
    /// Stack of open elements; `(node, last_child)`.
    open: Vec<(NodeId, Option<NodeId>)>,
    counter: u32,
}

impl DocumentBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an element with no attributes.
    pub fn start_element(&mut self, name: &str) -> NodeId {
        self.start_element_with_attrs(name, Vec::new())
    }

    /// Open an element carrying `attrs` (name/value pairs).
    pub fn start_element_with_attrs(&mut self, name: &str, attrs: Vec<(String, String)>) -> NodeId {
        let tag = self.tags.intern(name);
        let id = NodeId(self.nodes.len() as u32);
        let level = self.open.len() as u16;
        let parent = self.open.last().map(|(p, _)| *p);
        let start = self.counter;
        self.counter += 1;
        let attributes = attrs.into_iter().map(|(n, v)| (self.tags.intern(&n), v)).collect();
        self.nodes.push(Node {
            tag,
            // `end` is patched in end_element; keep the invariant
            // start < end provisionally.
            region: Region { start, end: start + 1, level },
            parent,
            first_child: None,
            next_sibling: None,
            attributes,
            text: String::new(),
        });
        // Link into the parent's child chain.
        if let Some((parent_id, last_child)) = self.open.last_mut() {
            match last_child {
                Some(prev) => self.nodes[prev.index()].next_sibling = Some(id),
                None => self.nodes[parent_id.index()].first_child = Some(id),
            }
            *last_child = Some(id);
        }
        self.by_tag.entry(tag).or_default().push(id);
        self.open.push((id, None));
        id
    }

    /// Append character data to the innermost open element. Ignored
    /// (after trimming) outside any element.
    pub fn text(&mut self, text: &str) {
        if let Some((id, _)) = self.open.last() {
            self.nodes[id.index()].text.push_str(text);
        }
    }

    /// Close the innermost open element.
    ///
    /// Whitespace-only immediate text of an element that has element
    /// children is dropped: it is indentation from pretty-printed
    /// sources, and keeping it would make every such element carry a
    /// phantom "value" (skewing value digests and distinct-value
    /// statistics).
    ///
    /// # Panics
    /// Panics if no element is open (builder misuse, not input error —
    /// input balance is the parser's job).
    pub fn end_element(&mut self) {
        let (id, last_child) = self.open.pop().expect("end_element with no open element");
        let end = self.counter;
        self.counter += 1;
        let node = &mut self.nodes[id.index()];
        node.region.end = end;
        if last_child.is_some() && node.text.chars().all(char::is_whitespace) {
            node.text.clear();
        }
    }

    /// Convenience: a leaf element with text content.
    pub fn leaf(&mut self, name: &str, text: &str) -> NodeId {
        let id = self.start_element(name);
        self.text(text);
        self.end_element();
        id
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Number of elements created so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if elements are still open.
    pub fn finish(self) -> Document {
        assert!(self.open.is_empty(), "finish() with {} unclosed element(s)", self.open.len());
        Document::from_parts(self.nodes, self.tags, self.by_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_parser_agree_on_regions() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.leaf("c", "x");
        b.end_element();
        b.leaf("d", "y");
        b.end_element();
        let built = b.finish();
        let parsed = crate::Document::parse("<a><b><c>x</c></b><d>y</d></a>").unwrap();
        assert_eq!(built.len(), parsed.len());
        for (bn, pn) in built.nodes().iter().zip(parsed.nodes()) {
            assert_eq!(bn.region, pn.region);
            assert_eq!(built.tag_name(bn.tag), parsed.tag_name(pn.tag));
        }
    }

    #[test]
    fn child_links_follow_document_order() {
        let mut b = DocumentBuilder::new();
        b.start_element("r");
        let c1 = b.leaf("x", "");
        let c2 = b.leaf("y", "");
        let c3 = b.leaf("x", "");
        b.end_element();
        let doc = b.finish();
        let kids: Vec<_> = doc.children(doc.root().unwrap()).collect();
        assert_eq!(kids, vec![c1, c2, c3]);
    }

    #[test]
    fn leaf_regions_are_tight() {
        let mut b = DocumentBuilder::new();
        b.start_element("r");
        let leaf = b.leaf("l", "t");
        b.end_element();
        let doc = b.finish();
        let r = doc.region(leaf);
        assert_eq!(r.width(), 1, "leaf spans exactly one tick");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_elements() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "no open element")]
    fn end_without_start_panics() {
        let mut b = DocumentBuilder::new();
        b.end_element();
    }

    #[test]
    fn indentation_whitespace_is_dropped_for_parents_kept_for_leaves() {
        let doc = crate::Document::parse("<a>\n  <b>  </b>\n  <c>x y</c>\n</a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.node(root).text, "", "parent indentation dropped");
        let kids: Vec<_> = doc.children(root).collect();
        assert_eq!(doc.node(kids[0]).text, "  ", "leaf whitespace is real content");
        assert_eq!(doc.node(kids[1]).text, "x y");
    }

    #[test]
    fn counter_is_shared_between_start_and_end() {
        // <a><b/><c/></a> => a=(0,5) b=(1,2) c=(3,4)
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.leaf("b", "");
        b.leaf("c", "");
        b.end_element();
        let doc = b.finish();
        let regions: Vec<(u32, u32)> =
            doc.nodes().iter().map(|n| (n.region.start, n.region.end)).collect();
        assert_eq!(regions, vec![(0, 5), (1, 2), (3, 4)]);
    }
}
