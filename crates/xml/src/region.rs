//! Pre-order **region encoding** of tree nodes.
//!
//! Structural joins decide ancestor/descendant relationships in O(1) by
//! comparing interval numbers assigned during a single depth-first walk
//! of the document: a counter is bumped at every element start *and*
//! every element end, giving each element a `(start, end)` interval plus
//! its depth (`level`). This is the numbering scheme of Al-Khalifa et
//! al. (ICDE 2002) and the one Timber uses, which the SJOS paper builds
//! on.

/// Interval + depth encoding of one element's position in the document.
///
/// Invariant: `start < end`. For two elements `a`, `d` in the same
/// document, `a` is an ancestor of `d` iff `a.start < d.start` and
/// `d.end < a.end`; intervals are either disjoint or nested, never
/// partially overlapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Counter value at the element's start tag. Document order ==
    /// ascending `start`.
    pub start: u32,
    /// Counter value at the element's end tag.
    pub end: u32,
    /// Depth of the element; the root element is level 0.
    pub level: u16,
}

impl Region {
    /// Create a region, checking the interval invariant in debug builds.
    #[inline]
    pub fn new(start: u32, end: u32, level: u16) -> Self {
        debug_assert!(start < end, "region start {start} must precede end {end}");
        Region { start, end, level }
    }

    /// True iff `self` is a proper ancestor of `descendant`.
    #[inline]
    pub fn contains(&self, descendant: Region) -> bool {
        self.start < descendant.start && descendant.end < self.end
    }

    /// True iff `self` is the parent of `child` (containment plus the
    /// levels differ by exactly one).
    #[inline]
    pub fn is_parent_of(&self, child: Region) -> bool {
        self.level + 1 == child.level && self.contains(child)
    }

    /// True iff `self` precedes `other` in document order and the two
    /// intervals are disjoint (`self` closed before `other` opened).
    #[inline]
    pub fn precedes(&self, other: Region) -> bool {
        self.end < other.start
    }

    /// Number of counter ticks spanned; an upper bound on `2 *
    /// (descendant count + 1)` and a cheap proxy for subtree size.
    #[inline]
    pub fn width(&self) -> u32 {
        self.end - self.start
    }
}

impl PartialOrd for Region {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Regions order by document order (`start`), with `end` as a
/// tie-breaker for robustness (ties cannot occur within one document).
impl Ord for Region {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.start, self.end).cmp(&(other.start, other.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(start: u32, end: u32, level: u16) -> Region {
        Region::new(start, end, level)
    }

    #[test]
    fn containment_is_strict_nesting() {
        let outer = r(0, 9, 0);
        let inner = r(1, 4, 1);
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert!(!outer.contains(outer), "a node is not its own ancestor");
    }

    #[test]
    fn parenthood_requires_adjacent_levels() {
        let grandparent = r(0, 9, 0);
        let parent = r(1, 8, 1);
        let child = r(2, 5, 2);
        assert!(parent.is_parent_of(child));
        assert!(grandparent.contains(child));
        assert!(!grandparent.is_parent_of(child));
    }

    #[test]
    fn disjoint_regions_precede() {
        let a = r(0, 3, 1);
        let b = r(4, 7, 1);
        assert!(a.precedes(b));
        assert!(!b.precedes(a));
        assert!(!a.contains(b) && !b.contains(a));
    }

    #[test]
    fn document_order_is_start_order() {
        let mut v = [r(4, 7, 1), r(0, 9, 0), r(1, 3, 1)];
        v.sort();
        assert_eq!(v.iter().map(|x| x.start).collect::<Vec<_>>(), vec![0, 1, 4]);
    }

    #[test]
    fn width_reflects_subtree_size() {
        // <a><b/><c/></a>: a=(0,5), b=(1,2), c=(3,4)
        let a = r(0, 5, 0);
        let b = r(1, 2, 1);
        assert_eq!(a.width(), 5);
        assert_eq!(b.width(), 1);
    }
}
