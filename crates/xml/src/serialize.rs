//! Document -> XML text serialization.
//!
//! Round-tripping matters for the data generators (documents are
//! written to disk once and re-parsed by loading benchmarks) and for
//! debugging; `Document::parse(serialize(doc))` reproduces an
//! identical document (modulo comments/PIs, which the model drops).

use std::fmt::Write as _;

use crate::document::{Document, NodeId};

/// Serialize the whole document as XML text (no declaration).
pub fn to_xml(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    if let Some(root) = doc.root() {
        write_element(doc, root, &mut out);
    }
    out
}

/// Serialize with two-space indentation, one element per line. Only
/// safe for data where text content is not whitespace-sensitive.
pub fn to_xml_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 24);
    if let Some(root) = doc.root() {
        write_element_pretty(doc, root, 0, &mut out);
    }
    out
}

fn write_element(doc: &Document, id: NodeId, out: &mut String) {
    let node = doc.node(id);
    let name = doc.tag_name(node.tag);
    out.push('<');
    out.push_str(name);
    for (attr, value) in &node.attributes {
        let _ = write!(out, " {}=\"{}\"", doc.tag_name(*attr), escape_attr(value));
    }
    let has_children = node.first_child.is_some();
    if !has_children && node.text.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    out.push_str(&escape_text(&node.text));
    for child in doc.children(id) {
        write_element(doc, child, out);
    }
    let _ = write!(out, "</{name}>");
}

fn write_element_pretty(doc: &Document, id: NodeId, depth: usize, out: &mut String) {
    let node = doc.node(id);
    let name = doc.tag_name(node.tag);
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(name);
    for (attr, value) in &node.attributes {
        let _ = write!(out, " {}=\"{}\"", doc.tag_name(*attr), escape_attr(value));
    }
    let has_children = node.first_child.is_some();
    if !has_children {
        if node.text.is_empty() {
            out.push_str("/>\n");
        } else {
            let _ = writeln!(out, ">{}</{name}>", escape_text(&node.text));
        }
        return;
    }
    out.push_str(">\n");
    if !node.text.is_empty() {
        for _ in 0..=depth {
            out.push_str("  ");
        }
        out.push_str(&escape_text(&node.text));
        out.push('\n');
    }
    for child in doc.children(id) {
        write_element_pretty(doc, child, depth + 1, out);
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = writeln!(out, "</{name}>");
}

/// Escape character data (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted output.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    #[test]
    fn roundtrip_preserves_structure_and_regions() {
        let src = "<a x=\"1\"><b>t&amp;u</b><c/><b><d/></b></a>";
        let doc = Document::parse(src).unwrap();
        let text = to_xml(&doc);
        let doc2 = Document::parse(&text).unwrap();
        assert_eq!(doc.len(), doc2.len());
        for (n1, n2) in doc.nodes().iter().zip(doc2.nodes()) {
            assert_eq!(n1.region, n2.region);
            assert_eq!(doc.tag_name(n1.tag), doc2.tag_name(n2.tag));
            assert_eq!(n1.text, n2.text);
        }
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = Document::parse("<a><b/></a>").unwrap();
        assert_eq!(to_xml(&doc), "<a><b/></a>");
    }

    #[test]
    fn special_chars_escaped() {
        let doc = Document::parse("<a q=\"&quot;x&quot;\">1 &lt; 2 &amp; 3</a>").unwrap();
        let text = to_xml(&doc);
        assert!(text.contains("&lt; 2 &amp; 3"), "{text}");
        assert!(text.contains("&quot;x&quot;"), "{text}");
        // And it must re-parse to the same content.
        let doc2 = Document::parse(&text).unwrap();
        assert_eq!(doc2.node(doc2.root().unwrap()).text, "1 < 2 & 3");
    }

    #[test]
    fn pretty_output_reparses_equivalently() {
        let doc = Document::parse("<a><b><c/></b><d/></a>").unwrap();
        let pretty = to_xml_pretty(&doc);
        assert!(pretty.contains("\n"), "{pretty}");
        let doc2 = Document::parse(&pretty).unwrap();
        assert_eq!(doc.len(), doc2.len());
    }
}
