//! Fixed-width element records and their page layout.
//!
//! Each element is stored as a 28-byte record carrying everything the
//! structural join operators need: the region encoding, the interned
//! tag, the arena node id (to build result tuples), and a 64-bit
//! digest of the element's text value (for index-side equality
//! predicates).
//!
//! Page layout: an 8-byte header (`u16` record count, rest reserved)
//! followed by densely packed records.

use sjos_xml::{NodeId, Region, Tag};

use crate::page::{Page, PAGE_SIZE};

/// Bytes per encoded record.
pub const RECORD_SIZE: usize = 28;
/// Bytes reserved at the start of each data page.
pub const PAGE_HEADER_SIZE: usize = 8;
/// Records that fit on one page.
pub const RECORDS_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER_SIZE) / RECORD_SIZE;

/// One stored element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementRecord {
    /// Arena id of the element in the source document.
    pub node: NodeId,
    /// Region (interval + level) encoding.
    pub region: Region,
    /// Interned tag.
    pub tag: Tag,
    /// FNV-1a digest of the element's immediate text (0 for empty).
    pub value_hash: u64,
}

impl ElementRecord {
    /// Encode into `page` at `slot`.
    ///
    /// # Panics
    /// Panics if `slot >= RECORDS_PER_PAGE`.
    pub fn encode(&self, page: &mut Page, slot: usize) {
        assert!(slot < RECORDS_PER_PAGE, "slot {slot} out of range");
        let off = PAGE_HEADER_SIZE + slot * RECORD_SIZE;
        page.write_u32(off, self.node.0);
        page.write_u32(off + 4, self.region.start);
        page.write_u32(off + 8, self.region.end);
        page.write_u16(off + 12, self.region.level);
        // 2 bytes padding at off+14.
        page.write_u32(off + 16, self.tag.0);
        page.write_u64(off + 20, self.value_hash);
    }

    /// Decode from `page` at `slot`.
    pub fn decode(page: &Page, slot: usize) -> ElementRecord {
        assert!(slot < RECORDS_PER_PAGE, "slot {slot} out of range");
        let off = PAGE_HEADER_SIZE + slot * RECORD_SIZE;
        ElementRecord {
            node: NodeId(page.read_u32(off)),
            region: Region {
                start: page.read_u32(off + 4),
                end: page.read_u32(off + 8),
                level: page.read_u16(off + 12),
            },
            tag: Tag(page.read_u32(off + 16)),
            value_hash: page.read_u64(off + 20),
        }
    }
}

/// Number of records currently on `page`.
pub fn page_record_count(page: &Page) -> usize {
    page.read_u16(0) as usize
}

/// Set the record count of `page`.
pub fn set_page_record_count(page: &mut Page, n: usize) {
    debug_assert!(n <= RECORDS_PER_PAGE);
    page.write_u16(0, n as u16);
}

/// FNV-1a hash of a text value; the digest stored in records. Empty
/// text hashes to 0 so "no value" is cheap to test.
pub fn value_digest(text: &str) -> u64 {
    if text.is_empty() {
        return 0;
    }
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    // Avoid colliding with the "empty" sentinel.
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u32) -> ElementRecord {
        ElementRecord {
            node: NodeId(i),
            region: Region { start: i * 2, end: i * 2 + 1, level: (i % 7) as u16 },
            tag: Tag(i % 5),
            value_hash: u64::from(i) * 101,
        }
    }

    #[test]
    fn record_roundtrip() {
        let mut page = Page::zeroed();
        let rec = sample(42);
        rec.encode(&mut page, 0);
        assert_eq!(ElementRecord::decode(&page, 0), rec);
    }

    #[test]
    fn page_holds_advertised_count() {
        let mut page = Page::zeroed();
        for slot in 0..RECORDS_PER_PAGE {
            sample(slot as u32).encode(&mut page, slot);
        }
        set_page_record_count(&mut page, RECORDS_PER_PAGE);
        assert_eq!(page_record_count(&page), RECORDS_PER_PAGE);
        for slot in 0..RECORDS_PER_PAGE {
            assert_eq!(ElementRecord::decode(&page, slot), sample(slot as u32));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overflow_slot_panics() {
        let mut page = Page::zeroed();
        sample(0).encode(&mut page, RECORDS_PER_PAGE);
    }

    #[test]
    fn record_layout_has_no_overlap() {
        let mut page = Page::zeroed();
        let a = sample(1);
        let b = sample(2);
        a.encode(&mut page, 0);
        b.encode(&mut page, 1);
        assert_eq!(ElementRecord::decode(&page, 0), a);
        assert_eq!(ElementRecord::decode(&page, 1), b);
    }

    #[test]
    fn digest_of_empty_is_zero_and_stable() {
        assert_eq!(value_digest(""), 0);
        assert_eq!(value_digest("abc"), value_digest("abc"));
        assert_ne!(value_digest("abc"), value_digest("abd"));
        assert_ne!(value_digest("x"), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn capacity_math_is_consistent() {
        assert!(PAGE_HEADER_SIZE + RECORDS_PER_PAGE * RECORD_SIZE <= PAGE_SIZE);
        assert!(RECORDS_PER_PAGE > 200, "28-byte records should pack densely");
    }
}
