//! Shared I/O and buffer-pool counters.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-thread attribution tap. While installed, every counter bump
    /// on *any* [`IoStats`] instance performed by this thread is
    /// mirrored into the tapped instance, letting a session account
    /// its own traffic even though the pool and disk counters are
    /// shared engine-wide.
    static TAP: RefCell<Option<Arc<IoStats>>> = const { RefCell::new(None) };
}

#[inline]
fn tap_bump(field: impl Fn(&IoStats) -> &AtomicU64, n: u64) {
    TAP.with(|t| {
        if let Some(tap) = t.borrow().as_ref() {
            field(tap).fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// RAII guard that mirrors this thread's I/O counter bumps into a
/// session-local [`IoStats`] for the guard's lifetime.
///
/// The engine's pool and disk counters are global `Arc<IoStats>`
/// shared by every session; under concurrency their deltas commingle
/// traffic from all queries. A tap splits attribution by thread: while
/// the guard is alive, each bump the current thread performs is also
/// applied to the tapped instance (a direct `fetch_add`, never a
/// recursive tap, so installing a tap cannot loop). Taps nest — the
/// previous tap is restored on drop.
///
/// The guard is deliberately `!Send`: it describes *this* thread.
#[derive(Debug)]
pub struct IoTap {
    prev: Option<Arc<IoStats>>,
    _not_send: PhantomData<*const ()>,
}

impl IoTap {
    /// Install `stats` as the current thread's attribution tap.
    pub fn install(stats: Arc<IoStats>) -> IoTap {
        let prev = TAP.with(|t| t.borrow_mut().replace(stats));
        IoTap { prev, _not_send: PhantomData }
    }

    /// The tap currently installed on this thread, if any.
    ///
    /// Taps are thread-local, so work moved onto worker threads
    /// escapes the session's attribution unless each worker
    /// re-installs the session tap. A parallel executor captures
    /// `IoTap::current()` on the session thread and calls
    /// [`IoTap::install`] with the returned handle inside every
    /// worker, so per-session counters keep partitioning the global
    /// ones exactly even when page reads happen off-thread.
    pub fn current() -> Option<Arc<IoStats>> {
        TAP.with(|t| t.borrow().clone())
    }
}

impl Drop for IoTap {
    fn drop(&mut self) {
        TAP.with(|t| *t.borrow_mut() = self.prev.take());
    }
}

/// Monotonic counters describing storage traffic. Cheap to share
/// (`Arc<IoStats>`) and to snapshot; the executor reports deltas of
/// these around each query.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages served from the buffer pool without disk traffic.
    pub buffer_hits: AtomicU64,
    /// Pages that had to be read from disk.
    pub disk_reads: AtomicU64,
    /// Pages written back to disk (dirty evictions + flushes).
    pub disk_writes: AtomicU64,
    /// Frames evicted to make room.
    pub evictions: AtomicU64,
    /// Records decoded from pages (logical record reads).
    pub record_reads: AtomicU64,
    /// Page-read attempts beyond the first (buffer-pool retry loop).
    pub read_retries: AtomicU64,
    /// Page-write/allocate attempts beyond the first (buffer-pool
    /// retry loop over the write path).
    pub write_retries: AtomicU64,
    /// Temp pages written by spilling sorts.
    pub spill_page_writes: AtomicU64,
    /// Temp pages read back by spilling sorts (cache hits included).
    pub spill_page_reads: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Page requests satisfied from the buffer pool.
    pub buffer_hits: u64,
    /// Pages fetched from the disk image.
    pub disk_reads: u64,
    /// Pages written back to the disk image.
    pub disk_writes: u64,
    /// Frames evicted to make room for a fetch.
    pub evictions: u64,
    /// Records decoded from pages (logical record reads).
    pub record_reads: u64,
    /// Page-read attempts beyond the first (retries on faults).
    pub read_retries: u64,
    /// Page-write/allocate attempts beyond the first (retries on
    /// faults).
    pub write_retries: u64,
    /// Temp pages written by spilling sorts.
    pub spill_page_writes: u64,
    /// Temp pages read back by spilling sorts.
    pub spill_page_reads: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            record_reads: self.record_reads.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            spill_page_writes: self.spill_page_writes.load(Ordering::Relaxed),
            spill_page_reads: self.spill_page_reads.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.buffer_hits, 1);
    }

    #[inline]
    pub(crate) fn bump_read(&self) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.disk_reads, 1);
    }

    #[inline]
    pub(crate) fn bump_write(&self) {
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.disk_writes, 1);
    }

    #[inline]
    pub(crate) fn bump_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.evictions, 1);
    }

    /// Record `n` logical record reads.
    #[inline]
    pub fn bump_records(&self, n: u64) {
        self.record_reads.fetch_add(n, Ordering::Relaxed);
        tap_bump(|s| &s.record_reads, n);
    }

    #[inline]
    pub(crate) fn bump_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.read_retries, 1);
    }

    #[inline]
    pub(crate) fn bump_write_retry(&self) {
        self.write_retries.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.write_retries, 1);
    }

    #[inline]
    pub(crate) fn bump_spill_write(&self) {
        self.spill_page_writes.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.spill_page_writes, 1);
    }

    #[inline]
    pub(crate) fn bump_spill_read(&self) {
        self.spill_page_reads.fetch_add(1, Ordering::Relaxed);
        tap_bump(|s| &s.spill_page_reads, 1);
    }
}

impl IoSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            record_reads: self.record_reads.saturating_sub(earlier.record_reads),
            read_retries: self.read_retries.saturating_sub(earlier.read_retries),
            write_retries: self.write_retries.saturating_sub(earlier.write_retries),
            spill_page_writes: self.spill_page_writes.saturating_sub(earlier.spill_page_writes),
            spill_page_reads: self.spill_page_reads.saturating_sub(earlier.spill_page_reads),
        }
    }

    /// Total physical page transfers (reads + writes).
    pub fn physical_io(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_captures_counters() {
        let s = IoStats::new();
        s.bump_hit();
        s.bump_hit();
        s.bump_read();
        s.bump_records(10);
        let snap = s.snapshot();
        assert_eq!(snap.buffer_hits, 2);
        assert_eq!(snap.disk_reads, 1);
        assert_eq!(snap.record_reads, 10);
    }

    #[test]
    fn tap_mirrors_bumps_for_the_installing_thread_only() {
        let global = Arc::new(IoStats::new());
        let session = Arc::new(IoStats::new());
        {
            let _tap = IoTap::install(Arc::clone(&session));
            global.bump_hit();
            global.bump_records(5);
            // A different thread's bumps are not attributed to us.
            let g = Arc::clone(&global);
            std::thread::spawn(move || g.bump_read()).join().unwrap();
        }
        // Tap dropped: further bumps stay global-only.
        global.bump_hit();
        let g = global.snapshot();
        let s = session.snapshot();
        assert_eq!(g.buffer_hits, 2);
        assert_eq!(g.disk_reads, 1);
        assert_eq!(g.record_reads, 5);
        assert_eq!(s.buffer_hits, 1, "only the tapped-thread hit");
        assert_eq!(s.disk_reads, 0, "other thread's read not attributed");
        assert_eq!(s.record_reads, 5);
    }

    #[test]
    fn current_exposes_the_installed_tap_for_worker_propagation() {
        assert!(IoTap::current().is_none());
        let global = Arc::new(IoStats::new());
        let session = Arc::new(IoStats::new());
        {
            let _tap = IoTap::install(Arc::clone(&session));
            let handle = IoTap::current().expect("tap installed");
            assert!(Arc::ptr_eq(&handle, &session));
            // The captured handle re-installs on a worker thread, so
            // the worker's bumps land in the session counters.
            let g = Arc::clone(&global);
            std::thread::spawn(move || {
                let _worker_tap = IoTap::install(handle);
                g.bump_read();
                g.bump_records(7);
            })
            .join()
            .unwrap();
        }
        assert!(IoTap::current().is_none(), "tap uninstalled on drop");
        assert_eq!(session.snapshot().disk_reads, 1);
        assert_eq!(session.snapshot().record_reads, 7);
        assert_eq!(global.snapshot().disk_reads, 1);
    }

    #[test]
    fn taps_nest_and_restore_on_drop() {
        let global = Arc::new(IoStats::new());
        let outer = Arc::new(IoStats::new());
        let inner = Arc::new(IoStats::new());
        let _t1 = IoTap::install(Arc::clone(&outer));
        {
            let _t2 = IoTap::install(Arc::clone(&inner));
            global.bump_read();
        }
        global.bump_read();
        assert_eq!(inner.snapshot().disk_reads, 1);
        assert_eq!(outer.snapshot().disk_reads, 1, "outer tap restored after inner drop");
        assert_eq!(global.snapshot().disk_reads, 2);
    }

    #[test]
    fn since_computes_deltas() {
        let s = IoStats::new();
        s.bump_read();
        let a = s.snapshot();
        s.bump_read();
        s.bump_write();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.disk_reads, 1);
        assert_eq!(d.disk_writes, 1);
        assert_eq!(d.physical_io(), 2);
    }
}
