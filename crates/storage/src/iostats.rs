//! Shared I/O and buffer-pool counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing storage traffic. Cheap to share
/// (`Arc<IoStats>`) and to snapshot; the executor reports deltas of
/// these around each query.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages served from the buffer pool without disk traffic.
    pub buffer_hits: AtomicU64,
    /// Pages that had to be read from disk.
    pub disk_reads: AtomicU64,
    /// Pages written back to disk (dirty evictions + flushes).
    pub disk_writes: AtomicU64,
    /// Frames evicted to make room.
    pub evictions: AtomicU64,
    /// Records decoded from pages (logical record reads).
    pub record_reads: AtomicU64,
    /// Page-read attempts beyond the first (buffer-pool retry loop).
    pub read_retries: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Page requests satisfied from the buffer pool.
    pub buffer_hits: u64,
    /// Pages fetched from the disk image.
    pub disk_reads: u64,
    /// Pages written back to the disk image.
    pub disk_writes: u64,
    /// Frames evicted to make room for a fetch.
    pub evictions: u64,
    /// Records decoded from pages (logical record reads).
    pub record_reads: u64,
    /// Page-read attempts beyond the first (retries on faults).
    pub read_retries: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            record_reads: self.record_reads.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn bump_read(&self) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn bump_write(&self) {
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn bump_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` logical record reads.
    #[inline]
    pub fn bump_records(&self, n: u64) {
        self.record_reads.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn bump_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            record_reads: self.record_reads.saturating_sub(earlier.record_reads),
            read_retries: self.read_retries.saturating_sub(earlier.read_retries),
        }
    }

    /// Total physical page transfers (reads + writes).
    pub fn physical_io(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_captures_counters() {
        let s = IoStats::new();
        s.bump_hit();
        s.bump_hit();
        s.bump_read();
        s.bump_records(10);
        let snap = s.snapshot();
        assert_eq!(snap.buffer_hits, 2);
        assert_eq!(snap.disk_reads, 1);
        assert_eq!(snap.record_reads, 10);
    }

    #[test]
    fn since_computes_deltas() {
        let s = IoStats::new();
        s.bump_read();
        let a = s.snapshot();
        s.bump_read();
        s.bump_write();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.disk_reads, 1);
        assert_eq!(d.disk_writes, 1);
        assert_eq!(d.physical_io(), 2);
    }
}
