//! Temp-page segment: the allocate-write-read-free page lifecycle
//! behind spill-to-disk external sorts.
//!
//! A [`SpillSegment`] hands out scratch pages on the store's shared
//! disk, recycling freed pages through an internal free list (the
//! [`crate::disk::DiskManager`] allocator only ever grows, so without
//! recycling every spilling query would leak disk space). All traffic
//! flows through the [`BufferPool`]: writes use the pool's retried,
//! checksum-stamping [`BufferPool::write_through`] path and reads its
//! verified [`BufferPool::fetch`], so injected write *and* read faults
//! are absorbed — or surfaced as typed errors — exactly like heap and
//! index traffic.
//!
//! Leak discipline: callers hold temp pages only through the RAII
//! [`TempPages`] handle, which returns every page to the free list on
//! drop — including the error and cancellation paths, where the handle
//! unwinds with the operator that owns it. [`SpillSegment::live_pages`]
//! is the observable invariant: it must return to zero after every
//! query, and tests plus the executor's debug assertions check that it
//! does.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::buffer::{BufferPool, PageRef};
use crate::error::StorageError;
use crate::page::{Page, PageId};

/// Allocator and lifecycle accountant for spill temp pages.
#[derive(Debug, Default)]
pub struct SpillSegment {
    /// Freed temp pages awaiting reuse.
    free: Mutex<Vec<PageId>>,
    /// Pages currently held by live [`TempPages`] handles.
    live: AtomicU64,
    /// Cumulative allocations served (recycled pages included).
    allocated: AtomicU64,
    /// Cumulative pages returned.
    freed: AtomicU64,
    /// Fresh disk pages ever claimed from the allocator (the segment's
    /// on-disk footprint high-water mark).
    grown: AtomicU64,
}

impl SpillSegment {
    /// An empty segment (no pages claimed yet).
    pub fn new() -> SpillSegment {
        SpillSegment::default()
    }

    /// Claim one temp page: a recycled one when available, otherwise a
    /// fresh page from the disk via the pool's retried allocator.
    pub fn allocate(&self, pool: &BufferPool) -> Result<PageId, StorageError> {
        let recycled = self.free.lock().pop();
        let id = match recycled {
            Some(id) => id,
            None => {
                let id = pool.allocate()?;
                self.grown.fetch_add(1, Ordering::Relaxed);
                id
            }
        };
        self.live.fetch_add(1, Ordering::Relaxed);
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Write a temp page through the pool (checksum-stamped, write
    /// faults retried).
    pub fn write(&self, pool: &BufferPool, id: PageId, page: &Page) -> Result<(), StorageError> {
        pool.write_through(id, page)?;
        pool.stats().bump_spill_write();
        Ok(())
    }

    /// Read a temp page back (checksum-verified, read faults retried).
    pub fn read<'p>(&self, pool: &'p BufferPool, id: PageId) -> Result<PageRef<'p>, StorageError> {
        let page = pool.fetch(id)?;
        pool.stats().bump_spill_read();
        Ok(page)
    }

    /// Return one page to the free list. Called by [`TempPages::drop`];
    /// callers never free pages directly.
    fn release(&self, id: PageId) {
        let prev = self.live.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "spill page {id:?} freed more often than allocated");
        self.freed.fetch_add(1, Ordering::Relaxed);
        self.free.lock().push(id);
    }

    /// Temp pages currently held by live handles. Zero whenever no
    /// query is mid-spill — the leak-freedom invariant.
    pub fn live_pages(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Cumulative allocations served (recycled pages included).
    pub fn allocated_pages(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Cumulative pages returned to the free list.
    pub fn freed_pages(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// Fresh disk pages ever claimed (on-disk footprint high-water
    /// mark; recycling keeps this far below `allocated_pages` under
    /// repeated spills).
    pub fn grown_pages(&self) -> u64 {
        self.grown.load(Ordering::Relaxed)
    }
}

/// RAII ownership of a set of temp pages. Every page allocated through
/// the handle is returned to its segment when the handle drops —
/// normal completion, early error, and cancellation all funnel through
/// the same destructor, so spill pages cannot leak.
#[derive(Debug)]
pub struct TempPages<'s> {
    segment: &'s SpillSegment,
    pages: Vec<PageId>,
}

impl<'s> TempPages<'s> {
    /// An empty handle on `segment`.
    pub fn new(segment: &'s SpillSegment) -> TempPages<'s> {
        TempPages { segment, pages: Vec::new() }
    }

    /// Allocate one more temp page into this handle.
    pub fn allocate(&mut self, pool: &BufferPool) -> Result<PageId, StorageError> {
        let id = self.segment.allocate(pool)?;
        self.pages.push(id);
        Ok(id)
    }

    /// The pages held, in allocation order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of pages held.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no page is held.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

impl Drop for TempPages<'_> {
    fn drop(&mut self) {
        for id in self.pages.drain(..) {
            self.segment.release(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::iostats::IoStats;
    use std::sync::Arc;

    fn pool() -> BufferPool {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        BufferPool::new(disk, stats, 8)
    }

    #[test]
    fn allocate_write_read_free_roundtrip() {
        let pool = pool();
        let seg = SpillSegment::new();
        let mut held = TempPages::new(&seg);
        let id = held.allocate(&pool).unwrap();
        let mut p = Page::zeroed();
        p.write_u64(64, 0xBEEF);
        seg.write(&pool, id, &p).unwrap();
        {
            let back = seg.read(&pool, id).unwrap();
            assert_eq!(back.read_u64(64), 0xBEEF);
            assert!(back.verify_checksum(), "spill writes stamp checksums");
        }
        assert_eq!(seg.live_pages(), 1);
        drop(held);
        assert_eq!(seg.live_pages(), 0, "drop returns every page");
        let snap = pool.stats().snapshot();
        assert_eq!(snap.spill_page_writes, 1);
        assert_eq!(snap.spill_page_reads, 1);
    }

    #[test]
    fn freed_pages_are_recycled_not_regrown() {
        let pool = pool();
        let seg = SpillSegment::new();
        let first = {
            let mut held = TempPages::new(&seg);
            held.allocate(&pool).unwrap()
        };
        let mut held = TempPages::new(&seg);
        let second = held.allocate(&pool).unwrap();
        assert_eq!(first, second, "the freed page is reused");
        assert_eq!(seg.grown_pages(), 1, "the disk grew exactly once");
        assert_eq!(seg.allocated_pages(), 2);
    }

    #[test]
    fn early_drop_on_the_error_path_frees_everything() {
        let pool = pool();
        let seg = SpillSegment::new();
        let result: Result<(), StorageError> = (|| {
            let mut held = TempPages::new(&seg);
            for _ in 0..5 {
                held.allocate(&pool)?;
            }
            Err(StorageError::PoolExhausted { capacity: 0 }) // simulate mid-spill failure
        })();
        assert!(result.is_err());
        assert_eq!(seg.live_pages(), 0, "unwinding the handle freed all pages");
        assert_eq!(seg.freed_pages(), 5);
    }

    #[test]
    fn recycled_pages_accept_fresh_content() {
        let pool = pool();
        let seg = SpillSegment::new();
        let mut p = Page::zeroed();
        for round in 0..3u64 {
            let mut held = TempPages::new(&seg);
            let id = held.allocate(&pool).unwrap();
            p.write_u64(100, round);
            seg.write(&pool, id, &p).unwrap();
            assert_eq!(seg.read(&pool, id).unwrap().read_u64(100), round);
        }
        assert_eq!(seg.grown_pages(), 1);
        assert_eq!(seg.live_pages(), 0);
    }
}
