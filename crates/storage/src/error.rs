//! Typed storage-layer errors.
//!
//! Every fallible path in this crate — disk I/O, buffer-pool fetches,
//! page-checksum verification — reports a [`StorageError`] instead of
//! panicking. The split between *transient* faults (worth retrying:
//! see [`crate::buffer::RetryPolicy`]) and *permanent* ones (logic or
//! corruption errors that will not heal) drives the buffer pool's
//! retry loop.

use std::fmt;

use crate::page::PageId;

/// Anything the storage layer can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id outside the allocated range was read or written —
    /// always a caller bug, never retried.
    Unallocated {
        /// The offending page.
        id: PageId,
        /// What was attempted (`"read"` / `"write"`).
        op: &'static str,
    },
    /// An operating-system I/O error (file-backed disks only).
    Io {
        /// The page involved, when known.
        page: Option<PageId>,
        /// The `std::io` error kind.
        kind: std::io::ErrorKind,
        /// The rendered OS error.
        detail: String,
    },
    /// A fault-injection harness made this read or write fail (see
    /// [`crate::fault::FaultPlan::transient_read`] and
    /// [`crate::fault::FaultPlan::transient_write`]).
    InjectedIo {
        /// The page whose I/O was failed.
        page: PageId,
    },
    /// A read returned fewer bytes than a full page.
    ShortRead {
        /// The page whose read came up short.
        page: PageId,
    },
    /// A write persisted fewer bytes than a full page (torn write).
    ShortWrite {
        /// The page whose write came up short.
        page: PageId,
    },
    /// A page image failed checksum verification on load.
    ChecksumMismatch {
        /// The corrupt page.
        page: PageId,
    },
    /// The buffer pool's retry budget ran out; `last` names the fault
    /// observed on the final attempt.
    RetriesExhausted {
        /// Attempts performed (including the first).
        attempts: u32,
        /// The error seen on the last attempt.
        last: Box<StorageError>,
    },
    /// Every buffer-pool frame is pinned — no victim available.
    PoolExhausted {
        /// Number of frames in the pool.
        capacity: usize,
    },
}

impl StorageError {
    /// Whether a retry of the failed operation could plausibly
    /// succeed. Injected faults, short reads, OS errors, and checksum
    /// mismatches are retried (a transient corruption heals on
    /// re-read; a sticky one exhausts the budget and surfaces as
    /// [`StorageError::RetriesExhausted`]). Unallocated accesses and
    /// pool exhaustion are deterministic caller-visible states.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::InjectedIo { .. }
            | StorageError::ShortRead { .. }
            | StorageError::ShortWrite { .. }
            | StorageError::Io { .. }
            | StorageError::ChecksumMismatch { .. } => true,
            StorageError::Unallocated { .. }
            | StorageError::RetriesExhausted { .. }
            | StorageError::PoolExhausted { .. } => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Unallocated { id, op } => {
                write!(f, "{op} of unallocated page {id:?}")
            }
            StorageError::Io { page, kind, detail } => match page {
                Some(p) => write!(f, "i/o error on page {p:?} ({kind:?}): {detail}"),
                None => write!(f, "i/o error ({kind:?}): {detail}"),
            },
            StorageError::InjectedIo { page } => {
                write!(f, "injected transient read failure on page {page:?}")
            }
            StorageError::ShortRead { page } => {
                write!(f, "short read of page {page:?}")
            }
            StorageError::ShortWrite { page } => {
                write!(f, "short write of page {page:?}")
            }
            StorageError::ChecksumMismatch { page } => {
                write!(f, "checksum mismatch on page {page:?}")
            }
            StorageError::RetriesExhausted { attempts, last } => {
                write!(f, "read failed after {attempts} attempts: {last}")
            }
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io { page: None, kind: e.kind(), detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(StorageError::InjectedIo { page: PageId(1) }.is_transient());
        assert!(StorageError::ShortRead { page: PageId(1) }.is_transient());
        assert!(StorageError::ShortWrite { page: PageId(1) }.is_transient());
        assert!(StorageError::ChecksumMismatch { page: PageId(1) }.is_transient());
        assert!(!StorageError::Unallocated { id: PageId(1), op: "read" }.is_transient());
        assert!(!StorageError::PoolExhausted { capacity: 4 }.is_transient());
        let exhausted = StorageError::RetriesExhausted {
            attempts: 4,
            last: Box::new(StorageError::ChecksumMismatch { page: PageId(7) }),
        };
        assert!(!exhausted.is_transient());
        assert!(exhausted.to_string().contains("page PageId(7)"));
    }

    #[test]
    fn display_names_the_page() {
        let e = StorageError::InjectedIo { page: PageId(3) };
        assert!(e.to_string().contains("PageId(3)"));
    }
}
