//! Deterministic fault injection for the storage layer.
//!
//! [`FaultyDisk`] wraps any [`DiskManager`] and, once armed, makes a
//! seeded fraction of physical page reads fail: transiently (an
//! [`StorageError::InjectedIo`] that succeeds on retry), with a short
//! read, or with a corrupted page image that the buffer pool's
//! checksum verification catches. A *sticky* corruption mode poisons
//! chosen pages permanently, modeling unrecoverable media damage.
//!
//! Everything is driven by [`FaultPlan`] — a seed plus per-fault
//! probabilities — so a chaos run is exactly reproducible from its
//! plan. The RNG is a hand-rolled SplitMix64 (the workspace carries
//! no random-number dependency).
//!
//! The write and allocate paths are injected too: a write can fail
//! transiently ([`StorageError::InjectedIo`]), tear
//! ([`StorageError::ShortWrite`]), or silently persist a corrupted
//! image that only a later checksum-verified read exposes; an
//! allocation can fail transiently. Stores still arm the disk only
//! *after* bulk load (see [`crate::store::XmlStore::load_faulty`]), so
//! write faults land exactly where queries write at runtime — the
//! spill path of external sorts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::DiskManager;
use crate::error::StorageError;
use crate::page::{Page, PageId};

/// SplitMix64: tiny, seedable, and statistically fine for picking
/// which I/Os fail.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One stateless hash draw in `[0, 1)` for (seed, page) pairs —
/// sticky faults must not depend on read order.
fn page_draw(seed: u64, page: PageId, salt: u64) -> f64 {
    let mut rng = SplitMix64::new(seed ^ salt ^ (u64::from(page.0) << 32 | u64::from(page.0)));
    rng.next_f64()
}

/// A seeded schedule of injected storage faults.
///
/// Probabilities are per *physical I/O call* (read, write, or
/// allocate); retries draw afresh, so a transient fault usually heals
/// within the buffer pool's retry budget while sticky corruption
/// never does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; two runs with the same plan see the same faults in
    /// the same order.
    pub seed: u64,
    /// Probability a read fails with [`StorageError::InjectedIo`].
    pub transient_read: f64,
    /// Probability a read fails with [`StorageError::ShortRead`].
    pub short_read: f64,
    /// Probability a read returns a bit-flipped page image (caught by
    /// checksum verification; heals on re-read).
    pub corrupt_read: f64,
    /// Per-page probability the page is *permanently* corrupt: every
    /// read of it returns a damaged image, exhausting the retry
    /// budget with [`StorageError::ChecksumMismatch`] as the final
    /// fault.
    pub sticky_corrupt: f64,
    /// Probability a write fails with [`StorageError::InjectedIo`]
    /// (nothing is persisted; a retry draws afresh).
    pub transient_write: f64,
    /// Probability a write fails with [`StorageError::ShortWrite`]
    /// (nothing is persisted; a retry draws afresh).
    pub short_write: f64,
    /// Probability a write *silently* persists a bit-flipped image —
    /// the write reports success and the damage surfaces only when a
    /// checksum-verified read later loads the page.
    pub corrupt_write: f64,
    /// Probability a page allocation fails transiently.
    pub transient_allocate: f64,
}

impl FaultPlan {
    /// No faults at all (the disk behaves normally even when armed).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            transient_read: 0.0,
            short_read: 0.0,
            corrupt_read: 0.0,
            sticky_corrupt: 0.0,
            transient_write: 0.0,
            short_write: 0.0,
            corrupt_write: 0.0,
            transient_allocate: 0.0,
        }
    }

    /// Mild weather: occasional transient failures and corrupt reads
    /// that the retry policy should fully absorb. Writes and
    /// allocations (the spill path) see the same mild fault rates.
    pub fn light(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_read: 0.05,
            short_read: 0.02,
            corrupt_read: 0.02,
            sticky_corrupt: 0.0,
            transient_write: 0.05,
            short_write: 0.02,
            corrupt_write: 0.0,
            transient_allocate: 0.02,
        }
    }

    /// Hostile weather: frequent transient faults plus a sprinkling
    /// of permanently corrupt pages — some queries must fail, and
    /// they must fail with a typed error. Writes fail (and silently
    /// corrupt) often enough that spilling queries exercise their
    /// whole error surface.
    pub fn heavy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_read: 0.25,
            short_read: 0.10,
            corrupt_read: 0.10,
            sticky_corrupt: 0.02,
            transient_write: 0.25,
            short_write: 0.10,
            corrupt_write: 0.05,
            transient_allocate: 0.10,
        }
    }
}

/// A [`DiskManager`] decorator that injects the faults of a
/// [`FaultPlan`] into the read, write, and allocate paths.
pub struct FaultyDisk {
    inner: Arc<dyn DiskManager>,
    plan: Mutex<FaultPlan>,
    rng: Mutex<SplitMix64>,
    armed: AtomicBool,
    injected: AtomicU64,
}

impl FaultyDisk {
    /// Wrap `inner`; starts *disarmed* (no faults) so the load path
    /// runs clean.
    pub fn new(inner: Arc<dyn DiskManager>, plan: FaultPlan) -> FaultyDisk {
        FaultyDisk {
            inner,
            rng: Mutex::new(SplitMix64::new(plan.seed)),
            plan: Mutex::new(plan),
            armed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        }
    }

    /// Start injecting faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop injecting faults (reads pass through again).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Swap in a new plan and reset the RNG and fault counter — lets
    /// a chaos harness reuse one loaded store across many seeds.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.rng.lock() = SplitMix64::new(plan.seed);
        *self.plan.lock() = plan;
        self.injected.store(0, Ordering::SeqCst);
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        *self.plan.lock()
    }

    /// Number of faults injected since the last [`FaultyDisk::set_plan`].
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn bump(&self) {
        self.injected.fetch_add(1, Ordering::SeqCst);
    }

    /// Flip one payload byte, deterministically per page, leaving the
    /// stamped checksum in place so verification fails.
    fn corrupt(page: &mut Page, id: PageId) {
        // Stay clear of the 8-byte header so the damage hits record
        // bytes, the checksum stays stale, and `page_record_count`
        // cannot be driven out of range.
        let off = 8 + (id.index() * 37) % (crate::page::PAGE_SIZE - 8);
        page.data[off] ^= 0x5A;
    }
}

impl DiskManager for FaultyDisk {
    fn read_page(&self, id: PageId) -> Result<Box<Page>, StorageError> {
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.read_page(id);
        }
        let plan = *self.plan.lock();
        // Sticky corruption is a property of the page, not the read.
        if plan.sticky_corrupt > 0.0 && page_draw(plan.seed, id, 0xC0FFEE) < plan.sticky_corrupt {
            let mut page = self.inner.read_page(id)?;
            Self::corrupt(&mut page, id);
            self.bump();
            return Ok(page);
        }
        let draw = self.rng.lock().next_f64();
        if draw < plan.transient_read {
            self.bump();
            return Err(StorageError::InjectedIo { page: id });
        }
        if draw < plan.transient_read + plan.short_read {
            self.bump();
            return Err(StorageError::ShortRead { page: id });
        }
        if draw < plan.transient_read + plan.short_read + plan.corrupt_read {
            let mut page = self.inner.read_page(id)?;
            Self::corrupt(&mut page, id);
            self.bump();
            return Ok(page);
        }
        self.inner.read_page(id)
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<(), StorageError> {
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.write_page(id, page);
        }
        let plan = *self.plan.lock();
        let draw = self.rng.lock().next_f64();
        if draw < plan.transient_write {
            self.bump();
            return Err(StorageError::InjectedIo { page: id });
        }
        if draw < plan.transient_write + plan.short_write {
            self.bump();
            return Err(StorageError::ShortWrite { page: id });
        }
        if draw < plan.transient_write + plan.short_write + plan.corrupt_write {
            // The treacherous case: the write "succeeds" but the image
            // that lands is damaged. Only a later verified read can
            // tell.
            let mut damaged = page.clone();
            Self::corrupt(&mut damaged, id);
            self.bump();
            return self.inner.write_page(id, &damaged);
        }
        self.inner.write_page(id, page)
    }

    fn allocate_page(&self) -> Result<PageId, StorageError> {
        if self.armed.load(Ordering::SeqCst) {
            let p = self.plan.lock().transient_allocate;
            if p > 0.0 && self.rng.lock().next_f64() < p {
                self.bump();
                return Err(StorageError::Io {
                    page: None,
                    kind: std::io::ErrorKind::Other,
                    detail: "injected transient allocation failure".to_string(),
                });
            }
        }
        self.inner.allocate_page()
    }

    fn num_pages(&self) -> usize {
        self.inner.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::iostats::IoStats;

    fn stamped_disk(npages: usize) -> Arc<InMemoryDisk> {
        let disk = Arc::new(InMemoryDisk::new(Arc::new(IoStats::new())));
        for i in 0..npages {
            let id = disk.allocate_page().unwrap();
            let mut p = Page::zeroed();
            p.write_u64(64, i as u64);
            p.stamp_checksum();
            disk.write_page(id, &p).unwrap();
        }
        disk
    }

    #[test]
    fn disarmed_disk_is_transparent() {
        let faulty = FaultyDisk::new(stamped_disk(4), FaultPlan::heavy(1));
        for i in 0..4u32 {
            let p = faulty.read_page(PageId(i)).unwrap();
            assert!(p.verify_checksum());
            assert_eq!(p.read_u64(64), u64::from(i));
        }
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn armed_disk_injects_deterministically() {
        let run = |seed: u64| {
            let faulty = FaultyDisk::new(stamped_disk(8), FaultPlan::heavy(seed));
            faulty.arm();
            let mut outcomes = Vec::new();
            for _ in 0..4 {
                for i in 0..8u32 {
                    outcomes.push(match faulty.read_page(PageId(i)) {
                        Ok(p) => {
                            if p.verify_checksum() {
                                'o'
                            } else {
                                'c'
                            }
                        }
                        Err(StorageError::InjectedIo { .. }) => 't',
                        Err(StorageError::ShortRead { .. }) => 's',
                        Err(e) => panic!("unexpected error {e}"),
                    });
                }
            }
            outcomes
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seeds diverge");
        assert!(run(7).iter().any(|&o| o != 'o'), "heavy plan injects something");
    }

    #[test]
    fn sticky_pages_fail_every_read() {
        // Find a seed/page combination that is sticky, then confirm
        // every read of it is corrupt while the plan is armed.
        let plan = FaultPlan { sticky_corrupt: 0.3, ..FaultPlan::none() };
        let faulty = FaultyDisk::new(stamped_disk(16), FaultPlan { seed: 11, ..plan });
        faulty.arm();
        let mut sticky = None;
        for i in 0..16u32 {
            let p = faulty.read_page(PageId(i)).unwrap();
            if !p.verify_checksum() {
                sticky = Some(PageId(i));
                break;
            }
        }
        let sticky = sticky.expect("with p=0.3 over 16 pages some page is sticky");
        for _ in 0..5 {
            let p = faulty.read_page(sticky).unwrap();
            assert!(!p.verify_checksum(), "sticky corruption never heals");
        }
    }

    #[test]
    fn set_plan_rearms_reproducibly() {
        let faulty = FaultyDisk::new(stamped_disk(4), FaultPlan::light(3));
        faulty.arm();
        let seq = |f: &FaultyDisk| {
            (0..32).map(|i| f.read_page(PageId(i % 4)).is_ok()).collect::<Vec<_>>()
        };
        let a = seq(&faulty);
        faulty.set_plan(FaultPlan::light(3));
        let b = seq(&faulty);
        assert_eq!(a, b, "set_plan resets the RNG stream");
        assert!(faulty.injected() > 0 || a.iter().all(|&ok| ok));
    }

    #[test]
    fn armed_disk_injects_write_faults_deterministically() {
        let run = |seed: u64| {
            let disk = stamped_disk(8);
            let plan = FaultPlan {
                seed,
                transient_write: 0.3,
                short_write: 0.15,
                corrupt_write: 0.1,
                ..FaultPlan::none()
            };
            let faulty = FaultyDisk::new(disk, plan);
            faulty.arm();
            let mut p = Page::zeroed();
            p.write_u64(64, 7);
            p.stamp_checksum();
            let mut outcomes = Vec::new();
            for _ in 0..4 {
                for i in 0..8u32 {
                    outcomes.push(match faulty.write_page(PageId(i), &p) {
                        Ok(()) => 'o',
                        Err(StorageError::InjectedIo { .. }) => 't',
                        Err(StorageError::ShortWrite { .. }) => 's',
                        Err(e) => panic!("unexpected error {e}"),
                    });
                }
            }
            outcomes
        };
        assert_eq!(run(13), run(13), "same seed, same write-fault sequence");
        assert_ne!(run(13), run(14), "different seeds diverge");
        assert!(run(13).iter().any(|&o| o != 'o'), "the plan injects something");
    }

    #[test]
    fn corrupt_write_persists_a_damaged_image_silently() {
        let disk = stamped_disk(1);
        let faulty = FaultyDisk::new(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            FaultPlan { seed: 5, corrupt_write: 1.0, ..FaultPlan::none() },
        );
        faulty.arm();
        let mut p = Page::zeroed();
        p.write_u64(64, 99);
        p.stamp_checksum();
        faulty.write_page(PageId(0), &p).expect("corrupt writes report success");
        assert_eq!(faulty.injected(), 1);
        let back = disk.read_page(PageId(0)).unwrap();
        assert!(!back.verify_checksum(), "the persisted image is damaged");
    }

    #[test]
    fn allocate_faults_are_transient_and_typed() {
        let faulty = FaultyDisk::new(
            stamped_disk(0),
            FaultPlan { seed: 3, transient_allocate: 1.0, ..FaultPlan::none() },
        );
        faulty.arm();
        let err = faulty.allocate_page().unwrap_err();
        assert!(err.is_transient(), "allocation faults must be retryable: {err}");
        faulty.disarm();
        assert!(faulty.allocate_page().is_ok());
    }

    #[test]
    fn corruption_spares_the_page_header() {
        let disk = stamped_disk(1);
        let clean = disk.read_page(PageId(0)).unwrap();
        let faulty =
            FaultyDisk::new(disk, FaultPlan { seed: 1, corrupt_read: 1.0, ..FaultPlan::none() });
        faulty.arm();
        let bad = faulty.read_page(PageId(0)).unwrap();
        assert!(!bad.verify_checksum());
        assert_eq!(bad.data[..8], clean.data[..8], "header untouched");
    }
}
