//! LRU buffer pool with pin/unpin and dirty-page write-back.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::DiskManager;
use crate::iostats::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};

/// Default pool capacity: 16 MiB, the SHORE buffer-pool size used in
/// the paper's experiments.
pub const DEFAULT_CAPACITY_BYTES: usize = 16 * 1024 * 1024;

struct Frame {
    page_id: Option<PageId>,
    data: Arc<Page>,
    pin: u32,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    tick: u64,
}

/// A fixed-capacity page cache in front of a [`DiskManager`].
///
/// Reads pin a frame and hand out a cheap [`PageRef`] (an `Arc` clone
/// of the page image); dropping the ref unpins. Misses evict the
/// least-recently-used unpinned frame, writing it back first if dirty.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    stats: Arc<IoStats>,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Pool with room for `capacity_pages` pages.
    pub fn new(disk: Arc<dyn DiskManager>, stats: Arc<IoStats>, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity_pages)
            .map(|_| Frame {
                page_id: None,
                data: Arc::from(Page::zeroed()),
                pin: 0,
                dirty: false,
                last_used: 0,
            })
            .collect();
        BufferPool {
            disk,
            stats,
            inner: Mutex::new(Inner { frames, page_table: HashMap::new(), tick: 0 }),
        }
    }

    /// Pool with the paper's 16 MiB capacity.
    pub fn with_default_capacity(disk: Arc<dyn DiskManager>, stats: Arc<IoStats>) -> Self {
        Self::new(disk, stats, DEFAULT_CAPACITY_BYTES / PAGE_SIZE)
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Fetch (and pin) page `id`.
    ///
    /// # Panics
    /// Panics if every frame is pinned (pool exhausted) or the page
    /// was never allocated on the disk.
    pub fn fetch(&self, id: PageId) -> PageRef<'_> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&slot) = inner.page_table.get(&id) {
            self.stats.bump_hit();
            let frame = &mut inner.frames[slot];
            frame.pin += 1;
            frame.last_used = tick;
            let data = Arc::clone(&frame.data);
            return PageRef { pool: self, slot, data };
        }
        // Miss: pick a victim (empty frame preferred, else LRU unpinned).
        let slot = self.pick_victim(&inner);
        let victim = &mut inner.frames[slot];
        if let Some(old_id) = victim.page_id.take() {
            if victim.dirty {
                self.disk.write_page(old_id, &victim.data);
                victim.dirty = false;
            }
            self.stats.bump_eviction();
            inner.page_table.remove(&old_id);
        }
        // Drop the lock while "doing I/O"? The in-memory disk is fast
        // and the pool is coarse-grained by design; hold the lock.
        let data: Arc<Page> = Arc::from(self.disk.read_page(id));
        let frame = &mut inner.frames[slot];
        frame.page_id = Some(id);
        frame.data = Arc::clone(&data);
        frame.pin = 1;
        frame.dirty = false;
        frame.last_used = tick;
        inner.page_table.insert(id, slot);
        PageRef { pool: self, slot, data }
    }

    fn pick_victim(&self, inner: &Inner) -> usize {
        let mut best: Option<(usize, u64)> = None;
        for (i, f) in inner.frames.iter().enumerate() {
            if f.page_id.is_none() {
                return i;
            }
            if f.pin == 0 {
                match best {
                    Some((_, lu)) if lu <= f.last_used => {}
                    _ => best = Some((i, f.last_used)),
                }
            }
        }
        best.map(|(i, _)| i).expect("buffer pool exhausted: every frame is pinned")
    }

    /// Mutate page `id` in place through the pool, marking it dirty.
    /// The write reaches disk on eviction or [`BufferPool::flush_all`].
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        // Pin via fetch to pull the page in, then mutate under the lock.
        let slot = {
            let page_ref = self.fetch(id);
            page_ref.slot
            // page_ref drops here, unpinning; we re-lock below. The
            // frame cannot be evicted between: eviction requires the
            // same lock we immediately retake, and even if another
            // thread raced us, we re-check the page id.
        };
        let mut inner = self.inner.lock();
        let frame = &mut inner.frames[slot];
        if frame.page_id != Some(id) {
            drop(inner);
            // Lost the race; retry (rare, test workloads are single
            // threaded).
            return self.with_page_mut(id, f);
        }
        frame.dirty = true;
        let page = Arc::make_mut(&mut frame.data);
        f(page)
    }

    /// Write every dirty frame back to disk.
    pub fn flush_all(&self) {
        let mut inner = self.inner.lock();
        for frame in &mut inner.frames {
            if let (Some(id), true) = (frame.page_id, frame.dirty) {
                self.disk.write_page(id, &frame.data);
                frame.dirty = false;
            }
        }
    }

    fn unpin(&self, slot: usize) {
        let mut inner = self.inner.lock();
        let frame = &mut inner.frames[slot];
        debug_assert!(frame.pin > 0, "unpin of unpinned frame");
        frame.pin = frame.pin.saturating_sub(1);
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        let resident = inner.page_table.len();
        write!(f, "BufferPool({} frames, {} resident)", inner.frames.len(), resident)
    }
}

/// A pinned page. Derefs to [`Page`]; unpins on drop. The data is an
/// `Arc` snapshot, so reads need no lock.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    slot: usize,
    data: Arc<Page>,
}

impl Deref for PageRef<'_> {
    type Target = Page;

    fn deref(&self) -> &Page {
        &self.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn setup(capacity: usize, npages: usize) -> (Arc<InMemoryDisk>, BufferPool, Vec<PageId>) {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let ids: Vec<PageId> = (0..npages)
            .map(|i| {
                let id = disk.allocate_page();
                let mut p = Page::zeroed();
                p.write_u32(0, i as u32);
                disk.write_page(id, &p);
                id
            })
            .collect();
        // Reset write counts from setup by taking a fresh stats arc?
        // Keep it simple: tests below compare deltas.
        let pool = BufferPool::new(disk.clone(), stats, capacity);
        (disk, pool, ids)
    }

    #[test]
    fn hit_after_miss() {
        let (_d, pool, ids) = setup(4, 2);
        let before = pool.stats().snapshot();
        {
            let p = pool.fetch(ids[0]);
            assert_eq!(p.read_u32(0), 0);
        }
        {
            let p = pool.fetch(ids[0]);
            assert_eq!(p.read_u32(0), 0);
        }
        let delta = pool.stats().snapshot().since(&before);
        assert_eq!(delta.disk_reads, 1, "second fetch must hit");
        assert_eq!(delta.buffer_hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (_d, pool, ids) = setup(2, 3);
        pool.fetch(ids[0]);
        pool.fetch(ids[1]);
        pool.fetch(ids[0]); // 0 is now most recent
        let before = pool.stats().snapshot();
        pool.fetch(ids[2]); // evicts 1
        pool.fetch(ids[0]); // still resident
        let delta = pool.stats().snapshot().since(&before);
        assert_eq!(delta.disk_reads, 1);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.buffer_hits, 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (_d, pool, ids) = setup(2, 3);
        let _held = pool.fetch(ids[0]); // keep pinned
        pool.fetch(ids[1]);
        pool.fetch(ids[2]); // must evict 1, not pinned 0
        let p = pool.fetch(ids[0]);
        assert_eq!(p.read_u32(0), 0);
        let snap = pool.stats().snapshot();
        // ids[0] read exactly once from disk in this test.
        assert_eq!(snap.buffer_hits, 1, "re-fetch of the pinned page must be a hit");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausting_pool_panics() {
        let (_d, pool, ids) = setup(2, 3);
        let _a = pool.fetch(ids[0]);
        let _b = pool.fetch(ids[1]);
        let _c = pool.fetch(ids[2]);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (disk, pool, ids) = setup(1, 2);
        pool.with_page_mut(ids[0], |p| p.write_u32(0, 777));
        pool.fetch(ids[1]); // evicts dirty page 0
        let back = disk.read_page(ids[0]);
        assert_eq!(back.read_u32(0), 777);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (disk, pool, ids) = setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.write_u32(8, 123));
        pool.flush_all();
        assert_eq!(disk.read_page(ids[0]).read_u32(8), 123);
    }

    #[test]
    fn mutation_visible_to_subsequent_fetch() {
        let (_disk, pool, ids) = setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.write_u32(4, 9));
        let p = pool.fetch(ids[0]);
        assert_eq!(p.read_u32(4), 9);
    }
}
