//! LRU buffer pool with pin/unpin, dirty-page write-back, checksum
//! verification on load, and retry-with-backoff over transient read,
//! write, and allocate faults.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::disk::DiskManager;
use crate::error::StorageError;
use crate::iostats::IoStats;
use crate::page::{Page, PageId, PAGE_SIZE};

/// Default pool capacity: 16 MiB, the SHORE buffer-pool size used in
/// the paper's experiments.
pub const DEFAULT_CAPACITY_BYTES: usize = 16 * 1024 * 1024;

/// How the pool reacts to transient I/O faults (see
/// [`StorageError::is_transient`]): up to `max_attempts` reads,
/// writes, or allocations, with exponential backoff starting at
/// `backoff` between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts per fetch (first try included). Must be
    /// at least 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per further retry.
    /// `Duration::ZERO` disables sleeping (what chaos tests use).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff: Duration::from_micros(100) }
    }
}

impl RetryPolicy {
    /// Retrying policy that never sleeps — for tests that hammer
    /// thousands of injected faults.
    pub fn no_backoff(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts: max_attempts.max(1), backoff: Duration::ZERO }
    }
}

struct Frame {
    page_id: Option<PageId>,
    data: Arc<Page>,
    pin: u32,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    tick: u64,
}

/// A fixed-capacity page cache in front of a [`DiskManager`].
///
/// Reads pin a frame and hand out a cheap [`PageRef`] (an `Arc` clone
/// of the page image); dropping the ref unpins. Misses evict the
/// least-recently-used unpinned frame, writing it back first if dirty.
/// Every page loaded from disk is checksum-verified; transient
/// failures (injected faults, OS errors, corrupt images) are retried
/// under the pool's [`RetryPolicy`] before surfacing as a typed
/// [`StorageError`].
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    stats: Arc<IoStats>,
    retry: RetryPolicy,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Pool with room for `capacity_pages` pages and the default
    /// retry policy.
    pub fn new(disk: Arc<dyn DiskManager>, stats: Arc<IoStats>, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity_pages)
            .map(|_| Frame {
                page_id: None,
                data: Arc::from(Page::zeroed()),
                pin: 0,
                dirty: false,
                last_used: 0,
            })
            .collect();
        BufferPool {
            disk,
            stats,
            retry: RetryPolicy::default(),
            inner: Mutex::new(Inner { frames, page_table: HashMap::new(), tick: 0 }),
        }
    }

    /// Pool with the paper's 16 MiB capacity.
    pub fn with_default_capacity(disk: Arc<dyn DiskManager>, stats: Arc<IoStats>) -> Self {
        Self::new(disk, stats, DEFAULT_CAPACITY_BYTES / PAGE_SIZE)
    }

    /// Override the retry policy (builder style).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Run one fallible disk operation under the pool's retry policy:
    /// transient faults are retried (with exponential backoff and a
    /// `bump` per extra attempt), permanent faults return immediately,
    /// and an exhausted budget surfaces as
    /// [`StorageError::RetriesExhausted`] naming the last fault.
    fn with_retries<T>(
        &self,
        bump: impl Fn(&IoStats),
        op: impl Fn() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut last: Option<StorageError> = None;
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                bump(&self.stats);
                if !self.retry.backoff.is_zero() {
                    std::thread::sleep(self.retry.backoff * 2u32.saturating_pow(attempt - 1));
                }
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(StorageError::RetriesExhausted {
            attempts: self.retry.max_attempts.max(1),
            last: Box::new(last.expect("loop ran at least once and only exits Ok/permanent early")),
        })
    }

    /// One checksum-verified read from the disk, retried per the
    /// pool's policy.
    fn read_verified(&self, id: PageId) -> Result<Box<Page>, StorageError> {
        self.with_retries(IoStats::bump_retry, || {
            self.disk.read_page(id).and_then(|page| {
                if page.verify_checksum() {
                    Ok(page)
                } else {
                    Err(StorageError::ChecksumMismatch { page: id })
                }
            })
        })
    }

    /// Allocate a fresh page on the underlying disk, retrying
    /// transient allocation faults per the pool's policy — the
    /// allocate-side twin of [`BufferPool::fetch`]'s read retries.
    pub fn allocate(&self) -> Result<PageId, StorageError> {
        self.with_retries(IoStats::bump_write_retry, || self.disk.allocate_page())
    }

    /// Stamp `page`'s checksum and write it straight through to disk,
    /// retrying transient write faults per the pool's policy. If the
    /// page is cached, the frame is updated in place (and marked
    /// clean) so later fetches cannot observe a stale image. This is
    /// the write path of the spill segment
    /// ([`crate::spill::SpillSegment`]).
    pub fn write_through(&self, id: PageId, page: &Page) -> Result<(), StorageError> {
        let mut stamped = page.clone();
        stamped.stamp_checksum();
        self.with_retries(IoStats::bump_write_retry, || self.disk.write_page(id, &stamped))?;
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.page_table.get(&id) {
            let frame = &mut inner.frames[slot];
            frame.data = Arc::new(stamped.clone());
            frame.dirty = false;
        }
        Ok(())
    }

    /// Fetch (and pin) page `id`.
    pub fn fetch(&self, id: PageId) -> Result<PageRef<'_>, StorageError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&slot) = inner.page_table.get(&id) {
            self.stats.bump_hit();
            let frame = &mut inner.frames[slot];
            frame.pin += 1;
            frame.last_used = tick;
            let data = Arc::clone(&frame.data);
            return Ok(PageRef { pool: self, slot, data });
        }
        // Miss: pick a victim (empty frame preferred, else LRU unpinned).
        let slot = self.pick_victim(&inner)?;
        // Evict before the read so the frame is free even if the read
        // fails; a failed read then leaves an empty frame, not a
        // stale mapping.
        if let Some(old_id) = inner.frames[slot].page_id.take() {
            if inner.frames[slot].dirty {
                let data = Arc::clone(&inner.frames[slot].data);
                self.write_back(old_id, &data)?;
                inner.frames[slot].dirty = false;
            }
            self.stats.bump_eviction();
            inner.page_table.remove(&old_id);
        }
        // The in-memory disk is fast and the pool is coarse-grained
        // by design; hold the lock across the (possibly retried) read.
        let data: Arc<Page> = Arc::from(self.read_verified(id)?);
        let frame = &mut inner.frames[slot];
        frame.page_id = Some(id);
        frame.data = Arc::clone(&data);
        frame.pin = 1;
        frame.dirty = false;
        frame.last_used = tick;
        inner.page_table.insert(id, slot);
        Ok(PageRef { pool: self, slot, data })
    }

    /// Stamp the page's checksum and write it to disk — the single
    /// write-back path, so every image the disk holds verifies.
    /// Transient write faults are retried like reads.
    fn write_back(&self, id: PageId, data: &Arc<Page>) -> Result<(), StorageError> {
        let mut page = (**data).clone();
        page.stamp_checksum();
        self.with_retries(IoStats::bump_write_retry, || self.disk.write_page(id, &page))
    }

    fn pick_victim(&self, inner: &Inner) -> Result<usize, StorageError> {
        let mut best: Option<(usize, u64)> = None;
        for (i, f) in inner.frames.iter().enumerate() {
            if f.page_id.is_none() {
                return Ok(i);
            }
            if f.pin == 0 {
                match best {
                    Some((_, lu)) if lu <= f.last_used => {}
                    _ => best = Some((i, f.last_used)),
                }
            }
        }
        best.map(|(i, _)| i).ok_or(StorageError::PoolExhausted { capacity: inner.frames.len() })
    }

    /// Mutate page `id` in place through the pool, marking it dirty.
    /// The write reaches disk on eviction or [`BufferPool::flush_all`].
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, StorageError> {
        // Pin via fetch to pull the page in, then mutate under the lock.
        let slot = {
            let page_ref = self.fetch(id)?;
            page_ref.slot
            // page_ref drops here, unpinning; we re-lock below. The
            // frame cannot be evicted between: eviction requires the
            // same lock we immediately retake, and even if another
            // thread raced us, we re-check the page id.
        };
        let mut inner = self.inner.lock();
        let frame = &mut inner.frames[slot];
        if frame.page_id != Some(id) {
            drop(inner);
            // Lost the race; retry (rare, test workloads are single
            // threaded).
            return self.with_page_mut(id, f);
        }
        frame.dirty = true;
        let page = Arc::make_mut(&mut frame.data);
        Ok(f(page))
    }

    /// Write every dirty frame back to disk.
    pub fn flush_all(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        for i in 0..inner.frames.len() {
            if let (Some(id), true) = (inner.frames[i].page_id, inner.frames[i].dirty) {
                let data = Arc::clone(&inner.frames[i].data);
                self.write_back(id, &data)?;
                inner.frames[i].dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every unpinned cached page (flushing dirty ones first),
    /// returning how many frames were released. Pinned frames stay
    /// resident. Chaos harnesses call this between runs so a re-armed
    /// fault plan sees physical reads again instead of pure cache
    /// hits.
    pub fn reset_cache(&self) -> Result<usize, StorageError> {
        let mut inner = self.inner.lock();
        let mut dropped = 0;
        for i in 0..inner.frames.len() {
            if inner.frames[i].pin > 0 {
                continue;
            }
            if let Some(id) = inner.frames[i].page_id {
                if inner.frames[i].dirty {
                    let data = Arc::clone(&inner.frames[i].data);
                    self.write_back(id, &data)?;
                }
                inner.page_table.remove(&id);
                let frame = &mut inner.frames[i];
                frame.page_id = None;
                frame.dirty = false;
                frame.data = Arc::from(Page::zeroed());
                frame.last_used = 0;
                dropped += 1;
            }
        }
        Ok(dropped)
    }

    /// Number of currently pinned frames (test/diagnostic hook for
    /// pin-count accounting).
    pub fn pinned_frames(&self) -> usize {
        self.inner.lock().frames.iter().filter(|f| f.pin > 0).count()
    }

    fn unpin(&self, slot: usize) {
        let mut inner = self.inner.lock();
        let frame = &mut inner.frames[slot];
        debug_assert!(frame.pin > 0, "unpin of unpinned frame");
        frame.pin = frame.pin.saturating_sub(1);
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        let resident = inner.page_table.len();
        write!(f, "BufferPool({} frames, {} resident)", inner.frames.len(), resident)
    }
}

/// A pinned page. Derefs to [`Page`]; unpins on drop. The data is an
/// `Arc` snapshot, so reads need no lock.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    slot: usize,
    data: Arc<Page>,
}

impl std::fmt::Debug for PageRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageRef(slot {})", self.slot)
    }
}

impl Deref for PageRef<'_> {
    type Target = Page;

    fn deref(&self) -> &Page {
        &self.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::fault::{FaultPlan, FaultyDisk};

    fn setup(capacity: usize, npages: usize) -> (Arc<InMemoryDisk>, BufferPool, Vec<PageId>) {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let ids: Vec<PageId> = (0..npages)
            .map(|i| {
                let id = disk.allocate_page().unwrap();
                let mut p = Page::zeroed();
                p.write_u32(0, i as u32);
                disk.write_page(id, &p).unwrap();
                id
            })
            .collect();
        // Tests below compare stat deltas, so setup traffic is fine.
        let pool = BufferPool::new(disk.clone(), stats, capacity);
        (disk, pool, ids)
    }

    /// Same fixture but behind an armed [`FaultyDisk`], with a
    /// no-sleep retry policy.
    fn faulty_setup(
        capacity: usize,
        npages: usize,
        plan: FaultPlan,
    ) -> (Arc<FaultyDisk>, BufferPool, Vec<PageId>) {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let ids: Vec<PageId> = (0..npages)
            .map(|i| {
                let id = disk.allocate_page().unwrap();
                let mut p = Page::zeroed();
                p.write_u32(0, i as u32);
                p.stamp_checksum();
                disk.write_page(id, &p).unwrap();
                id
            })
            .collect();
        let faulty = Arc::new(FaultyDisk::new(disk, plan));
        faulty.arm();
        let pool = BufferPool::new(faulty.clone() as Arc<dyn DiskManager>, stats, capacity)
            .with_retry_policy(RetryPolicy::no_backoff(4));
        (faulty, pool, ids)
    }

    #[test]
    fn hit_after_miss() {
        let (_d, pool, ids) = setup(4, 2);
        let before = pool.stats().snapshot();
        {
            let p = pool.fetch(ids[0]).unwrap();
            assert_eq!(p.read_u32(0), 0);
        }
        {
            let p = pool.fetch(ids[0]).unwrap();
            assert_eq!(p.read_u32(0), 0);
        }
        let delta = pool.stats().snapshot().since(&before);
        assert_eq!(delta.disk_reads, 1, "second fetch must hit");
        assert_eq!(delta.buffer_hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (_d, pool, ids) = setup(2, 3);
        pool.fetch(ids[0]).unwrap();
        pool.fetch(ids[1]).unwrap();
        pool.fetch(ids[0]).unwrap(); // 0 is now most recent
        let before = pool.stats().snapshot();
        pool.fetch(ids[2]).unwrap(); // evicts 1
        pool.fetch(ids[0]).unwrap(); // still resident
        let delta = pool.stats().snapshot().since(&before);
        assert_eq!(delta.disk_reads, 1);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.buffer_hits, 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (_d, pool, ids) = setup(2, 3);
        let _held = pool.fetch(ids[0]).unwrap(); // keep pinned
        pool.fetch(ids[1]).unwrap();
        pool.fetch(ids[2]).unwrap(); // must evict 1, not pinned 0
        let p = pool.fetch(ids[0]).unwrap();
        assert_eq!(p.read_u32(0), 0);
        let snap = pool.stats().snapshot();
        // ids[0] read exactly once from disk in this test.
        assert_eq!(snap.buffer_hits, 1, "re-fetch of the pinned page must be a hit");
    }

    #[test]
    fn exhausting_pool_is_a_typed_error() {
        let (_d, pool, ids) = setup(2, 3);
        let _a = pool.fetch(ids[0]).unwrap();
        let _b = pool.fetch(ids[1]).unwrap();
        match pool.fetch(ids[2]) {
            Err(StorageError::PoolExhausted { capacity: 2 }) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
        // Dropping a pin frees a frame and the fetch succeeds.
        drop(_a);
        assert!(pool.fetch(ids[2]).is_ok());
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (disk, pool, ids) = setup(1, 2);
        pool.with_page_mut(ids[0], |p| p.write_u32(0, 777)).unwrap();
        pool.fetch(ids[1]).unwrap(); // evicts dirty page 0
        let back = disk.read_page(ids[0]).unwrap();
        assert_eq!(back.read_u32(0), 777);
        assert!(back.verify_checksum(), "write-back stamps the checksum");
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (disk, pool, ids) = setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.write_u32(8, 123)).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(disk.read_page(ids[0]).unwrap().read_u32(8), 123);
    }

    #[test]
    fn mutation_visible_to_subsequent_fetch() {
        let (_disk, pool, ids) = setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.write_u32(12, 9)).unwrap();
        let p = pool.fetch(ids[0]).unwrap();
        assert_eq!(p.read_u32(12), 9);
    }

    #[test]
    fn reset_cache_forces_physical_rereads() {
        let (_d, pool, ids) = setup(4, 3);
        for id in &ids {
            pool.fetch(*id).unwrap();
        }
        let before = pool.stats().snapshot();
        assert_eq!(pool.reset_cache().unwrap(), 3);
        for id in &ids {
            pool.fetch(*id).unwrap();
        }
        let delta = pool.stats().snapshot().since(&before);
        assert_eq!(delta.disk_reads, 3, "all pages re-read after reset");
        assert_eq!(delta.buffer_hits, 0);
    }

    #[test]
    fn reset_cache_skips_pinned_frames() {
        let (_d, pool, ids) = setup(4, 2);
        let held = pool.fetch(ids[0]).unwrap();
        pool.fetch(ids[1]).unwrap();
        assert_eq!(pool.reset_cache().unwrap(), 1, "only the unpinned frame drops");
        assert_eq!(held.read_u32(0), 0, "pinned data still valid");
        assert_eq!(pool.pinned_frames(), 1);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        // 30% transient failures, 4 attempts: chance of one page
        // failing all 4 draws is ~0.8%; over 8 pages and this fixed
        // seed the run recovers fully (deterministic — seeded).
        let plan = FaultPlan { seed: 42, transient_read: 0.3, ..FaultPlan::none() };
        let (_faulty, pool, ids) = faulty_setup(8, 8, plan);
        for (i, id) in ids.iter().enumerate() {
            let p = pool.fetch(*id).unwrap();
            assert_eq!(p.read_u32(0), i as u32, "recovered read is byte-identical");
        }
        assert!(
            pool.stats().snapshot().read_retries > 0,
            "the plan injected faults, so retries happened"
        );
    }

    #[test]
    fn corrupt_reads_heal_on_retry() {
        let plan = FaultPlan { seed: 7, corrupt_read: 0.4, ..FaultPlan::none() };
        let (_faulty, pool, ids) = faulty_setup(8, 8, plan);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.fetch(*id).unwrap().read_u32(0), i as u32);
        }
    }

    #[test]
    fn sticky_corruption_exhausts_retries_with_a_named_fault() {
        let plan = FaultPlan { seed: 11, sticky_corrupt: 1.0, ..FaultPlan::none() };
        let (_faulty, pool, ids) = faulty_setup(4, 1, plan);
        match pool.fetch(ids[0]) {
            Err(StorageError::RetriesExhausted { attempts: 4, last }) => {
                assert_eq!(*last, StorageError::ChecksumMismatch { page: ids[0] });
            }
            other => panic!("expected RetriesExhausted(ChecksumMismatch), got {other:?}"),
        };
    }

    #[test]
    fn transient_write_faults_are_retried_to_success() {
        let plan = FaultPlan { seed: 21, transient_write: 0.4, ..FaultPlan::none() };
        let (faulty, pool, ids) = faulty_setup(8, 4, plan);
        let mut p = Page::zeroed();
        for (i, id) in ids.iter().enumerate() {
            p.write_u32(16, 1000 + i as u32);
            pool.write_through(*id, &p).unwrap();
        }
        assert!(faulty.injected() > 0, "the plan injected write faults");
        assert!(pool.stats().snapshot().write_retries > 0, "retries absorbed them");
        faulty.disarm();
        pool.reset_cache().unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.fetch(*id).unwrap().read_u32(16), 1000 + i as u32);
        }
    }

    #[test]
    fn write_through_updates_a_cached_frame() {
        let (_d, pool, ids) = setup(4, 1);
        assert_eq!(pool.fetch(ids[0]).unwrap().read_u32(0), 0);
        let mut p = Page::zeroed();
        p.write_u32(0, 4242);
        pool.write_through(ids[0], &p).unwrap();
        let r = pool.fetch(ids[0]).unwrap();
        assert_eq!(r.read_u32(0), 4242, "no stale cached image after write-through");
        assert!(r.verify_checksum(), "write-through stamps the checksum");
    }

    #[test]
    fn allocate_retries_transient_allocation_faults() {
        let plan = FaultPlan { seed: 2, transient_allocate: 0.5, ..FaultPlan::none() };
        let (_faulty, pool, _ids) = faulty_setup(4, 0, plan);
        let mut allocated = 0;
        for _ in 0..16 {
            if pool.allocate().is_ok() {
                allocated += 1;
            }
        }
        assert!(allocated > 0, "retries must get some allocations through");
        assert!(pool.stats().snapshot().write_retries > 0);
    }

    #[test]
    fn exhausted_write_retries_surface_typed() {
        let plan = FaultPlan { seed: 9, transient_write: 1.0, ..FaultPlan::none() };
        let (_faulty, pool, ids) = faulty_setup(4, 1, plan);
        match pool.write_through(ids[0], &Page::zeroed()) {
            Err(StorageError::RetriesExhausted { attempts: 4, last }) => {
                assert_eq!(*last, StorageError::InjectedIo { page: ids[0] });
            }
            other => panic!("expected RetriesExhausted(InjectedIo), got {other:?}"),
        }
    }

    #[test]
    fn failed_fetch_leaves_no_stale_mapping() {
        let plan = FaultPlan { seed: 11, sticky_corrupt: 1.0, ..FaultPlan::none() };
        let (faulty, pool, ids) = faulty_setup(4, 1, plan);
        assert!(pool.fetch(ids[0]).is_err());
        assert_eq!(pool.pinned_frames(), 0, "failed fetch pins nothing");
        // Heal the disk; the page must now load cleanly (no cached
        // failure, no stale page-table entry).
        faulty.disarm();
        assert_eq!(pool.fetch(ids[0]).unwrap().read_u32(0), 0);
    }
}
