//! Clustered per-tag element index.
//!
//! The paper assumes "candidate matches for individual query nodes
//! can be found efficiently, for instance, through an index scan"
//! (§2.2.1): for every tag, the index stores that tag's elements —
//! full records — packed onto contiguous pages in document order.
//! Scanning a tag therefore yields a binding list already sorted by
//! region `start`, exactly what the stack-tree joins require, at a
//! cost linear in the list size (`f_I * n` in the cost model).

use std::collections::HashMap;

use sjos_xml::Tag;

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::StorageError;
use crate::heap::HeapFile;
use crate::page::{Page, PageId};
use crate::record::{page_record_count, set_page_record_count, ElementRecord, RECORDS_PER_PAGE};

/// Per-tag posting directory.
#[derive(Debug, Clone, Default)]
pub struct TagIndex {
    postings: HashMap<Tag, Posting>,
}

/// The pages and cardinality of one tag's list.
#[derive(Debug, Clone)]
pub struct Posting {
    pages: Vec<PageId>,
    /// `region.start` of each page's first record (parallel to
    /// `pages`; the list is in document order, so these are strictly
    /// increasing). Lets a range scan binary-search its first page
    /// instead of reading the whole list.
    first_starts: Vec<u32>,
    count: u64,
}

impl TagIndex {
    /// Bulk-build from element records already in document order.
    /// Records are partitioned by tag, preserving document order
    /// within each tag, and written (checksum-stamped) to fresh pages
    /// on `disk`.
    pub fn bulk_build(
        disk: &dyn DiskManager,
        records: &[ElementRecord],
    ) -> Result<TagIndex, StorageError> {
        let mut by_tag: HashMap<Tag, Vec<ElementRecord>> = HashMap::new();
        for rec in records {
            by_tag.entry(rec.tag).or_default().push(*rec);
        }
        let mut postings = HashMap::with_capacity(by_tag.len());
        // Deterministic page layout: write tags in ascending order.
        let mut tags: Vec<Tag> = by_tag.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            let recs = &by_tag[&tag];
            debug_assert!(
                recs.windows(2).all(|w| w[0].region.start < w[1].region.start),
                "tag list must be in document order"
            );
            let mut pages = Vec::new();
            let mut first_starts = Vec::new();
            for chunk in recs.chunks(RECORDS_PER_PAGE) {
                let id = disk.allocate_page()?;
                let mut page = Page::zeroed();
                for (slot, rec) in chunk.iter().enumerate() {
                    rec.encode(&mut page, slot);
                }
                set_page_record_count(&mut page, chunk.len());
                page.stamp_checksum();
                disk.write_page(id, &page)?;
                first_starts.push(chunk[0].region.start);
                pages.push(id);
            }
            postings.insert(tag, Posting { pages, first_starts, count: recs.len() as u64 });
        }
        Ok(TagIndex { postings })
    }

    /// Build from a heap file (reads it through `pool`).
    pub fn build_from_heap(
        disk: &dyn DiskManager,
        pool: &BufferPool,
        heap: &HeapFile,
    ) -> Result<TagIndex, StorageError> {
        let records: Vec<ElementRecord> = heap.scan(pool).collect::<Result<_, _>>()?;
        Self::bulk_build(disk, &records)
    }

    /// Cardinality of `tag`'s list (0 if absent).
    pub fn cardinality(&self, tag: Tag) -> u64 {
        self.postings.get(&tag).map_or(0, |p| p.count)
    }

    /// Tags present in the index.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.postings.keys().copied()
    }

    /// Pages backing `tag`'s list.
    pub fn pages(&self, tag: Tag) -> &[PageId] {
        self.postings.get(&tag).map_or(&[], |p| p.pages.as_slice())
    }

    /// Scan `tag`'s elements in document order through `pool`. The
    /// iterator yields `Err` once and then fuses if a page read fails
    /// beyond recovery.
    pub fn scan<'a>(&'a self, pool: &'a BufferPool, tag: Tag) -> IndexScanIter<'a> {
        IndexScanIter {
            pages: self.pages(tag),
            pool,
            page_idx: 0,
            buffered: Vec::new(),
            buf_pos: 0,
            failed: false,
            hi: u32::MAX,
            skip_below: 0,
        }
    }

    /// Scan the slice of `tag`'s list whose `region.start` falls in
    /// `[lo, hi)`, in document order.
    ///
    /// The per-page `first_starts` keys prune the page set to the
    /// candidates that can hold in-range starts, so a morsel reads
    /// `O(pages_in_range + 1)` pages instead of the whole list; the
    /// records of the (at most one) leading boundary page that start
    /// before `lo` are filtered out, and the scan fuses at the first
    /// record with `start >= hi`. Region-range partitions therefore
    /// deliver each record of the list exactly once across morsels.
    pub fn scan_range<'a>(
        &'a self,
        pool: &'a BufferPool,
        tag: Tag,
        lo: u32,
        hi: u32,
    ) -> IndexScanIter<'a> {
        let (pages, first_starts) = match self.postings.get(&tag) {
            Some(p) => (p.pages.as_slice(), p.first_starts.as_slice()),
            None => (&[][..], &[][..]),
        };
        // First candidate page: the last one whose first start is
        // <= lo (an earlier page cannot hold starts >= lo beyond it);
        // pages whose first start is >= hi are out entirely.
        let begin = first_starts.partition_point(|&s| s <= lo).saturating_sub(1);
        let end = first_starts.partition_point(|&s| s < hi);
        let pages = if begin < end { &pages[begin..end] } else { &[][..] };
        IndexScanIter {
            pages,
            pool,
            page_idx: 0,
            buffered: Vec::new(),
            buf_pos: 0,
            failed: false,
            hi,
            skip_below: lo,
        }
    }
}

/// Iterator over one tag's posting list.
pub struct IndexScanIter<'a> {
    pages: &'a [PageId],
    pool: &'a BufferPool,
    page_idx: usize,
    buffered: Vec<ElementRecord>,
    buf_pos: usize,
    failed: bool,
    /// Exclusive upper bound on `region.start`: the scan fuses at the
    /// first record at or past it (`u32::MAX` = unbounded, and region
    /// starts are always below `u32::MAX`, so a full scan never fuses
    /// early).
    hi: u32,
    /// Records with `region.start` below this are skipped (only the
    /// leading boundary page of a range scan has any).
    skip_below: u32,
}

impl Iterator for IndexScanIter<'_> {
    type Item = Result<ElementRecord, StorageError>;

    fn next(&mut self) -> Option<Result<ElementRecord, StorageError>> {
        if self.failed {
            return None;
        }
        loop {
            if self.buf_pos < self.buffered.len() {
                let rec = self.buffered[self.buf_pos];
                self.buf_pos += 1;
                if rec.region.start < self.skip_below {
                    continue;
                }
                if rec.region.start >= self.hi {
                    // Document order: everything after is out of range.
                    self.failed = true;
                    return None;
                }
                return Some(Ok(rec));
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            let page = match self.pool.fetch(pid) {
                Ok(p) => p,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            let n = page_record_count(&page);
            self.buffered.clear();
            self.buffered.reserve(n);
            for slot in 0..n {
                self.buffered.push(ElementRecord::decode(&page, slot));
            }
            self.pool.stats().bump_records(n as u64);
            self.buf_pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::iostats::IoStats;
    use sjos_xml::{NodeId, Region};
    use std::sync::Arc;

    fn mixed_records(n: u32, tags: u32) -> Vec<ElementRecord> {
        (0..n)
            .map(|i| ElementRecord {
                node: NodeId(i),
                region: Region { start: 2 * i, end: 2 * i + 1, level: 1 },
                tag: Tag(i % tags),
                value_hash: 0,
            })
            .collect()
    }

    fn setup(n: u32, tags: u32) -> (TagIndex, BufferPool) {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let index = TagIndex::bulk_build(disk.as_ref(), &mixed_records(n, tags)).unwrap();
        let pool = BufferPool::new(disk, stats, 128);
        (index, pool)
    }

    fn collect(iter: IndexScanIter<'_>) -> Vec<ElementRecord> {
        iter.collect::<Result<Vec<_>, _>>().unwrap()
    }

    #[test]
    fn scan_is_docorder_and_tag_pure() {
        let (index, pool) = setup(1000, 3);
        for t in 0..3u32 {
            let recs = collect(index.scan(&pool, Tag(t)));
            assert!(!recs.is_empty());
            assert!(recs.iter().all(|r| r.tag == Tag(t)));
            assert!(recs.windows(2).all(|w| w[0].region.start < w[1].region.start));
        }
    }

    #[test]
    fn cardinalities_partition_the_input() {
        let (index, _pool) = setup(1000, 3);
        let total: u64 = (0..3).map(|t| index.cardinality(Tag(t))).sum();
        assert_eq!(total, 1000);
        assert_eq!(index.cardinality(Tag(99)), 0);
    }

    #[test]
    fn range_scans_partition_the_list_and_prune_pages() {
        let n = (RECORDS_PER_PAGE as u32) * 3 + 17;
        let (index, pool) = setup(n, 1);
        let all = collect(index.scan(&pool, Tag(0)));
        // Cuts at arbitrary start values, including ones that fall
        // mid-page and past the end.
        let cuts = [0u32, 7, 2 * n / 3, 2 * n - 1, 2 * n + 100, u32::MAX];
        let mut reassembled = Vec::new();
        for w in cuts.windows(2) {
            let part = collect(index.scan_range(&pool, Tag(0), w[0], w[1]));
            assert!(part.iter().all(|r| r.region.start >= w[0] && r.region.start < w[1]));
            reassembled.extend(part);
        }
        assert_eq!(reassembled, all, "ranges over consecutive cuts must partition the list");
        // A narrow range reads O(1) pages, not the whole list.
        let before = pool.stats().snapshot().record_reads;
        let _ = collect(index.scan_range(&pool, Tag(0), 2, 4));
        let read = pool.stats().snapshot().record_reads - before;
        assert!(
            read <= 2 * RECORDS_PER_PAGE as u64,
            "narrow range decoded {read} records (page pruning broken)"
        );
    }

    #[test]
    fn range_scan_on_missing_tag_is_empty() {
        let (index, pool) = setup(10, 2);
        assert_eq!(index.scan_range(&pool, Tag(42), 0, u32::MAX).count(), 0);
    }

    #[test]
    fn missing_tag_scans_empty() {
        let (index, pool) = setup(10, 2);
        assert_eq!(index.scan(&pool, Tag(42)).count(), 0);
    }

    #[test]
    fn multi_page_lists_scan_completely() {
        let n = (RECORDS_PER_PAGE as u32) * 2 + 5;
        let (index, pool) = setup(n, 1);
        assert_eq!(index.scan(&pool, Tag(0)).count() as u64, index.cardinality(Tag(0)));
        assert!(index.pages(Tag(0)).len() >= 3);
    }

    #[test]
    fn build_from_heap_matches_bulk_build() {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let records = mixed_records(500, 4);
        let heap = HeapFile::bulk_build(disk.as_ref(), &records).unwrap();
        let pool = BufferPool::new(disk.clone(), stats, 64);
        let index = TagIndex::build_from_heap(disk.as_ref(), &pool, &heap).unwrap();
        for t in 0..4u32 {
            assert_eq!(index.cardinality(Tag(t)), 125);
        }
    }

    #[test]
    fn scan_surfaces_read_failure_once_then_fuses() {
        use crate::buffer::RetryPolicy;
        use crate::fault::{FaultPlan, FaultyDisk};
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let index = TagIndex::bulk_build(disk.as_ref(), &mixed_records(100, 1)).unwrap();
        let faulty = Arc::new(FaultyDisk::new(
            disk,
            FaultPlan { seed: 3, sticky_corrupt: 1.0, ..FaultPlan::none() },
        ));
        faulty.arm();
        let pool = BufferPool::new(faulty as Arc<dyn DiskManager>, stats, 8)
            .with_retry_policy(RetryPolicy::no_backoff(2));
        let items: Vec<_> = index.scan(&pool, Tag(0)).collect();
        assert_eq!(items.len(), 1, "one error, then fused");
        assert!(matches!(items[0], Err(StorageError::RetriesExhausted { .. })));
    }
}
