//! Clustered per-tag element index.
//!
//! The paper assumes "candidate matches for individual query nodes
//! can be found efficiently, for instance, through an index scan"
//! (§2.2.1): for every tag, the index stores that tag's elements —
//! full records — packed onto contiguous pages in document order.
//! Scanning a tag therefore yields a binding list already sorted by
//! region `start`, exactly what the stack-tree joins require, at a
//! cost linear in the list size (`f_I * n` in the cost model).

use std::collections::HashMap;

use sjos_xml::Tag;

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::StorageError;
use crate::heap::HeapFile;
use crate::page::{Page, PageId};
use crate::record::{page_record_count, set_page_record_count, ElementRecord, RECORDS_PER_PAGE};

/// Per-tag posting directory.
#[derive(Debug, Clone, Default)]
pub struct TagIndex {
    postings: HashMap<Tag, Posting>,
}

/// The pages and cardinality of one tag's list.
#[derive(Debug, Clone)]
pub struct Posting {
    pages: Vec<PageId>,
    count: u64,
}

impl TagIndex {
    /// Bulk-build from element records already in document order.
    /// Records are partitioned by tag, preserving document order
    /// within each tag, and written (checksum-stamped) to fresh pages
    /// on `disk`.
    pub fn bulk_build(
        disk: &dyn DiskManager,
        records: &[ElementRecord],
    ) -> Result<TagIndex, StorageError> {
        let mut by_tag: HashMap<Tag, Vec<ElementRecord>> = HashMap::new();
        for rec in records {
            by_tag.entry(rec.tag).or_default().push(*rec);
        }
        let mut postings = HashMap::with_capacity(by_tag.len());
        // Deterministic page layout: write tags in ascending order.
        let mut tags: Vec<Tag> = by_tag.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            let recs = &by_tag[&tag];
            debug_assert!(
                recs.windows(2).all(|w| w[0].region.start < w[1].region.start),
                "tag list must be in document order"
            );
            let mut pages = Vec::new();
            for chunk in recs.chunks(RECORDS_PER_PAGE) {
                let id = disk.allocate_page()?;
                let mut page = Page::zeroed();
                for (slot, rec) in chunk.iter().enumerate() {
                    rec.encode(&mut page, slot);
                }
                set_page_record_count(&mut page, chunk.len());
                page.stamp_checksum();
                disk.write_page(id, &page)?;
                pages.push(id);
            }
            postings.insert(tag, Posting { pages, count: recs.len() as u64 });
        }
        Ok(TagIndex { postings })
    }

    /// Build from a heap file (reads it through `pool`).
    pub fn build_from_heap(
        disk: &dyn DiskManager,
        pool: &BufferPool,
        heap: &HeapFile,
    ) -> Result<TagIndex, StorageError> {
        let records: Vec<ElementRecord> = heap.scan(pool).collect::<Result<_, _>>()?;
        Self::bulk_build(disk, &records)
    }

    /// Cardinality of `tag`'s list (0 if absent).
    pub fn cardinality(&self, tag: Tag) -> u64 {
        self.postings.get(&tag).map_or(0, |p| p.count)
    }

    /// Tags present in the index.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.postings.keys().copied()
    }

    /// Pages backing `tag`'s list.
    pub fn pages(&self, tag: Tag) -> &[PageId] {
        self.postings.get(&tag).map(|p| p.pages.as_slice()).unwrap_or(&[])
    }

    /// Scan `tag`'s elements in document order through `pool`. The
    /// iterator yields `Err` once and then fuses if a page read fails
    /// beyond recovery.
    pub fn scan<'a>(&'a self, pool: &'a BufferPool, tag: Tag) -> IndexScanIter<'a> {
        IndexScanIter {
            pages: self.pages(tag),
            pool,
            page_idx: 0,
            buffered: Vec::new(),
            buf_pos: 0,
            failed: false,
        }
    }
}

/// Iterator over one tag's posting list.
pub struct IndexScanIter<'a> {
    pages: &'a [PageId],
    pool: &'a BufferPool,
    page_idx: usize,
    buffered: Vec<ElementRecord>,
    buf_pos: usize,
    failed: bool,
}

impl Iterator for IndexScanIter<'_> {
    type Item = Result<ElementRecord, StorageError>;

    fn next(&mut self) -> Option<Result<ElementRecord, StorageError>> {
        if self.failed {
            return None;
        }
        loop {
            if self.buf_pos < self.buffered.len() {
                let rec = self.buffered[self.buf_pos];
                self.buf_pos += 1;
                return Some(Ok(rec));
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            let page = match self.pool.fetch(pid) {
                Ok(p) => p,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            let n = page_record_count(&page);
            self.buffered.clear();
            self.buffered.reserve(n);
            for slot in 0..n {
                self.buffered.push(ElementRecord::decode(&page, slot));
            }
            self.pool.stats().bump_records(n as u64);
            self.buf_pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::iostats::IoStats;
    use sjos_xml::{NodeId, Region};
    use std::sync::Arc;

    fn mixed_records(n: u32, tags: u32) -> Vec<ElementRecord> {
        (0..n)
            .map(|i| ElementRecord {
                node: NodeId(i),
                region: Region { start: 2 * i, end: 2 * i + 1, level: 1 },
                tag: Tag(i % tags),
                value_hash: 0,
            })
            .collect()
    }

    fn setup(n: u32, tags: u32) -> (TagIndex, BufferPool) {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let index = TagIndex::bulk_build(disk.as_ref(), &mixed_records(n, tags)).unwrap();
        let pool = BufferPool::new(disk, stats, 128);
        (index, pool)
    }

    fn collect(iter: IndexScanIter<'_>) -> Vec<ElementRecord> {
        iter.collect::<Result<Vec<_>, _>>().unwrap()
    }

    #[test]
    fn scan_is_docorder_and_tag_pure() {
        let (index, pool) = setup(1000, 3);
        for t in 0..3u32 {
            let recs = collect(index.scan(&pool, Tag(t)));
            assert!(!recs.is_empty());
            assert!(recs.iter().all(|r| r.tag == Tag(t)));
            assert!(recs.windows(2).all(|w| w[0].region.start < w[1].region.start));
        }
    }

    #[test]
    fn cardinalities_partition_the_input() {
        let (index, _pool) = setup(1000, 3);
        let total: u64 = (0..3).map(|t| index.cardinality(Tag(t))).sum();
        assert_eq!(total, 1000);
        assert_eq!(index.cardinality(Tag(99)), 0);
    }

    #[test]
    fn missing_tag_scans_empty() {
        let (index, pool) = setup(10, 2);
        assert_eq!(index.scan(&pool, Tag(42)).count(), 0);
    }

    #[test]
    fn multi_page_lists_scan_completely() {
        let n = (RECORDS_PER_PAGE as u32) * 2 + 5;
        let (index, pool) = setup(n, 1);
        assert_eq!(index.scan(&pool, Tag(0)).count() as u64, index.cardinality(Tag(0)));
        assert!(index.pages(Tag(0)).len() >= 3);
    }

    #[test]
    fn build_from_heap_matches_bulk_build() {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let records = mixed_records(500, 4);
        let heap = HeapFile::bulk_build(disk.as_ref(), &records).unwrap();
        let pool = BufferPool::new(disk.clone(), stats, 64);
        let index = TagIndex::build_from_heap(disk.as_ref(), &pool, &heap).unwrap();
        for t in 0..4u32 {
            assert_eq!(index.cardinality(Tag(t)), 125);
        }
    }

    #[test]
    fn scan_surfaces_read_failure_once_then_fuses() {
        use crate::buffer::RetryPolicy;
        use crate::fault::{FaultPlan, FaultyDisk};
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let index = TagIndex::bulk_build(disk.as_ref(), &mixed_records(100, 1)).unwrap();
        let faulty = Arc::new(FaultyDisk::new(
            disk,
            FaultPlan { seed: 3, sticky_corrupt: 1.0, ..FaultPlan::none() },
        ));
        faulty.arm();
        let pool = BufferPool::new(faulty as Arc<dyn DiskManager>, stats, 8)
            .with_retry_policy(RetryPolicy::no_backoff(2));
        let items: Vec<_> = index.scan(&pool, Tag(0)).collect();
        assert_eq!(items.len(), 1, "one error, then fused");
        assert!(matches!(items[0], Err(StorageError::RetriesExhausted { .. })));
    }
}
