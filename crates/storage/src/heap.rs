//! Heap file: all element records in document order.
//!
//! The heap file is the substrate for full-document scans (the naive
//! "walk the subtree" evaluation the paper's Example 2.2 warns about)
//! and the source the tag index is bulk-built from.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::StorageError;
use crate::page::{Page, PageId};
use crate::record::{page_record_count, set_page_record_count, ElementRecord, RECORDS_PER_PAGE};

/// A sequence of element records packed onto pages in append order.
#[derive(Debug, Clone)]
pub struct HeapFile {
    pages: Vec<PageId>,
    len: u64,
}

impl HeapFile {
    /// Bulk-build a heap file by appending `records` to fresh pages on
    /// `disk`. This is the load path; it writes straight to disk,
    /// bypassing the buffer pool (as bulk loaders do). Pages are
    /// checksum-stamped as written.
    pub fn bulk_build(
        disk: &dyn DiskManager,
        records: &[ElementRecord],
    ) -> Result<HeapFile, StorageError> {
        let mut pages = Vec::new();
        for chunk in records.chunks(RECORDS_PER_PAGE) {
            let id = disk.allocate_page()?;
            let mut page = Page::zeroed();
            for (slot, rec) in chunk.iter().enumerate() {
                rec.encode(&mut page, slot);
            }
            set_page_record_count(&mut page, chunk.len());
            page.stamp_checksum();
            disk.write_page(id, &page)?;
            pages.push(id);
        }
        Ok(HeapFile { pages, len: records.len() as u64 })
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page ids backing this file, in order.
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    /// Scan every record through the buffer pool, in append order.
    /// The iterator yields `Err` once and then fuses if a page read
    /// fails beyond recovery.
    pub fn scan<'a>(&'a self, pool: &'a BufferPool) -> HeapScan<'a> {
        HeapScan { file: self, pool, page_idx: 0, slot: 0, current: None, failed: false }
    }
}

/// Iterator over a [`HeapFile`] through a buffer pool.
pub struct HeapScan<'a> {
    file: &'a HeapFile,
    pool: &'a BufferPool,
    page_idx: usize,
    slot: usize,
    /// Decoded records of the current page (small buffer so we don't
    /// hold page pins across iterator steps).
    current: Option<Arc<Vec<ElementRecord>>>,
    /// Set after yielding an error; the iterator then fuses.
    failed: bool,
}

impl HeapScan<'_> {
    fn load_page(&mut self) -> Result<bool, StorageError> {
        while self.page_idx < self.file.pages.len() {
            let pid = self.file.pages[self.page_idx];
            let page = self.pool.fetch(pid)?;
            let n = page_record_count(&page);
            if n == 0 {
                self.page_idx += 1;
                continue;
            }
            let mut recs = Vec::with_capacity(n);
            for slot in 0..n {
                recs.push(ElementRecord::decode(&page, slot));
            }
            self.pool.stats().bump_records(n as u64);
            self.current = Some(Arc::new(recs));
            self.slot = 0;
            return Ok(true);
        }
        Ok(false)
    }
}

impl Iterator for HeapScan<'_> {
    type Item = Result<ElementRecord, StorageError>;

    fn next(&mut self) -> Option<Result<ElementRecord, StorageError>> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(recs) = &self.current {
                if self.slot < recs.len() {
                    let rec = recs[self.slot];
                    self.slot += 1;
                    return Some(Ok(rec));
                }
                self.current = None;
                self.page_idx += 1;
            }
            match self.load_page() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::iostats::IoStats;
    use sjos_xml::{NodeId, Region, Tag};

    fn records(n: u32) -> Vec<ElementRecord> {
        (0..n)
            .map(|i| ElementRecord {
                node: NodeId(i),
                region: Region { start: 2 * i, end: 2 * i + 1, level: 1 },
                tag: Tag(0),
                value_hash: u64::from(i),
            })
            .collect()
    }

    fn setup(n: u32) -> (HeapFile, BufferPool) {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let heap = HeapFile::bulk_build(disk.as_ref(), &records(n)).unwrap();
        let pool = BufferPool::new(disk, stats, 64);
        (heap, pool)
    }

    fn collect(scan: HeapScan<'_>) -> Vec<ElementRecord> {
        scan.collect::<Result<Vec<_>, _>>().unwrap()
    }

    #[test]
    fn scan_returns_all_records_in_order() {
        let n = RECORDS_PER_PAGE as u32 * 2 + 17;
        let (heap, pool) = setup(n);
        let got = collect(heap.scan(&pool));
        assert_eq!(got.len(), n as usize);
        assert_eq!(got, records(n));
    }

    #[test]
    fn page_count_matches_capacity_math() {
        let n = RECORDS_PER_PAGE as u32 * 3;
        let (heap, _pool) = setup(n);
        assert_eq!(heap.num_pages(), 3);
        let (heap2, _pool2) = setup(n + 1);
        assert_eq!(heap2.num_pages(), 4);
    }

    #[test]
    fn empty_heap_scans_empty() {
        let (heap, pool) = setup(0);
        assert!(heap.is_empty());
        assert_eq!(heap.scan(&pool).count(), 0);
    }

    #[test]
    fn scan_does_physical_io_once_then_hits() {
        let (heap, pool) = setup(RECORDS_PER_PAGE as u32);
        let before = pool.stats().snapshot();
        let _ = heap.scan(&pool).count();
        let mid = pool.stats().snapshot();
        assert_eq!(mid.since(&before).disk_reads, 1);
        let _ = heap.scan(&pool).count();
        let after = pool.stats().snapshot();
        assert_eq!(after.since(&mid).disk_reads, 0, "second scan fully cached");
        assert_eq!(after.since(&mid).buffer_hits, 1);
    }

    #[test]
    fn bulk_built_pages_are_stamped() {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let heap = HeapFile::bulk_build(disk.as_ref(), &records(10)).unwrap();
        for pid in heap.page_ids() {
            let page = disk.read_page(*pid).unwrap();
            assert!(page.verify_checksum());
            assert_ne!(page.read_u32(crate::page::CHECKSUM_OFFSET), 0);
        }
    }

    #[test]
    fn scan_surfaces_read_failure_once_then_fuses() {
        use crate::buffer::RetryPolicy;
        use crate::fault::{FaultPlan, FaultyDisk};
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let heap =
            HeapFile::bulk_build(disk.as_ref(), &records(RECORDS_PER_PAGE as u32 * 2)).unwrap();
        let faulty = Arc::new(FaultyDisk::new(
            disk,
            FaultPlan { seed: 5, sticky_corrupt: 1.0, ..FaultPlan::none() },
        ));
        faulty.arm();
        let pool = BufferPool::new(faulty as Arc<dyn DiskManager>, stats, 8)
            .with_retry_policy(RetryPolicy::no_backoff(2));
        let items: Vec<_> = heap.scan(&pool).collect();
        assert_eq!(items.len(), 1, "one error, then fused");
        assert!(matches!(items[0], Err(StorageError::RetriesExhausted { .. })));
    }
}
