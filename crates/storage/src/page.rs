//! Fixed-size pages.

/// Page size in bytes. 8 KiB, SHORE's default.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page on disk (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Dense index of the page.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A page image. Pages are heap-allocated (`Box<Page>` in the disk,
/// `Arc<Page>` in buffer frames) so moving handles never copies 8 KiB.
#[derive(Clone)]
pub struct Page {
    /// Raw bytes.
    pub data: [u8; PAGE_SIZE],
}

impl Page {
    /// A zeroed page. An 8 KiB array briefly lives on the stack here;
    /// that is well within any thread's stack and the compiler
    /// routinely elides the copy into the box.
    pub fn zeroed() -> Box<Page> {
        Box::new(Page { data: [0u8; PAGE_SIZE] })
    }

    /// Read a little-endian u32 at byte offset `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Write a little-endian u32 at byte offset `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u16 at byte offset `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().unwrap())
    }

    /// Write a little-endian u16 at byte offset `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u64 at byte offset `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    /// Write a little-endian u64 at byte offset `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_pages_are_all_zero() {
        let p = Page::zeroed();
        assert!(p.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn scalar_roundtrips() {
        let mut p = Page::zeroed();
        p.write_u32(0, 0xDEADBEEF);
        p.write_u16(4, 0xABCD);
        p.write_u64(8, u64::MAX - 7);
        assert_eq!(p.read_u32(0), 0xDEADBEEF);
        assert_eq!(p.read_u16(4), 0xABCD);
        assert_eq!(p.read_u64(8), u64::MAX - 7);
    }

    #[test]
    fn writes_do_not_bleed() {
        let mut p = Page::zeroed();
        p.write_u32(100, u32::MAX);
        assert_eq!(p.data[99], 0);
        assert_eq!(p.data[104], 0);
    }

    #[test]
    fn page_id_index() {
        assert_eq!(PageId(7).index(), 7);
    }
}
