//! Fixed-size pages.

/// Page size in bytes. 8 KiB, SHORE's default.
pub const PAGE_SIZE: usize = 8192;

/// Byte offset of the page checksum inside the page header. The
/// record-page header is 8 bytes (`u16` record count at offset 0,
/// rest reserved — see [`crate::record`]); the checksum claims the
/// reserved `u32` at bytes 4..8.
pub const CHECKSUM_OFFSET: usize = 4;

/// Identifier of a page on disk (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Dense index of the page.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A page image. Pages are heap-allocated (`Box<Page>` in the disk,
/// `Arc<Page>` in buffer frames) so moving handles never copies 8 KiB.
#[derive(Clone)]
pub struct Page {
    /// Raw bytes.
    pub data: [u8; PAGE_SIZE],
}

impl Page {
    /// A zeroed page. An 8 KiB array briefly lives on the stack here;
    /// that is well within any thread's stack and the compiler
    /// routinely elides the copy into the box.
    pub fn zeroed() -> Box<Page> {
        Box::new(Page { data: [0u8; PAGE_SIZE] })
    }

    /// Read a little-endian u32 at byte offset `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        // Invariant: the slice is exactly 4 bytes, so try_into cannot fail.
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Write a little-endian u32 at byte offset `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u16 at byte offset `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        // Invariant: the slice is exactly 2 bytes, so try_into cannot fail.
        u16::from_le_bytes(self.data[off..off + 2].try_into().unwrap())
    }

    /// Write a little-endian u16 at byte offset `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u64 at byte offset `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        // Invariant: the slice is exactly 8 bytes, so try_into cannot fail.
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    /// Write a little-endian u64 at byte offset `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// FNV-1a over every byte except the checksum field itself,
    /// mapped away from 0 (0 is reserved to mean "unstamped").
    pub fn compute_checksum(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for (i, &b) in self.data.iter().enumerate() {
            if (CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4).contains(&i) {
                continue;
            }
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Stamp the page's checksum field from its current contents.
    /// Done by the bulk loaders at build time and by the buffer pool
    /// on dirty write-back, so every page image the disk holds
    /// verifies.
    pub fn stamp_checksum(&mut self) {
        let sum = self.compute_checksum();
        self.write_u32(CHECKSUM_OFFSET, sum);
    }

    /// Verify the stamped checksum. A stored value of 0 means the
    /// page was never stamped (raw test pages written straight to a
    /// disk image) and is accepted; any nonzero stored value must
    /// match the recomputed one.
    pub fn verify_checksum(&self) -> bool {
        let stored = self.read_u32(CHECKSUM_OFFSET);
        stored == 0 || stored == self.compute_checksum()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({PAGE_SIZE} bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_pages_are_all_zero() {
        let p = Page::zeroed();
        assert!(p.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn scalar_roundtrips() {
        let mut p = Page::zeroed();
        p.write_u32(0, 0xDEADBEEF);
        p.write_u16(4, 0xABCD);
        p.write_u64(8, u64::MAX - 7);
        assert_eq!(p.read_u32(0), 0xDEADBEEF);
        assert_eq!(p.read_u16(4), 0xABCD);
        assert_eq!(p.read_u64(8), u64::MAX - 7);
    }

    #[test]
    fn writes_do_not_bleed() {
        let mut p = Page::zeroed();
        p.write_u32(100, u32::MAX);
        assert_eq!(p.data[99], 0);
        assert_eq!(p.data[104], 0);
    }

    #[test]
    fn page_id_index() {
        assert_eq!(PageId(7).index(), 7);
    }

    #[test]
    fn unstamped_pages_verify() {
        let mut p = Page::zeroed();
        assert!(p.verify_checksum(), "fresh zero page is unstamped, accepted");
        p.write_u64(100, 12345);
        assert!(p.verify_checksum(), "raw writes leave the page unstamped");
    }

    #[test]
    fn stamped_pages_verify_and_detect_corruption() {
        let mut p = Page::zeroed();
        p.write_u64(64, 0xABCD);
        p.stamp_checksum();
        assert!(p.verify_checksum());
        p.data[64] ^= 0xFF;
        assert!(!p.verify_checksum(), "bit flip must be detected");
        p.data[64] ^= 0xFF;
        assert!(p.verify_checksum(), "restoring the byte restores validity");
    }

    #[test]
    fn checksum_is_never_zero() {
        let p = Page::zeroed();
        assert_ne!(p.compute_checksum(), 0);
    }

    #[test]
    fn restamping_after_mutation_keeps_pages_valid() {
        let mut p = Page::zeroed();
        p.stamp_checksum();
        p.write_u32(200, 7);
        assert!(!p.verify_checksum());
        p.stamp_checksum();
        assert!(p.verify_checksum());
    }
}
