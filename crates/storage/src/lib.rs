//! # sjos-storage
//!
//! A miniature storage manager standing in for SHORE (the storage
//! layer Timber — and therefore the paper's experiments — ran on):
//!
//! * fixed-size [`page::Page`]s on an in-memory [`disk::InMemoryDisk`]
//!   that counts physical reads/writes,
//! * an LRU [`buffer::BufferPool`] with pin/unpin and dirty-page
//!   write-back (default capacity 16 MB, matching the paper's setup),
//! * a [`heap::HeapFile`] of fixed-width element records in document
//!   order, and
//! * a clustered per-tag [`index::TagIndex`] whose scans deliver
//!   binding lists sorted by document order — the inputs every
//!   structural join expects.
//!
//! The point of the crate is not durability (everything is in memory)
//! but *cost realism*: every element an operator touches flows through
//! the buffer pool, so logical/physical I/O counts and buffer-pool
//! pressure behave the way the paper's cost model assumes.
//!
//! Robustness: every fallible path reports a typed
//! [`error::StorageError`]; pages carry checksums verified on load;
//! the pool retries transient faults under a [`buffer::RetryPolicy`];
//! and [`fault::FaultyDisk`] injects seeded, reproducible faults for
//! chaos testing.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod disk;
pub mod error;
pub mod fault;
pub mod heap;
pub mod index;
pub mod iostats;
pub mod page;
pub mod record;
pub mod spill;
pub mod store;

pub use buffer::{BufferPool, PageRef, RetryPolicy};
pub use disk::{DiskManager, FileDisk, InMemoryDisk};
pub use error::StorageError;
pub use fault::{FaultPlan, FaultyDisk};
pub use heap::HeapFile;
pub use index::TagIndex;
pub use iostats::{IoSnapshot, IoStats, IoTap};
pub use page::{Page, PageId, PAGE_SIZE};
pub use record::ElementRecord;
pub use spill::{SpillSegment, TempPages};
pub use store::{StoreConfig, XmlStore};

#[cfg(test)]
mod thread_safety {
    //! Compile-time pin of the storage layer's shareability: the query
    //! service hands one `XmlStore` (pool, disk, fault harness, stats)
    //! to many session threads at once.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn storage_is_shareable() {
        assert_send_sync::<XmlStore>();
        assert_send_sync::<BufferPool>();
        assert_send_sync::<HeapFile>();
        assert_send_sync::<TagIndex>();
        assert_send_sync::<IoStats>();
        assert_send_sync::<FaultyDisk>();
        assert_send_sync::<StorageError>();
        assert_send_sync::<SpillSegment>();
    }
}
