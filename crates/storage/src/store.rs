//! [`XmlStore`]: a loaded document behind the storage stack.

use std::sync::Arc;

use sjos_xml::{Document, Tag};

use crate::buffer::BufferPool;
use crate::disk::{DiskManager, InMemoryDisk};
use crate::heap::HeapFile;
use crate::index::{IndexScanIter, TagIndex};
use crate::iostats::IoStats;
use crate::page::PAGE_SIZE;
use crate::record::{value_digest, ElementRecord};

/// Knobs for building a store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Buffer pool size in bytes (default 16 MiB as in the paper).
    pub buffer_pool_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { buffer_pool_bytes: crate::buffer::DEFAULT_CAPACITY_BYTES }
    }
}

/// A document loaded into the storage engine: heap file + tag index +
/// buffer pool + shared I/O counters. The source [`Document`] is kept
/// for result materialization and value-predicate verification, but
/// query operators read element records only through the pool.
pub struct XmlStore {
    document: Arc<Document>,
    disk: Arc<InMemoryDisk>,
    pool: BufferPool,
    heap: HeapFile,
    index: TagIndex,
    stats: Arc<IoStats>,
}

impl XmlStore {
    /// Load `document` with default configuration.
    pub fn load(document: Document) -> XmlStore {
        Self::load_with(document, StoreConfig::default())
    }

    /// Load `document` with explicit configuration.
    pub fn load_with(document: Document, config: StoreConfig) -> XmlStore {
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let records: Vec<ElementRecord> = document
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| ElementRecord {
                node: sjos_xml::NodeId(i as u32),
                region: n.region,
                tag: n.tag,
                value_hash: value_digest(&n.text),
            })
            .collect();
        let heap = HeapFile::bulk_build(disk.as_ref(), &records);
        let index = TagIndex::bulk_build(disk.as_ref(), &records);
        let frames = (config.buffer_pool_bytes / PAGE_SIZE).max(1);
        let pool =
            BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, Arc::clone(&stats), frames);
        XmlStore { document: Arc::new(document), disk, pool, heap, index, stats }
    }

    /// The stored document.
    pub fn document(&self) -> &Arc<Document> {
        &self.document
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The heap file of all elements in document order.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The tag index.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// Cardinality of a tag (number of elements).
    pub fn tag_cardinality(&self, tag: Tag) -> u64 {
        self.index.cardinality(tag)
    }

    /// Scan a tag's binding list in document order.
    pub fn scan_tag(&self, tag: Tag) -> IndexScanIter<'_> {
        self.index.scan(&self.pool, tag)
    }

    /// Scan *every* element in document order (the heap file) — the
    /// access path behind wildcard (`*`) pattern nodes.
    pub fn scan_all(&self) -> crate::heap::HeapScan<'_> {
        self.heap.scan(&self.pool)
    }

    /// Total pages allocated (heap + index).
    pub fn total_pages(&self) -> usize {
        self.disk.num_pages()
    }
}

impl std::fmt::Debug for XmlStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XmlStore({} elements, {} pages)", self.document.len(), self.total_pages())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<dept><emp><name>a</name></emp><emp><name>b</name>\
                          <name>c</name></emp></dept>";

    #[test]
    fn load_exposes_tag_lists() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load(doc);
        let name = store.document().tag("name").unwrap();
        assert_eq!(store.tag_cardinality(name), 3);
        let recs: Vec<_> = store.scan_tag(name).collect();
        assert_eq!(recs.len(), 3);
        assert!(recs.windows(2).all(|w| w[0].region.start < w[1].region.start));
    }

    #[test]
    fn value_digests_survive_storage() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load(doc);
        let name = store.document().tag("name").unwrap();
        let recs: Vec<_> = store.scan_tag(name).collect();
        assert_eq!(recs[0].value_hash, value_digest("a"));
        assert_ne!(recs[0].value_hash, recs[1].value_hash);
    }

    #[test]
    fn node_ids_round_trip_to_document() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load(doc);
        let emp = store.document().tag("emp").unwrap();
        for rec in store.scan_tag(emp) {
            let node = store.document().node(rec.node);
            assert_eq!(node.tag, emp);
            assert_eq!(node.region, rec.region);
        }
    }

    #[test]
    fn tiny_pool_still_scans_correctly() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load_with(doc, StoreConfig { buffer_pool_bytes: PAGE_SIZE });
        let name = store.document().tag("name").unwrap();
        assert_eq!(store.scan_tag(name).count(), 3);
    }
}
