//! [`XmlStore`]: a loaded document behind the storage stack.

use std::sync::Arc;

use sjos_xml::{Document, Tag};

use crate::buffer::{BufferPool, RetryPolicy};
use crate::disk::{DiskManager, InMemoryDisk};
use crate::fault::{FaultPlan, FaultyDisk};
use crate::heap::HeapFile;
use crate::index::{IndexScanIter, TagIndex};
use crate::iostats::IoStats;
use crate::page::PAGE_SIZE;
use crate::record::{value_digest, ElementRecord};
use crate::spill::SpillSegment;

/// Knobs for building a store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Buffer pool size in bytes (default 16 MiB as in the paper).
    pub buffer_pool_bytes: usize,
    /// Buffer-pool reaction to transient read faults.
    pub retry: RetryPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            buffer_pool_bytes: crate::buffer::DEFAULT_CAPACITY_BYTES,
            retry: RetryPolicy::default(),
        }
    }
}

/// A document loaded into the storage engine: heap file + tag index +
/// buffer pool + shared I/O counters. The source [`Document`] is kept
/// for result materialization and value-predicate verification, but
/// query operators read element records only through the pool.
pub struct XmlStore {
    document: Arc<Document>,
    disk: Arc<dyn DiskManager>,
    /// Present when the store was built with [`XmlStore::load_faulty`].
    fault: Option<Arc<FaultyDisk>>,
    pool: BufferPool,
    heap: HeapFile,
    index: TagIndex,
    spill: SpillSegment,
    stats: Arc<IoStats>,
}

impl XmlStore {
    /// Load `document` with default configuration.
    pub fn load(document: Document) -> XmlStore {
        Self::load_with(document, StoreConfig::default())
    }

    /// Load `document` with explicit configuration.
    pub fn load_with(document: Document, config: StoreConfig) -> XmlStore {
        // The disk shares the store's counters so `stats()` sees every
        // layer: a private disk instance would hide `disk_reads` from
        // callers while the thread-local `IoTap` still observed them.
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        Self::build(document, config, disk, None, stats)
    }

    /// Load `document` onto a fault-injected in-memory disk. The bulk
    /// load runs clean (the harness arms only afterwards), so faults
    /// hit exactly the query read path — the scenario the chaos suite
    /// exercises. Use [`XmlStore::fault`] to re-seed between runs.
    pub fn load_faulty(document: Document, config: StoreConfig, plan: FaultPlan) -> XmlStore {
        let stats = Arc::new(IoStats::new());
        let inner = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
        let faulty = Arc::new(FaultyDisk::new(inner, plan));
        let disk: Arc<dyn DiskManager> = Arc::clone(&faulty) as Arc<dyn DiskManager>;
        let store = Self::build(document, config, disk, Some(Arc::clone(&faulty)), stats);
        faulty.arm();
        store
    }

    fn build(
        document: Document,
        config: StoreConfig,
        disk: Arc<dyn DiskManager>,
        fault: Option<Arc<FaultyDisk>>,
        stats: Arc<IoStats>,
    ) -> XmlStore {
        let records: Vec<ElementRecord> = document
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| ElementRecord {
                node: sjos_xml::NodeId(i as u32),
                region: n.region,
                tag: n.tag,
                value_hash: value_digest(&n.text),
            })
            .collect();
        // Invariant: the load path writes to an in-memory disk that is
        // not yet armed for fault injection, so bulk builds cannot
        // fail here; a failure would be a programming error.
        let heap = HeapFile::bulk_build(disk.as_ref(), &records)
            .expect("bulk load on an unarmed in-memory disk is infallible");
        let index = TagIndex::bulk_build(disk.as_ref(), &records)
            .expect("bulk load on an unarmed in-memory disk is infallible");
        let frames = (config.buffer_pool_bytes / PAGE_SIZE).max(1);
        let pool = BufferPool::new(Arc::clone(&disk), Arc::clone(&stats), frames)
            .with_retry_policy(config.retry);
        XmlStore {
            document: Arc::new(document),
            disk,
            fault,
            pool,
            heap,
            index,
            spill: SpillSegment::new(),
            stats,
        }
    }

    /// The stored document.
    pub fn document(&self) -> &Arc<Document> {
        &self.document
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The fault-injection handle, when the store was built with
    /// [`XmlStore::load_faulty`].
    pub fn fault(&self) -> Option<&Arc<FaultyDisk>> {
        self.fault.as_ref()
    }

    /// The heap file of all elements in document order.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The tag index.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// The temp-page segment spilling sorts allocate from. Its
    /// [`SpillSegment::live_pages`] must be zero whenever no query is
    /// mid-spill — the leak-freedom invariant the chaos and spill
    /// suites assert.
    pub fn spill(&self) -> &SpillSegment {
        &self.spill
    }

    /// Cardinality of a tag (number of elements).
    pub fn tag_cardinality(&self, tag: Tag) -> u64 {
        self.index.cardinality(tag)
    }

    /// Scan a tag's binding list in document order.
    pub fn scan_tag(&self, tag: Tag) -> IndexScanIter<'_> {
        self.index.scan(&self.pool, tag)
    }

    /// Scan the slice of a tag's binding list whose `region.start`
    /// falls in `[lo, hi)`, in document order — the access path behind
    /// region-range morsels (per-page start keys prune the page set,
    /// so each morsel reads only its own slice of the list).
    pub fn scan_tag_range(&self, tag: Tag, lo: u32, hi: u32) -> IndexScanIter<'_> {
        self.index.scan_range(&self.pool, tag, lo, hi)
    }

    /// Scan *every* element in document order (the heap file) — the
    /// access path behind wildcard (`*`) pattern nodes.
    pub fn scan_all(&self) -> crate::heap::HeapScan<'_> {
        self.heap.scan(&self.pool)
    }

    /// Total pages allocated (heap + index).
    pub fn total_pages(&self) -> usize {
        self.disk.num_pages()
    }
}

impl std::fmt::Debug for XmlStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XmlStore({} elements, {} pages)", self.document.len(), self.total_pages())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<dept><emp><name>a</name></emp><emp><name>b</name>\
                          <name>c</name></emp></dept>";

    fn collect(iter: IndexScanIter<'_>) -> Vec<ElementRecord> {
        iter.collect::<Result<Vec<_>, _>>().unwrap()
    }

    #[test]
    fn load_exposes_tag_lists() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load(doc);
        let name = store.document().tag("name").unwrap();
        assert_eq!(store.tag_cardinality(name), 3);
        let recs = collect(store.scan_tag(name));
        assert_eq!(recs.len(), 3);
        assert!(recs.windows(2).all(|w| w[0].region.start < w[1].region.start));
    }

    #[test]
    fn value_digests_survive_storage() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load(doc);
        let name = store.document().tag("name").unwrap();
        let recs = collect(store.scan_tag(name));
        assert_eq!(recs[0].value_hash, value_digest("a"));
        assert_ne!(recs[0].value_hash, recs[1].value_hash);
    }

    #[test]
    fn node_ids_round_trip_to_document() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load(doc);
        let emp = store.document().tag("emp").unwrap();
        for rec in collect(store.scan_tag(emp)) {
            let node = store.document().node(rec.node);
            assert_eq!(node.tag, emp);
            assert_eq!(node.region, rec.region);
        }
    }

    #[test]
    fn tiny_pool_still_scans_correctly() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load_with(
            doc,
            StoreConfig { buffer_pool_bytes: PAGE_SIZE, ..StoreConfig::default() },
        );
        let name = store.document().tag("name").unwrap();
        assert_eq!(store.scan_tag(name).count(), 3);
    }

    #[test]
    fn faulty_store_loads_clean_then_injects() {
        let doc = Document::parse(SAMPLE).unwrap();
        let store = XmlStore::load_faulty(
            doc,
            StoreConfig { retry: RetryPolicy::no_backoff(4), ..StoreConfig::default() },
            FaultPlan { seed: 9, transient_read: 0.5, ..FaultPlan::none() },
        );
        let fault = store.fault().expect("fault handle present").clone();
        let name = store.document().tag("name").unwrap();
        // Retries absorb 50% transient failures (4 attempts each).
        let recs: Vec<_> = store.scan_tag(name).collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(recs.len(), 3);
        assert!(fault.injected() > 0 || store.stats().snapshot().read_retries == 0);
        // Re-seed and clear the cache: physical reads (and faults)
        // come back.
        fault.set_plan(FaultPlan::none());
        store.pool().reset_cache().unwrap();
        assert_eq!(store.scan_tag(name).count(), 3);
    }
}
