//! The "disk": page-granular storage below the buffer pool.

use std::sync::Arc;

use crate::error::StorageError;
use crate::iostats::IoStats;
use crate::page::{Page, PageId};

/// Page-granular storage device. All methods are fallible: real
/// devices fail, and the fault-injection harness
/// ([`crate::fault::FaultyDisk`]) exercises exactly these error
/// paths.
pub trait DiskManager: Send + Sync {
    /// Read page `id` into a fresh boxed page.
    fn read_page(&self, id: PageId) -> Result<Box<Page>, StorageError>;

    /// Write `page` at `id` (must be allocated).
    fn write_page(&self, id: PageId, page: &Page) -> Result<(), StorageError>;

    /// Allocate a new zeroed (checksum-stamped) page, returning its id.
    fn allocate_page(&self) -> Result<PageId, StorageError>;

    /// Number of allocated pages.
    fn num_pages(&self) -> usize;
}

/// An in-memory "disk" that counts physical transfers through a shared
/// [`IoStats`]. All experiment data fits in RAM (as it did in the
/// paper's 512 MB machine for the smaller data sets); what matters for
/// reproducing the cost structure is *how many* page transfers each
/// plan performs, which this records faithfully.
pub struct InMemoryDisk {
    pages: parking_lot::RwLock<Vec<Box<Page>>>,
    stats: Arc<IoStats>,
}

impl InMemoryDisk {
    /// Empty disk sharing `stats`.
    pub fn new(stats: Arc<IoStats>) -> Self {
        InMemoryDisk { pages: parking_lot::RwLock::new(Vec::new()), stats }
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

impl DiskManager for InMemoryDisk {
    fn read_page(&self, id: PageId) -> Result<Box<Page>, StorageError> {
        self.stats.bump_read();
        let pages = self.pages.read();
        let page = pages.get(id.index()).ok_or(StorageError::Unallocated { id, op: "read" })?;
        Ok(Box::new((**page).clone()))
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<(), StorageError> {
        self.stats.bump_write();
        let mut pages = self.pages.write();
        let slot =
            pages.get_mut(id.index()).ok_or(StorageError::Unallocated { id, op: "write" })?;
        **slot = page.clone();
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId, StorageError> {
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u32);
        let mut page = Page::zeroed();
        // Fresh pages are stamped so any later corruption of them is
        // detectable; bulk loaders re-stamp after filling them.
        page.stamp_checksum();
        pages.push(page);
        Ok(id)
    }

    fn num_pages(&self) -> usize {
        self.pages.read().len()
    }
}

/// A real file-backed disk: pages live at `page_id * PAGE_SIZE`
/// offsets of an ordinary file, so `f_IO` corresponds to actual
/// system calls. Used by durability-minded tests and available to
/// applications that want the data to outlive the process; the
/// experiment harnesses default to [`InMemoryDisk`] (the paper's
/// corpora fit in memory, and SHORE's buffer pool absorbed most I/O
/// there too).
pub struct FileDisk {
    file: parking_lot::Mutex<std::fs::File>,
    pages: std::sync::atomic::AtomicU32,
    stats: Arc<IoStats>,
}

impl FileDisk {
    /// Create (truncating) a page file at `path`.
    pub fn create(path: &std::path::Path, stats: Arc<IoStats>) -> std::io::Result<FileDisk> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk {
            file: parking_lot::Mutex::new(file),
            pages: std::sync::atomic::AtomicU32::new(0),
            stats,
        })
    }

    /// Open an existing page file; the page count is derived from the
    /// file length.
    pub fn open(path: &std::path::Path, stats: Arc<IoStats>) -> std::io::Result<FileDisk> {
        let file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = (len / crate::page::PAGE_SIZE as u64) as u32;
        Ok(FileDisk {
            file: parking_lot::Mutex::new(file),
            pages: std::sync::atomic::AtomicU32::new(pages),
            stats,
        })
    }

    /// Number of pages currently allocated.
    pub fn len(&self) -> usize {
        self.pages.load(std::sync::atomic::Ordering::SeqCst) as usize
    }

    /// True when no page has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn io_err(page: PageId, e: std::io::Error) -> StorageError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StorageError::ShortRead { page }
        } else {
            StorageError::Io { page: Some(page), kind: e.kind(), detail: e.to_string() }
        }
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId) -> Result<Box<Page>, StorageError> {
        use std::io::{Read, Seek, SeekFrom};
        if id.index() >= self.len() {
            return Err(StorageError::Unallocated { id, op: "read" });
        }
        self.stats.bump_read();
        let mut page = Page::zeroed();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.index() as u64 * crate::page::PAGE_SIZE as u64))
            .map_err(|e| Self::io_err(id, e))?;
        file.read_exact(&mut page.data).map_err(|e| Self::io_err(id, e))?;
        Ok(page)
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<(), StorageError> {
        use std::io::{Seek, SeekFrom, Write};
        if id.index() >= self.len() {
            return Err(StorageError::Unallocated { id, op: "write" });
        }
        self.stats.bump_write();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.index() as u64 * crate::page::PAGE_SIZE as u64))
            .map_err(|e| Self::io_err(id, e))?;
        file.write_all(&page.data).map_err(|e| Self::io_err(id, e))?;
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId, StorageError> {
        use std::io::{Seek, SeekFrom, Write};
        let id = PageId(self.pages.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
        // Extend the file with a stamped zero page so reads of fresh
        // pages are well-defined and checksum-verifiable.
        let mut zero = Page::zeroed();
        zero.stamp_checksum();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.index() as u64 * crate::page::PAGE_SIZE as u64))
            .map_err(|e| Self::io_err(id, e))?;
        file.write_all(&zero.data).map_err(|e| Self::io_err(id, e))?;
        Ok(id)
    }

    fn num_pages(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> InMemoryDisk {
        InMemoryDisk::new(Arc::new(IoStats::new()))
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = disk();
        let id = d.allocate_page().unwrap();
        let mut p = Page::zeroed();
        p.write_u32(0, 42);
        d.write_page(id, &p).unwrap();
        let back = d.read_page(id).unwrap();
        assert_eq!(back.read_u32(0), 42);
    }

    #[test]
    fn allocation_is_dense() {
        let d = disk();
        assert_eq!(d.allocate_page().unwrap(), PageId(0));
        assert_eq!(d.allocate_page().unwrap(), PageId(1));
        assert_eq!(d.num_pages(), 2);
    }

    #[test]
    fn fresh_pages_are_checksum_stamped() {
        let d = disk();
        let id = d.allocate_page().unwrap();
        let p = d.read_page(id).unwrap();
        assert!(p.verify_checksum());
        assert_ne!(p.read_u32(crate::page::CHECKSUM_OFFSET), 0, "stamped, not merely zero");
    }

    #[test]
    fn transfers_are_counted() {
        let d = disk();
        let id = d.allocate_page().unwrap();
        let p = Page::zeroed();
        d.write_page(id, &p).unwrap();
        d.read_page(id).unwrap();
        d.read_page(id).unwrap();
        let snap = d.stats().snapshot();
        assert_eq!(snap.disk_writes, 1);
        assert_eq!(snap.disk_reads, 2);
    }

    #[test]
    fn reading_unallocated_page_is_a_typed_error() {
        match disk().read_page(PageId(3)) {
            Err(StorageError::Unallocated { id, op }) => {
                assert_eq!(id, PageId(3));
                assert_eq!(op, "read");
            }
            other => panic!("expected Unallocated, got {other:?}"),
        }
    }

    #[test]
    fn writing_unallocated_page_is_a_typed_error() {
        let e = disk().write_page(PageId(9), &Page::zeroed()).unwrap_err();
        assert!(matches!(e, StorageError::Unallocated { op: "write", .. }));
        assert!(!e.is_transient(), "caller bug, not retried");
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sjos-disk-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn file_disk_roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        let stats = Arc::new(IoStats::new());
        {
            let d = FileDisk::create(&path, Arc::clone(&stats)).unwrap();
            let a = d.allocate_page().unwrap();
            let b = d.allocate_page().unwrap();
            let mut p = Page::zeroed();
            p.write_u64(0, 0xFEEDFACE);
            d.write_page(a, &p).unwrap();
            p.write_u64(0, 42);
            d.write_page(b, &p).unwrap();
            assert_eq!(d.read_page(a).unwrap().read_u64(0), 0xFEEDFACE);
            assert_eq!(d.num_pages(), 2);
        }
        // Reopen: data survives the handle.
        let d = FileDisk::open(&path, stats).unwrap();
        assert_eq!(d.num_pages(), 2);
        assert_eq!(d.read_page(PageId(1)).unwrap().read_u64(0), 42);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_fresh_pages_verify() {
        let path = temp_path("zero");
        let d = FileDisk::create(&path, Arc::new(IoStats::new())).unwrap();
        let id = d.allocate_page().unwrap();
        let p = d.read_page(id).unwrap();
        assert!(p.verify_checksum());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_rejects_unallocated_reads() {
        let path = temp_path("reject");
        let d = FileDisk::create(&path, Arc::new(IoStats::new())).unwrap();
        let e = d.read_page(PageId(0)).unwrap_err();
        assert!(matches!(e, StorageError::Unallocated { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_counts_physical_io() {
        let path = temp_path("stats");
        let stats = Arc::new(IoStats::new());
        let d = FileDisk::create(&path, Arc::clone(&stats)).unwrap();
        let id = d.allocate_page().unwrap();
        d.write_page(id, &Page::zeroed()).unwrap();
        d.read_page(id).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.disk_writes, 1);
        assert_eq!(snap.disk_reads, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffer_pool_works_over_file_disk() {
        let path = temp_path("pool");
        let stats = Arc::new(IoStats::new());
        let disk = Arc::new(FileDisk::create(&path, Arc::clone(&stats)).unwrap());
        let ids: Vec<PageId> = (0..4)
            .map(|i| {
                let id = disk.allocate_page().unwrap();
                let mut p = Page::zeroed();
                p.write_u32(0, i);
                disk.write_page(id, &p).unwrap();
                id
            })
            .collect();
        let pool = crate::buffer::BufferPool::new(disk, stats, 2);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.fetch(*id).unwrap().read_u32(0), i as u32);
        }
        std::fs::remove_file(&path).ok();
    }
}
