//! The buffer pool is shared (`&BufferPool` is `Sync`): concurrent
//! readers hammering a small pool must never observe wrong page
//! contents or deadlock.

use std::sync::Arc;

use sjos_storage::{BufferPool, DiskManager, InMemoryDisk, IoStats, Page, PageId};

fn setup(pages: u32, frames: usize) -> (Arc<InMemoryDisk>, Arc<BufferPool>, Vec<PageId>) {
    let stats = Arc::new(IoStats::new());
    let disk = Arc::new(InMemoryDisk::new(Arc::clone(&stats)));
    let ids: Vec<PageId> = (0..pages)
        .map(|i| {
            let id = disk.allocate_page().unwrap();
            let mut p = Page::zeroed();
            p.write_u32(0, i * 31 + 7);
            disk.write_page(id, &p).unwrap();
            id
        })
        .collect();
    let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, stats, frames));
    (disk, pool, ids)
}

#[test]
fn concurrent_readers_see_consistent_pages() {
    let (_disk, pool, ids) = setup(32, 4);
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let pool = Arc::clone(&pool);
        let ids = ids.clone();
        handles.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            for round in 0..200u32 {
                let idx = ((t * 7919 + round * 104729) as usize) % ids.len();
                let page = pool.fetch(ids[idx]).unwrap();
                assert_eq!(page.read_u32(0), idx as u32 * 31 + 7);
                checked += 1;
            }
            checked
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 4 * 200);
}

#[test]
fn concurrent_writers_and_readers_do_not_corrupt() {
    // Offsets 12/16: past the 8-byte page header (whose bytes 4..8
    // hold the checksum the pool stamps on write-back).
    let (disk, pool, ids) = setup(8, 4);
    let writer = {
        let pool = Arc::clone(&pool);
        let ids = ids.clone();
        std::thread::spawn(move || {
            for round in 1..=100u32 {
                for (i, id) in ids.iter().enumerate() {
                    pool.with_page_mut(*id, |p| {
                        // Both fields updated together; readers must
                        // never see them torn apart.
                        p.write_u32(12, round);
                        p.write_u32(16, round.wrapping_mul(i as u32 + 1));
                    })
                    .unwrap();
                }
            }
        })
    };
    let reader = {
        let pool = Arc::clone(&pool);
        let ids = ids.clone();
        std::thread::spawn(move || {
            for round in 0..400u32 {
                let idx = (round as usize * 13) % ids.len();
                let page = pool.fetch(ids[idx]).unwrap();
                let a = page.read_u32(12);
                let b = page.read_u32(16);
                assert_eq!(b, a.wrapping_mul(idx as u32 + 1), "torn page snapshot observed");
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    // After a flush, the disk agrees with the final state — and the
    // flushed images carry valid checksums.
    pool.flush_all().unwrap();
    for (i, id) in ids.iter().enumerate() {
        let p = disk.read_page(*id).unwrap();
        assert_eq!(p.read_u32(12), 100);
        assert_eq!(p.read_u32(16), 100u32.wrapping_mul(i as u32 + 1));
        assert!(p.verify_checksum(), "write-back stamped the page");
    }
}
