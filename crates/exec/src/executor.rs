//! Plan execution against an [`XmlStore`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use sjos_pattern::{Pattern, PnId, ValuePredicate};
use sjos_storage::record::value_digest;
use sjos_storage::XmlStore;

use crate::error::EngineError;
use crate::guard::{GuardedOp, QueryGuard};
use crate::metrics::{ExecMetrics, MetricsSnapshot};
use crate::ops::{
    BoxedOperator, IndexScanOp, MergeJoinOp, OrderingCheck, SortOp, SpillPolicy, StackTreeJoinOp,
};
use crate::plan::PlanNode;
use crate::tuple::{Schema, Tuple, TupleBatch, BATCH_ROWS};

/// The materialized answer of one query execution.
#[derive(Debug)]
pub struct QueryResult {
    /// Column layout of `tuples`.
    pub schema: Schema,
    /// All matches, in the order the plan produced them.
    pub tuples: Vec<Tuple>,
    /// Operator-level counters.
    pub metrics: MetricsSnapshot,
    /// Storage-level counters (delta over this execution).
    pub io: sjos_storage::iostats::IoSnapshot,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl QueryResult {
    /// Number of matches (valid in counting mode too, where `tuples`
    /// stays empty).
    pub fn len(&self) -> usize {
        self.metrics.output_tuples as usize
    }

    /// True when the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows as `(pattern node -> element NodeId)` bindings in
    /// canonical pattern-node order, sorted — a stable form for
    /// comparing results across plans.
    pub fn canonical_rows(&self) -> Vec<Vec<sjos_xml::NodeId>> {
        let mut order: Vec<usize> = (0..self.schema.width()).collect();
        order.sort_by_key(|&i| self.schema.columns()[i]);
        let mut rows: Vec<Vec<sjos_xml::NodeId>> =
            self.tuples.iter().map(|t| order.iter().map(|&i| t[i].node).collect()).collect();
        rows.sort_unstable();
        rows
    }
}

/// The raw batch stream of one execution, before any row-major
/// materialization — what planck's executed-plan lint inspects to
/// verify ordering and row-count invariants at the root boundary.
#[derive(Debug)]
pub struct BatchedResult {
    /// Column layout shared by every batch.
    pub schema: Arc<Schema>,
    /// The root operator's batches, in emission order.
    pub batches: Vec<TupleBatch>,
    /// Operator-level counters.
    pub metrics: MetricsSnapshot,
}

/// Execute `plan` for `pattern` against `store`, materializing every
/// result tuple.
///
/// The plan is validated first (every pattern node bound exactly once,
/// join inputs correctly ordered, axes matching); a malformed plan is
/// an optimizer bug surfaced as [`EngineError::InvalidPlan`]. A
/// storage fault that survives the buffer pool's retries surfaces as
/// [`EngineError::Storage`] — never a panic, never a silently wrong
/// answer.
pub fn execute(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, true, BATCH_ROWS, &Arc::new(QueryGuard::unlimited()), None)
}

/// [`execute`] under an explicit resource [`QueryGuard`]: deadline,
/// batch budget, memory budget, and cancellation are checked at every
/// batch boundary of the operator tree. On a breach the returned
/// [`EngineError::Guard`] carries the metrics accumulated so far.
pub fn execute_guarded(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    guard: &Arc<QueryGuard>,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, true, BATCH_ROWS, guard, None)
}

/// [`execute_guarded`] in *spill mode*: every sort in the plan may
/// degrade to a spill-to-disk external sort under `policy` instead of
/// breaching the guard's memory budget. Results are bit-identical to
/// the in-memory execution; the price is temp-page I/O, visible in
/// the result's metrics (`spilled_runs`, `spilled_bytes`) and I/O
/// counters (`spill_page_writes`, `spill_page_reads`). This is the
/// entry point the service's degraded admission path uses.
pub fn execute_guarded_spill(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    guard: &Arc<QueryGuard>,
    policy: SpillPolicy,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, true, BATCH_ROWS, guard, Some(policy))
}

/// [`execute_guarded_spill`] without result materialization.
pub fn execute_counting_guarded_spill(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    guard: &Arc<QueryGuard>,
    policy: SpillPolicy,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, false, BATCH_ROWS, guard, Some(policy))
}

/// [`execute_guarded_spill`] with an explicit batch granularity — the
/// spill twin of [`execute_guarded_with_batch_rows`], used by the
/// differential suites to prove spilling is invisible in the answer
/// at every batch size.
pub fn execute_spill_with_batch_rows(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
    policy: SpillPolicy,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, true, batch_rows, guard, Some(policy))
}

/// Like [`execute`], but discard tuples as they are produced (the
/// result's `tuples` is empty; `metrics.output_tuples` still counts
/// them). Use for measurement runs whose result sets would not fit
/// comfortably in memory — the plan still performs all its work.
pub fn execute_counting(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, false, BATCH_ROWS, &Arc::new(QueryGuard::unlimited()), None)
}

/// [`execute_counting`] under an explicit resource [`QueryGuard`].
pub fn execute_counting_guarded(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    guard: &Arc<QueryGuard>,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, false, BATCH_ROWS, guard, None)
}

/// [`execute_counting`] with an explicit batch granularity.
///
/// `batch_rows = 1` degenerates to the tuple-at-a-time engine this
/// refactor replaced (one dispatch and one metrics flush per tuple) —
/// the before/after knob the pipeline benchmark uses. Metrics totals
/// are identical for every batch size.
pub fn execute_counting_with_batch_rows(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    batch_rows: usize,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, false, batch_rows, &Arc::new(QueryGuard::unlimited()), None)
}

/// [`execute`] with an explicit batch granularity — the materializing
/// twin of [`execute_counting_with_batch_rows`], used by the
/// differential tests to prove batching is invisible in the answer.
pub fn execute_with_batch_rows(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    batch_rows: usize,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, true, batch_rows, &Arc::new(QueryGuard::unlimited()), None)
}

/// [`execute_guarded`] with an explicit batch granularity — the
/// entry point planck's bound-soundness lint (PL064) replays plans
/// through, so the guard's pull counter and the metrics' peak-bytes
/// high-water mark are both observable at any batch size.
pub fn execute_guarded_with_batch_rows(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
) -> Result<QueryResult, EngineError> {
    execute_opts(store, pattern, plan, true, batch_rows, guard, None)
}

/// Execute `plan` and keep the root operator's batches as emitted,
/// without flattening to row-major tuples. This is the inspection
/// entry point for planck's `PL034` executed-plan lint.
pub fn execute_batches(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
) -> Result<BatchedResult, EngineError> {
    plan.validate(pattern).map_err(EngineError::InvalidPlan)?;
    let metrics = ExecMetrics::new();
    let guard = Arc::new(QueryGuard::unlimited());
    let mut root = build_operator(store, pattern, plan, &metrics, BATCH_ROWS, &guard, None, None)?;
    let mut batches = Vec::new();
    let mut count: u64 = 0;
    loop {
        match root.next_batch() {
            Ok(Some(batch)) => {
                count += batch.len() as u64;
                batches.push(batch);
            }
            Ok(None) => break,
            Err(e) => {
                ExecMetrics::add(&metrics.output_tuples, count);
                return Err(attach_partial(e, &metrics));
            }
        }
    }
    ExecMetrics::add(&metrics.output_tuples, count);
    let schema = root.schema().clone();
    drop(root);
    Ok(BatchedResult { schema, batches, metrics: metrics.snapshot() })
}

/// Replace a guard breach's placeholder snapshot with the real
/// counters, so callers see how far the plan got before the stop.
pub(crate) fn attach_partial(e: EngineError, metrics: &ExecMetrics) -> EngineError {
    match e {
        EngineError::Guard { breach, .. } => {
            EngineError::Guard { breach, partial: Box::new(metrics.snapshot()) }
        }
        other => other,
    }
}

pub(crate) fn execute_opts(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    materialize: bool,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
    spill: Option<SpillPolicy>,
) -> Result<QueryResult, EngineError> {
    plan.validate(pattern).map_err(EngineError::InvalidPlan)?;
    let metrics = ExecMetrics::new();
    let io_before = store.stats().snapshot();
    let started = Instant::now();
    let mut root = build_operator(store, pattern, plan, &metrics, batch_rows, guard, spill, None)?;
    let mut tuples = Vec::new();
    let mut count: u64 = 0;
    let ordered_col = root.ordered_col();
    let mut check = OrderingCheck::new();
    loop {
        match root.next_batch() {
            Ok(Some(batch)) => {
                debug_assert!(!batch.is_empty(), "operators must not emit empty batches");
                check.check(&batch, ordered_col);
                count += batch.len() as u64;
                if materialize {
                    tuples.extend(batch.into_rows());
                }
            }
            Ok(None) => break,
            Err(e) => {
                ExecMetrics::add(&metrics.output_tuples, count);
                return Err(attach_partial(e, &metrics));
            }
        }
    }
    let elapsed = started.elapsed();
    ExecMetrics::add(&metrics.output_tuples, count);
    let schema = root.schema().as_ref().clone();
    drop(root);
    Ok(QueryResult {
        schema,
        tuples,
        metrics: metrics.snapshot(),
        io: store.stats().snapshot().since(&io_before),
        elapsed,
    })
}

/// Build the physical tree for `plan`, wrapping every operator in a
/// [`GuardedOp`] so guard checks run at each batch boundary (a
/// blocking sort's *input* pulls are guarded too — a runaway plan
/// stops within one batch even while materializing). Buffering
/// operators additionally report their growth to the guard's memory
/// budget.
///
/// `range` restricts every leaf scan to binding-list records whose
/// `region.start` falls in `[lo, hi)` — how the parallel executor
/// instantiates one morsel's pipeline (see [`crate::parallel`]).
/// `None` scans everything.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_operator<'a>(
    store: &'a XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    metrics: &Arc<ExecMetrics>,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
    spill: Option<SpillPolicy>,
    range: Option<(u32, u32)>,
) -> Result<BoxedOperator<'a>, EngineError> {
    let op: BoxedOperator<'a> = match plan {
        PlanNode::IndexScan { pnode } => {
            Box::new(build_scan(store, pattern, *pnode, metrics, range).with_batch_rows(batch_rows))
        }
        PlanNode::Sort { input, by } => {
            let child =
                build_operator(store, pattern, input, metrics, batch_rows, guard, spill, range)?;
            let mut sort = SortOp::new(child, *by, Arc::clone(metrics))?
                .with_batch_rows(batch_rows)
                .with_guard(Arc::clone(guard));
            if let Some(policy) = spill {
                sort = sort.with_spill(store.pool(), store.spill(), policy);
            }
            Box::new(sort)
        }
        PlanNode::StructuralJoin { left, right, anc, desc, axis, algo } => {
            let l = build_operator(store, pattern, left, metrics, batch_rows, guard, spill, range)?;
            let r =
                build_operator(store, pattern, right, metrics, batch_rows, guard, spill, range)?;
            match algo {
                crate::plan::JoinAlgo::MergeJoin => Box::new(
                    MergeJoinOp::new(l, r, *anc, *desc, *axis, Arc::clone(metrics))?
                        .with_batch_rows(batch_rows)
                        .with_guard(Arc::clone(guard)),
                ),
                _ => Box::new(
                    StackTreeJoinOp::new(l, r, *anc, *desc, *axis, *algo, Arc::clone(metrics))?
                        .with_batch_rows(batch_rows)
                        .with_guard(Arc::clone(guard)),
                ),
            }
        }
    };
    Ok(Box::new(GuardedOp::new(op, Arc::clone(guard))))
}

fn build_scan<'a>(
    store: &'a XmlStore,
    pattern: &Pattern,
    pnode: PnId,
    metrics: &Arc<ExecMetrics>,
    range: Option<(u32, u32)>,
) -> IndexScanOp<'a> {
    let pat_node = pattern.node(pnode);
    let filter = pat_node.predicate.as_ref().map(|p| match p {
        ValuePredicate::Equals(v) => value_digest(v),
    });
    if pat_node.is_wildcard() {
        // Wildcard: every element, via the heap file. The partitioner
        // never cuts a wildcard plan (the root's interval straddles
        // any cut), but a range here stays correct regardless: filter
        // the document-ordered heap stream by start.
        return match range {
            None => IndexScanOp::new(pnode, store.scan_all(), filter, Arc::clone(metrics)),
            Some((lo, hi)) => IndexScanOp::new(
                pnode,
                store
                    .scan_all()
                    .filter(move |r| r.as_ref().map_or(true, |r| r.region.start >= lo))
                    .take_while(move |r| r.as_ref().map_or(true, |r| r.region.start < hi)),
                filter,
                Arc::clone(metrics),
            ),
        };
    }
    match store.document().tag(&pat_node.tag) {
        Some(t) => {
            let iter = match range {
                None => store.scan_tag(t),
                Some((lo, hi)) => store.scan_tag_range(t, lo, hi),
            };
            IndexScanOp::new(pnode, iter, filter, Arc::clone(metrics))
        }
        // A tag absent from the document scans an empty list.
        None => IndexScanOp::new(pnode, std::iter::empty(), filter, Arc::clone(metrics)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GuardBreach;
    use crate::plan::JoinAlgo;
    use sjos_pattern::{parse_pattern, Axis};
    use sjos_xml::Document;

    fn store() -> XmlStore {
        let doc = Document::parse(
            "<db>\
               <dept><emp><name>ada</name></emp><emp><name>bob</name></emp></dept>\
               <dept><emp><name>cat</name></emp></dept>\
             </db>",
        )
        .unwrap();
        XmlStore::load(doc)
    }

    fn scan(i: u16) -> PlanNode {
        PlanNode::IndexScan { pnode: PnId(i) }
    }

    fn two_way_plan() -> PlanNode {
        PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Descendant,
            algo: JoinAlgo::StackTreeDesc,
        }
    }

    #[test]
    fn two_way_join_end_to_end() {
        let st = store();
        let pat = parse_pattern("//dept//emp").unwrap();
        let res = execute(&st, &pat, &two_way_plan()).unwrap();
        assert_eq!(res.len(), 3);
        assert_eq!(res.metrics.output_tuples, 3);
        assert!(res.io.record_reads > 0, "scans must flow through storage");
    }

    #[test]
    fn three_way_pipeline_matches_expected_count() {
        let st = store();
        let pat = parse_pattern("//dept/emp/name").unwrap();
        // ((dept ⋈ emp) ordered by emp) ⋈ name
        let inner = PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let plan = PlanNode::StructuralJoin {
            left: Box::new(inner),
            right: Box::new(scan(2)),
            anc: PnId(1),
            desc: PnId(2),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let res = execute(&st, &pat, &plan).unwrap();
        assert_eq!(res.len(), 3);
        assert!(plan.is_fully_pipelined());
    }

    #[test]
    fn sort_enables_order_mismatched_join() {
        let st = store();
        let pat = parse_pattern("//dept/emp/name").unwrap();
        // (dept ⋈ emp) ordered by dept (Anc), then SORT by emp, then ⋈ name.
        let inner = PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeAnc,
        };
        let plan = PlanNode::StructuralJoin {
            left: Box::new(PlanNode::Sort { input: Box::new(inner), by: PnId(1) }),
            right: Box::new(scan(2)),
            anc: PnId(1),
            desc: PnId(2),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let res = execute(&st, &pat, &plan).unwrap();
        assert_eq!(res.len(), 3);
        assert_eq!(res.metrics.sort_operations, 1);
        assert!(!plan.is_fully_pipelined());
    }

    #[test]
    fn plans_with_different_shapes_agree() {
        let st = store();
        let pat = parse_pattern("//dept/emp/name").unwrap();
        let pipelined = PlanNode::StructuralJoin {
            left: Box::new(PlanNode::StructuralJoin {
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
                anc: PnId(0),
                desc: PnId(1),
                axis: Axis::Child,
                algo: JoinAlgo::StackTreeDesc,
            }),
            right: Box::new(scan(2)),
            anc: PnId(1),
            desc: PnId(2),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        // name joined first: (emp ⋈ name) ordered by emp (Anc), then dept.
        let right_first = PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(PlanNode::StructuralJoin {
                left: Box::new(scan(1)),
                right: Box::new(scan(2)),
                anc: PnId(1),
                desc: PnId(2),
                axis: Axis::Child,
                algo: JoinAlgo::StackTreeAnc,
            }),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let a = execute(&st, &pat, &pipelined).unwrap();
        let b = execute(&st, &pat, &right_first).unwrap();
        assert_eq!(a.canonical_rows(), b.canonical_rows());
    }

    #[test]
    fn value_predicate_filters_results() {
        let st = store();
        let pat = parse_pattern("//emp/name[text()='ada']").unwrap();
        let plan = PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let res = execute(&st, &pat, &plan).unwrap();
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn unknown_tag_yields_empty_result() {
        let st = store();
        let pat = parse_pattern("//dept//ghost").unwrap();
        let res = execute(&st, &pat, &two_way_plan()).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn invalid_plan_is_rejected_not_executed() {
        let st = store();
        let pat = parse_pattern("//dept/emp/name").unwrap();
        let plan = PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let err = execute(&st, &pat, &plan).unwrap_err();
        assert!(matches!(err, EngineError::InvalidPlan(_)));
    }

    #[test]
    fn batch_rows_one_matches_default_engine() {
        let st = store();
        let pat = parse_pattern("//dept/emp/name").unwrap();
        let inner = PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let plan = PlanNode::StructuralJoin {
            left: Box::new(inner),
            right: Box::new(scan(2)),
            anc: PnId(1),
            desc: PnId(2),
            axis: Axis::Child,
            algo: JoinAlgo::StackTreeDesc,
        };
        let wide = execute_counting(&st, &pat, &plan).unwrap();
        let narrow = execute_counting_with_batch_rows(&st, &pat, &plan, 1).unwrap();
        assert_eq!(wide.metrics.output_tuples, narrow.metrics.output_tuples);
        assert_eq!(wide.metrics.produced_tuples, narrow.metrics.produced_tuples);
        assert_eq!(wide.metrics.stack_pushes, narrow.metrics.stack_pushes);
        assert_eq!(wide.metrics.stack_pops, narrow.metrics.stack_pops);
        assert_eq!(wide.metrics.scanned_records, narrow.metrics.scanned_records);
    }

    #[test]
    fn execute_batches_exposes_ordered_root_stream() {
        let st = store();
        let pat = parse_pattern("//dept//emp").unwrap();
        let res = execute_batches(&st, &pat, &two_way_plan()).unwrap();
        let rows: usize = res.batches.iter().map(TupleBatch::len).sum();
        assert_eq!(rows as u64, res.metrics.output_tuples);
        let col = res.schema.position(PnId(1)).unwrap();
        assert!(res.batches.iter().all(|b| b.is_sorted_by(col)));
    }

    #[test]
    fn batch_budget_halts_plan_with_partial_metrics() {
        let st = store();
        let pat = parse_pattern("//dept//emp").unwrap();
        // Budget of 1: the first join pull (which itself pulls scans)
        // exceeds it within one batch.
        let guard = Arc::new(QueryGuard::unlimited().with_batch_budget(1));
        let err = execute_guarded(&st, &pat, &two_way_plan(), &guard).unwrap_err();
        match err {
            EngineError::Guard { breach: GuardBreach::BatchBudget { limit }, .. } => {
                assert_eq!(limit, 1);
            }
            other => panic!("expected a batch-budget breach, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_execution_and_reports_partial_metrics() {
        let st = store();
        let pat = parse_pattern("//dept//emp").unwrap();
        let guard = Arc::new(QueryGuard::unlimited());
        guard.cancel_token().cancel();
        let err = execute_guarded(&st, &pat, &two_way_plan(), &guard).unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::Cancelled, .. }));
    }

    #[test]
    fn expired_deadline_stops_execution() {
        let st = store();
        let pat = parse_pattern("//dept//emp").unwrap();
        let guard = Arc::new(QueryGuard::unlimited().with_deadline(Duration::ZERO));
        let err = execute_guarded(&st, &pat, &two_way_plan(), &guard).unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::Deadline { .. }, .. }));
    }

    #[test]
    fn unlimited_guard_matches_plain_execution() {
        let st = store();
        let pat = parse_pattern("//dept//emp").unwrap();
        let guard = Arc::new(QueryGuard::unlimited());
        let guarded = execute_guarded(&st, &pat, &two_way_plan(), &guard).unwrap();
        let plain = execute(&st, &pat, &two_way_plan()).unwrap();
        assert_eq!(guarded.canonical_rows(), plain.canonical_rows());
        assert!(guard.batches_pulled() > 0, "guard observed the batch traffic");
    }

    #[test]
    fn guarded_faulty_store_reports_storage_error_not_panic() {
        use sjos_storage::{FaultPlan, RetryPolicy, StoreConfig};
        let doc = Document::parse(
            "<db><dept><emp><name>ada</name></emp><emp><name>bob</name></emp></dept></db>",
        )
        .unwrap();
        let st = XmlStore::load_faulty(
            doc,
            StoreConfig { retry: RetryPolicy::no_backoff(2), ..StoreConfig::default() },
            FaultPlan { seed: 11, sticky_corrupt: 1.0, ..FaultPlan::none() },
        );
        let pat = parse_pattern("//dept//emp").unwrap();
        let err = execute(&st, &pat, &two_way_plan()).unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)), "got {err:?}");
    }
}
