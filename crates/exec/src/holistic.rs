//! Holistic twig joins (TwigStack).
//!
//! The SJOS paper's future work points at "multi-way structural joins
//! as in \[5\]" — Bruno, Koudas & Srivastava's *Holistic Twig Joins*
//! (SIGMOD 2002). Instead of ordering binary structural joins, a
//! holistic join evaluates the whole twig at once with one linked
//! stack per pattern node:
//!
//! * **Phase 1** (TwigStack proper) advances all node streams in
//!   document order, pushing an element only when its ancestor chain
//!   is on the stacks, and emits *root-to-leaf path solutions* from
//!   the linked stacks whenever a leaf element arrives.
//! * **Phase 2** merge-joins the per-leaf path solution lists on
//!   their shared branch prefixes into complete twig matches.
//!
//! For patterns with only `//` edges, phase 1 is optimal (every
//! emitted path participates in some match). Parent-child (`/`)
//! edges are handled by filtering level adjacency during path
//! enumeration — correct, but no longer guaranteed
//! intermediate-result-optimal, exactly the caveat the TwigStack
//! paper notes.

use std::collections::HashMap;
use std::sync::Arc;

use sjos_pattern::{Axis, Pattern, PnId, ValuePredicate};
use sjos_storage::record::value_digest;
use sjos_storage::XmlStore;
use sjos_xml::NodeId;

use crate::error::EngineError;
use crate::metrics::ExecMetrics;
use crate::tuple::Entry;

/// Counters describing one holistic evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwigMetrics {
    /// Elements read from the node streams.
    pub stream_elements: u64,
    /// Elements pushed onto twig stacks.
    pub stack_pushes: u64,
    /// Root-to-leaf path solutions emitted by phase 1.
    pub path_solutions: u64,
    /// Complete twig matches produced by phase 2.
    pub matches: u64,
}

/// Result of a holistic twig evaluation: canonical rows (one
/// [`NodeId`] per pattern node, indexed by `PnId`) plus counters.
#[derive(Debug)]
pub struct TwigResult {
    /// Sorted canonical match rows.
    pub rows: Vec<Vec<NodeId>>,
    /// Work counters.
    pub metrics: TwigMetrics,
}

struct Stream {
    recs: Vec<Entry>,
    pos: usize,
}

impl Stream {
    fn head(&self) -> Option<Entry> {
        self.recs.get(self.pos).copied()
    }
    fn next_l(&self) -> u32 {
        self.head().map_or(u32::MAX, |e| e.region.start)
    }
    fn next_r(&self) -> u32 {
        self.head().map_or(u32::MAX, |e| e.region.end)
    }
    fn advance(&mut self) {
        self.pos += 1;
    }
    fn eof(&self) -> bool {
        self.pos >= self.recs.len()
    }
}

#[derive(Clone, Copy)]
struct StackElem {
    entry: Entry,
    /// Number of elements on the parent's stack when this was pushed
    /// (elements `0..parent_len` are candidate ancestors).
    parent_len: usize,
}

/// [`evaluate`], additionally reporting the twig counters through the
/// shared executor metrics so holistic runs are comparable with join
/// plans in a [`crate::metrics::MetricsSnapshot`]. The mapping:
///
/// * `stream_elements` → `scanned_records` (node-stream reads play
///   the role of index-scan record reads);
/// * `stack_pushes` → `stack_pushes` (twig stacks are the same
///   machinery as the binary join's ancestor stack);
/// * `path_solutions` → `buffered_pairs` (phase-1 paths are the
///   intermediate results parked for phase 2, like Stack-Tree-Anc's
///   self/inherit lists);
/// * `matches` → `produced_tuples` and `output_tuples`.
///
/// `stack_pops`, `sorted_tuples`, `sort_operations`, and
/// `merge_rescans` stay zero for this path.
pub fn evaluate_with_metrics(
    store: &XmlStore,
    pattern: &Pattern,
    metrics: &Arc<ExecMetrics>,
) -> Result<TwigResult, EngineError> {
    let result = evaluate(store, pattern)?;
    let tm = result.metrics;
    ExecMetrics::add(&metrics.scanned_records, tm.stream_elements);
    ExecMetrics::add(&metrics.stack_pushes, tm.stack_pushes);
    ExecMetrics::add(&metrics.buffered_pairs, tm.path_solutions);
    ExecMetrics::add(&metrics.produced_tuples, tm.matches);
    ExecMetrics::add(&metrics.output_tuples, tm.matches);
    Ok(result)
}

/// Collect one node stream, propagating any storage fault.
fn collect_stream<'a>(
    scan: impl Iterator<Item = Result<sjos_storage::ElementRecord, sjos_storage::StorageError>> + 'a,
    filter: Option<u64>,
) -> Result<Vec<Entry>, EngineError> {
    let mut recs = Vec::new();
    for rec in scan {
        let r = rec?;
        if filter.is_none_or(|f| r.value_hash == f) {
            recs.push(Entry { node: r.node, region: r.region });
        }
    }
    Ok(recs)
}

/// Evaluate `pattern` against `store` holistically.
///
/// # Errors
/// [`EngineError::Storage`] when a node-stream scan hits a storage
/// fault that survived the buffer pool's retries.
pub fn evaluate(store: &XmlStore, pattern: &Pattern) -> Result<TwigResult, EngineError> {
    let mut metrics = TwigMetrics::default();
    let n = pattern.len();
    // Per-node streams: index scans with value predicates applied.
    let mut streams: Vec<Stream> = Vec::with_capacity(n);
    for id in pattern.node_ids() {
        let pnode = pattern.node(id);
        let filter = pnode.predicate.as_ref().map(|p| match p {
            ValuePredicate::Equals(v) => value_digest(v),
        });
        let recs: Vec<Entry> = if pnode.is_wildcard() {
            collect_stream(store.scan_all(), filter)?
        } else {
            match store.document().tag(&pnode.tag) {
                Some(tag) => collect_stream(store.scan_tag(tag), filter)?,
                None => Vec::new(),
            }
        };
        metrics.stream_elements += recs.len() as u64;
        streams.push(Stream { recs, pos: 0 });
    }
    let mut stacks: Vec<Vec<StackElem>> = vec![Vec::new(); n];

    // Root-first node lists of each root-to-leaf pattern path.
    let leaf_paths: Vec<Vec<PnId>> = root_to_leaf_paths(pattern);
    let mut path_solutions: Vec<Vec<Vec<Entry>>> = vec![Vec::new(); leaf_paths.len()];
    let leaf_path_of: HashMap<PnId, usize> = leaf_paths
        .iter()
        .enumerate()
        .map(|(i, p)| (*p.last().expect("non-empty path"), i))
        .collect();

    let root = pattern.root();
    loop {
        // End condition: every leaf stream exhausted.
        if leaf_path_of.keys().all(|&q| streams[q.index()].eof()) {
            break;
        }
        let q_act = get_next(pattern, &mut streams, root);
        if streams[q_act.index()].eof() {
            // The chosen subtree is exhausted; no further solutions
            // can involve it, so nothing else can complete either.
            break;
        }
        let head = streams[q_act.index()].head().expect("not eof");
        if let Some(parent) = pattern.parent(q_act) {
            clean_stack(&mut stacks[parent.index()], head.region.start);
        }
        let parent_ok = match pattern.parent(q_act) {
            None => true,
            Some(parent) => !stacks[parent.index()].is_empty(),
        };
        if parent_ok {
            clean_stack(&mut stacks[q_act.index()], head.region.start);
            let parent_len = pattern.parent(q_act).map_or(0, |p| stacks[p.index()].len());
            if let Some(&path_idx) = leaf_path_of.get(&q_act) {
                // Leaf: emit path solutions directly; no push needed.
                let path = &leaf_paths[path_idx];
                emit_paths(
                    pattern,
                    &stacks,
                    path,
                    StackElem { entry: head, parent_len },
                    &mut path_solutions[path_idx],
                    &mut metrics,
                );
            } else {
                stacks[q_act.index()].push(StackElem { entry: head, parent_len });
                metrics.stack_pushes += 1;
            }
        }
        streams[q_act.index()].advance();
    }

    // Phase 2: merge path solutions into twig matches.
    let rows = merge_paths(pattern, &leaf_paths, path_solutions, &mut metrics);
    Ok(TwigResult { rows, metrics })
}

/// All root-to-leaf node sequences of the pattern (root first).
fn root_to_leaf_paths(pattern: &Pattern) -> Vec<Vec<PnId>> {
    let mut out = Vec::new();
    let mut stack = vec![vec![pattern.root()]];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("non-empty");
        let kids = pattern.children(last);
        if kids.is_empty() {
            out.push(path);
        } else {
            for &k in kids {
                let mut next = path.clone();
                next.push(k);
                stack.push(next);
            }
        }
    }
    out.sort();
    out
}

/// TwigStack's `getNext`: the pattern node whose stream head is
/// guaranteed to be processable next.
fn get_next(pattern: &Pattern, streams: &mut [Stream], q: PnId) -> PnId {
    let kids: Vec<PnId> = pattern.children(q).to_vec();
    if kids.is_empty() {
        return q;
    }
    for &qi in &kids {
        let ni = get_next(pattern, streams, qi);
        // A deeper node must be consumed first — unless its stream is
        // exhausted, in which case that branch can produce nothing
        // new and the other branches proceed (exhausted streams act
        // as +infinity below).
        if ni != qi && !streams[ni.index()].eof() {
            return ni;
        }
    }
    let n_min =
        kids.iter().copied().min_by_key(|qi| streams[qi.index()].next_l()).expect("kids non-empty");
    let n_max =
        kids.iter().copied().max_by_key(|qi| streams[qi.index()].next_l()).expect("kids non-empty");
    while streams[q.index()].next_r() < streams[n_max.index()].next_l() {
        streams[q.index()].advance();
    }
    if streams[q.index()].next_l() < streams[n_min.index()].next_l() {
        q
    } else {
        n_min
    }
}

fn clean_stack(stack: &mut Vec<StackElem>, next_l: u32) {
    while let Some(top) = stack.last() {
        if top.entry.region.end < next_l {
            stack.pop();
        } else {
            break;
        }
    }
}

/// Enumerate the root-to-leaf solutions ending in `leaf_elem`, using
/// the linked stacks, applying `/`-edge level filters.
fn emit_paths(
    pattern: &Pattern,
    stacks: &[Vec<StackElem>],
    path: &[PnId],
    leaf_elem: StackElem,
    out: &mut Vec<Vec<Entry>>,
    metrics: &mut TwigMetrics,
) {
    // bindings[i] holds the entry for path[i]; fill from the leaf up.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        pattern: &Pattern,
        stacks: &[Vec<StackElem>],
        path: &[PnId],
        depth: usize,
        below: StackElem,
        bindings: &mut Vec<Entry>,
        out: &mut Vec<Vec<Entry>>,
        metrics: &mut TwigMetrics,
    ) {
        if depth == 0 {
            let mut solution = bindings.clone();
            solution.reverse();
            metrics.path_solutions += 1;
            out.push(solution);
            return;
        }
        let parent_node = path[depth - 1];
        let child_node = path[depth];
        let axis = pattern.edge_between(parent_node, child_node).expect("path edge").axis;
        let parent_stack = &stacks[parent_node.index()];
        for cand in parent_stack.iter().take(below.parent_len) {
            // Strict containment check: with self-joining tags the
            // same element can sit on adjacent stacks with equal
            // regions, which must not pair with itself.
            if !cand.entry.region.contains(below.entry.region) {
                continue;
            }
            if axis == Axis::Child && cand.entry.region.level + 1 != below.entry.region.level {
                continue;
            }
            bindings.push(cand.entry);
            rec(pattern, stacks, path, depth - 1, *cand, bindings, out, metrics);
            bindings.pop();
        }
    }
    let mut bindings = vec![leaf_elem.entry];
    rec(pattern, stacks, path, path.len() - 1, leaf_elem, &mut bindings, out, metrics);
}

/// Phase 2: join per-leaf path solution lists on shared prefixes.
fn merge_paths(
    pattern: &Pattern,
    leaf_paths: &[Vec<PnId>],
    path_solutions: Vec<Vec<Vec<Entry>>>,
    metrics: &mut TwigMetrics,
) -> Vec<Vec<NodeId>> {
    // Accumulated rows: per-pattern-node binding (NodeId), u32::MAX
    // when unbound.
    let unbound = NodeId(u32::MAX);
    let mut acc: Vec<Vec<NodeId>> = vec![vec![unbound; pattern.len()]];
    let mut bound: Vec<PnId> = Vec::new();
    for (path, solutions) in leaf_paths.iter().zip(path_solutions) {
        let shared: Vec<PnId> = path.iter().copied().filter(|p| bound.contains(p)).collect();
        let fresh: Vec<PnId> = path.iter().copied().filter(|p| !bound.contains(p)).collect();
        // Hash the new path's solutions by their shared-prefix key.
        let mut by_key: HashMap<Vec<NodeId>, Vec<Vec<Entry>>> = HashMap::new();
        for sol in solutions {
            let key: Vec<NodeId> = shared
                .iter()
                .map(|p| {
                    let idx = path.iter().position(|x| x == p).expect("shared on path");
                    sol[idx].node
                })
                .collect();
            by_key.entry(key).or_default().push(sol);
        }
        let mut next_acc = Vec::new();
        for row in &acc {
            let key: Vec<NodeId> = shared.iter().map(|p| row[p.index()]).collect();
            if let Some(sols) = by_key.get(&key) {
                for sol in sols {
                    let mut merged = row.clone();
                    for p in &fresh {
                        let idx = path.iter().position(|x| x == p).expect("on path");
                        merged[p.index()] = sol[idx].node;
                    }
                    next_acc.push(merged);
                }
            }
        }
        acc = next_acc;
        for p in fresh {
            bound.push(p);
        }
        if acc.is_empty() {
            break;
        }
    }
    // A single-node pattern has one "path" of length 1 handled above;
    // rows with any unbound column can only arise from the empty
    // pattern, which the API excludes.
    acc.retain(|row| row.iter().all(|&b| b != unbound));
    acc.sort_unstable();
    acc.dedup();
    metrics.matches = acc.len() as u64;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use sjos_pattern::parse_pattern;
    use sjos_xml::Document;

    fn check(xml: &str, query: &str) {
        let doc = Document::parse(xml).unwrap();
        let expected = naive::evaluate(&doc, &parse_pattern(query).unwrap());
        let store = XmlStore::load(doc);
        let pattern = parse_pattern(query).unwrap();
        let got = evaluate(&store, &pattern).unwrap();
        assert_eq!(got.rows, expected, "{query}");
        assert_eq!(got.metrics.matches as usize, expected.len());
    }

    const XML: &str = "<db>\
        <dept><emp><name>a</name></emp><emp><name>b</name><name>c</name></emp></dept>\
        <dept><emp><name>d</name></emp><note/></dept>\
    </db>";

    #[test]
    fn path_patterns() {
        check(XML, "//dept/emp/name");
        check(XML, "//db//name");
        check(XML, "//dept//name");
    }

    #[test]
    fn branching_patterns() {
        check(XML, "//dept[./emp/name][./note]");
        check(XML, "//db[.//emp][.//note]");
        check(XML, "//dept[./emp][./emp/name]");
    }

    #[test]
    fn value_predicates() {
        check(XML, "//emp/name[text()='b']");
        check(XML, "//dept[./emp/name[text()='zzz']]");
    }

    #[test]
    fn self_nesting() {
        check("<m><m><x/><m><x/></m></m></m>", "//m//m//x");
        check("<m><m><x/><m><x/></m></m></m>", "//m/m/x");
    }

    #[test]
    fn single_node_pattern() {
        check(XML, "//emp");
    }

    #[test]
    fn missing_tag() {
        check(XML, "//dept/ghost");
    }

    #[test]
    fn metrics_count_path_solutions() {
        let doc = Document::parse(XML).unwrap();
        let store = XmlStore::load(doc);
        let pattern = parse_pattern("//dept/emp/name").unwrap();
        let res = evaluate(&store, &pattern).unwrap();
        assert!(res.metrics.path_solutions >= res.metrics.matches);
        assert!(res.metrics.stream_elements > 0);
    }

    #[test]
    fn exec_metrics_mirror_twig_counters() {
        let doc = Document::parse(XML).unwrap();
        let store = XmlStore::load(doc);
        let pattern = parse_pattern("//dept/emp/name").unwrap();
        let m = ExecMetrics::new();
        let res = evaluate_with_metrics(&store, &pattern, &m).unwrap();
        let s = m.snapshot();
        assert_eq!(s.scanned_records, res.metrics.stream_elements);
        assert_eq!(s.stack_pushes, res.metrics.stack_pushes);
        assert_eq!(s.buffered_pairs, res.metrics.path_solutions);
        assert_eq!(s.output_tuples, res.metrics.matches);
        assert_eq!(s.produced_tuples, res.metrics.matches);
        assert_eq!(s.merge_rescans, 0);
    }

    #[test]
    fn descendant_only_twig_has_no_useless_paths() {
        // For //-only twigs TwigStack emits only paths that join.
        let doc = Document::parse(XML).unwrap();
        let store = XmlStore::load(doc);
        let pattern = parse_pattern("//db[.//emp][.//note]").unwrap();
        let res = evaluate(&store, &pattern).unwrap();
        // Every emitted path must appear in some final match.
        assert!(res.metrics.path_solutions <= res.metrics.matches * 2);
    }
}
