//! Navigational (non-join) pattern evaluation.
//!
//! This is the paper's Example 2.2 cautionary baseline: find
//! candidates through the tag lists, then check structural
//! relationships pairwise while enumerating bindings. It is simple
//! and obviously correct, so the test suite uses it as ground truth
//! for every structural-join plan.

use std::sync::Arc;

use sjos_pattern::{Axis, Pattern, PnId, ValuePredicate};
use sjos_xml::{Document, NodeId};

use crate::metrics::ExecMetrics;

/// All matches of `pattern` in `doc`, as rows of element ids in
/// pattern-node order (row `r[i]` binds pattern node `i`), sorted.
pub fn evaluate(doc: &Document, pattern: &Pattern) -> Vec<Vec<NodeId>> {
    evaluate_with_metrics(doc, pattern, &ExecMetrics::new())
}

/// [`evaluate`], reporting its work through the shared executor
/// counters so a [`crate::metrics::MetricsSnapshot`] can compare the
/// navigational baseline against join plans. The mapping:
///
/// * `scanned_records` — candidate elements examined during the
///   binding search (one per tag-list/heap element visited at each
///   pattern-node depth, so re-visits under different partial
///   bindings count each time);
/// * `produced_tuples` / `output_tuples` — complete binding rows.
///
/// Stack, sort, buffer, and rescan counters stay zero: the tree walk
/// has no such machinery.
pub fn evaluate_with_metrics(
    doc: &Document,
    pattern: &Pattern,
    metrics: &Arc<ExecMetrics>,
) -> Vec<Vec<NodeId>> {
    // Bind nodes in pre-order: each node's parent is bound before it.
    let mut order = Vec::with_capacity(pattern.len());
    let mut stack = vec![pattern.root()];
    while let Some(n) = stack.pop() {
        order.push(n);
        for &c in pattern.children(n) {
            stack.push(c);
        }
    }
    let mut binding = vec![NodeId(u32::MAX); pattern.len()];
    let mut rows = Vec::new();
    let mut scanned: u64 = 0;
    search(doc, pattern, &order, 0, &mut binding, &mut rows, &mut scanned);
    rows.sort_unstable();
    ExecMetrics::add(&metrics.scanned_records, scanned);
    ExecMetrics::add(&metrics.produced_tuples, rows.len() as u64);
    ExecMetrics::add(&metrics.output_tuples, rows.len() as u64);
    rows
}

#[allow(clippy::too_many_arguments)]
fn search(
    doc: &Document,
    pattern: &Pattern,
    order: &[PnId],
    depth: usize,
    binding: &mut Vec<NodeId>,
    rows: &mut Vec<Vec<NodeId>>,
    scanned: &mut u64,
) {
    if depth == order.len() {
        rows.push(binding.clone());
        return;
    }
    let pnode = order[depth];
    let pat_node = pattern.node(pnode);
    let all_ids: Vec<NodeId>;
    let ids: &[NodeId] = if pat_node.is_wildcard() {
        all_ids = (0..doc.len() as u32).map(NodeId).collect();
        &all_ids
    } else {
        match doc.tag(&pat_node.tag) {
            Some(tag) => doc.elements_with_tag(tag),
            None => &[],
        }
    };
    *scanned += ids.len() as u64;
    let relation = pattern.parent(pnode).map(|parent| {
        let axis = pattern.edge_between(parent, pnode).expect("tree edge").axis;
        (doc.region(binding[parent.index()]), axis)
    });
    for &cand in ids {
        if let Some((parent_region, axis)) = relation {
            let cand_region = doc.region(cand);
            let ok = match axis {
                Axis::Descendant => parent_region.contains(cand_region),
                Axis::Child => parent_region.is_parent_of(cand_region),
            };
            if !ok {
                continue;
            }
        }
        match &pat_node.predicate {
            Some(ValuePredicate::Equals(v)) if doc.node(cand).text != *v => continue,
            _ => {}
        }
        binding[pnode.index()] = cand;
        search(doc, pattern, order, depth + 1, binding, rows, scanned);
        binding[pnode.index()] = NodeId(u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_pattern::parse_pattern;

    fn doc() -> Document {
        Document::parse(
            "<db>\
               <dept><emp><name>ada</name></emp><emp><name>bob</name><name>b2</name></emp></dept>\
               <dept><emp><name>cat</name></emp></dept>\
             </db>",
        )
        .unwrap()
    }

    #[test]
    fn simple_chain_counts() {
        let d = doc();
        let p = parse_pattern("//dept/emp/name").unwrap();
        let rows = evaluate(&d, &p);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn descendant_axis_counts() {
        let d = doc();
        let p = parse_pattern("//db//name").unwrap();
        assert_eq!(evaluate(&d, &p).len(), 4);
    }

    #[test]
    fn branching_pattern_counts_all_bindings() {
        let d = doc();
        let p = parse_pattern("//dept[./emp/name]").unwrap();
        assert_eq!(p.len(), 3);
        // dept1: emp1->ada, emp2->bob, emp2->b2 = 3; dept2: 1.
        assert_eq!(evaluate(&d, &p).len(), 4);
    }

    #[test]
    fn value_predicates_restrict() {
        let d = doc();
        let p = parse_pattern("//dept/emp[./name[text()='bob']]").unwrap();
        assert_eq!(evaluate(&d, &p).len(), 1);
    }

    #[test]
    fn missing_tag_no_matches() {
        let d = doc();
        let p = parse_pattern("//dept/ghost").unwrap();
        assert!(evaluate(&d, &p).is_empty());
    }

    #[test]
    fn rows_bind_every_pattern_node() {
        let d = doc();
        let p = parse_pattern("//dept[./emp/name][./emp]").unwrap();
        for row in evaluate(&d, &p) {
            assert_eq!(row.len(), p.len());
            assert!(row.iter().all(|id| id.0 != u32::MAX));
        }
    }

    #[test]
    fn two_branch_bindings_multiply() {
        let d = doc();
        // dept with an emp branch and a name branch (independent).
        let p = parse_pattern("//dept[./emp][.//name]").unwrap();
        // dept1: 2 emps x 3 names = 6; dept2: 1 x 1 = 1.
        assert_eq!(evaluate(&d, &p).len(), 7);
    }

    #[test]
    fn self_nesting_pattern() {
        let d = Document::parse("<m><x/><m><x/><m><x/></m></m></m>").unwrap();
        let p = parse_pattern("//m//m").unwrap();
        assert_eq!(evaluate(&d, &p).len(), 3);
    }

    #[test]
    fn metrics_report_search_work() {
        let d = doc();
        let p = parse_pattern("//dept/emp/name").unwrap();
        let m = ExecMetrics::new();
        let rows = evaluate_with_metrics(&d, &p, &m);
        let s = m.snapshot();
        assert_eq!(s.output_tuples as usize, rows.len());
        assert_eq!(s.produced_tuples, s.output_tuples);
        assert!(s.scanned_records >= rows.len() as u64);
        assert_eq!(s.stack_pushes, 0, "the tree walk has no stacks");
    }

    #[test]
    fn duplicate_rows_do_not_appear() {
        let d = doc();
        let p = parse_pattern("//dept/emp").unwrap();
        let rows = evaluate(&d, &p);
        let mut dedup = rows.clone();
        dedup.dedup();
        assert_eq!(rows, dedup);
    }
}
