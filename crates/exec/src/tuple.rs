//! Tuples, schemas, and columnar batches for intermediate results.
//!
//! The executor moves data in [`TupleBatch`]es — column-major arrays
//! of [`Entry`] values sharing one [`Schema`] — rather than one
//! heap-allocated row at a time. Row-major [`Tuple`]s remain the
//! interchange format at the edges (materialized query results, join
//! stack entries, test fixtures).

use std::sync::Arc;

use sjos_pattern::PnId;
use sjos_xml::{NodeId, Region};

/// Default number of rows per [`TupleBatch`]: large enough to
/// amortize virtual dispatch and atomic metric updates over ~1K rows,
/// small enough that a batch of a few columns stays cache-resident.
pub const BATCH_ROWS: usize = 1024;

/// One column value: the bound element's identity and region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The bound element.
    pub node: NodeId,
    /// Its region encoding (kept inline so joins never chase the
    /// document).
    pub region: Region,
}

/// A row of an intermediate result: one [`Entry`] per schema column.
pub type Tuple = Vec<Entry>;

/// Column layout of an intermediate result: which pattern node each
/// column binds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<PnId>,
}

impl Schema {
    /// Single-column schema.
    pub fn singleton(id: PnId) -> Schema {
        Schema { columns: vec![id] }
    }

    /// Build from explicit columns.
    ///
    /// # Panics
    /// Panics if a pattern node repeats.
    pub fn new(columns: Vec<PnId>) -> Schema {
        let mut sorted = columns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), columns.len(), "duplicate column in schema");
        Schema { columns }
    }

    /// Concatenation `self ++ other` (as a join produces it).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend_from_slice(&other.columns);
        Schema::new(columns)
    }

    /// Columns in layout order.
    pub fn columns(&self) -> &[PnId] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Position of the column binding `id`.
    pub fn position(&self, id: PnId) -> Option<usize> {
        self.columns.iter().position(|&c| c == id)
    }

    /// True if the schema binds `id`.
    pub fn binds(&self, id: PnId) -> bool {
        self.position(id).is_some()
    }
}

/// A column-major batch of rows sharing one [`Schema`].
///
/// Invariant: every column vector has the same length (`len()`).
/// Batches produced by operators are never empty — end-of-stream is
/// signalled by `None` from [`crate::ops::Operator::next_batch`], not
/// by an empty batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleBatch {
    schema: Arc<Schema>,
    columns: Vec<Vec<Entry>>,
}

impl TupleBatch {
    /// Empty batch for `schema` with no reserved capacity.
    pub fn new(schema: Arc<Schema>) -> TupleBatch {
        TupleBatch::with_capacity(schema, 0)
    }

    /// Empty batch for `schema`, each column pre-reserving `cap` rows.
    pub fn with_capacity(schema: Arc<Schema>, cap: usize) -> TupleBatch {
        let width = schema.width();
        TupleBatch { schema, columns: (0..width).map(|_| Vec::with_capacity(cap)).collect() }
    }

    /// Build a batch from row-major tuples (each must match the
    /// schema width).
    pub fn from_rows<'a, I>(schema: Arc<Schema>, rows: I) -> TupleBatch
    where
        I: IntoIterator<Item = &'a [Entry]>,
    {
        let mut batch = TupleBatch::new(schema);
        for row in rows {
            batch.push_row(row);
        }
        batch
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns (schema width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column `col` as a contiguous slice.
    pub fn column(&self, col: usize) -> &[Entry] {
        &self.columns[col]
    }

    /// Entry at (`col`, `row`).
    pub fn entry(&self, col: usize, row: usize) -> Entry {
        self.columns[col][row]
    }

    /// Row `row` materialized as a row-major [`Tuple`].
    pub fn row(&self, row: usize) -> Tuple {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Append a row-major row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the schema width.
    pub fn push_row(&mut self, row: &[Entry]) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        for (col, &e) in self.columns.iter_mut().zip(row) {
            col.push(e);
        }
    }

    /// Append one entry to each column starting at `col_offset`,
    /// copying row `src_row` of `src` column-by-column. Used by joins
    /// to splice a source batch's row into a wider output row.
    pub fn extend_row_from(&mut self, col_offset: usize, src: &TupleBatch, src_row: usize) {
        for (dst, srccol) in self.columns[col_offset..].iter_mut().zip(&src.columns) {
            dst.push(srccol[src_row]);
        }
    }

    /// Append one row formed by concatenating two row fragments (a
    /// join's left and right halves) without materializing the
    /// combined row first.
    ///
    /// # Panics
    /// Panics if the fragments don't add up to the schema width.
    pub fn push_concat(&mut self, a: &[Entry], b: &[Entry]) {
        assert_eq!(a.len() + b.len(), self.columns.len(), "row width mismatch");
        for (col, &e) in self.columns.iter_mut().zip(a.iter().chain(b)) {
            col.push(e);
        }
    }

    /// Bulk-append entries to a single column. The caller must bring
    /// all columns back to equal lengths before the batch is read —
    /// this is the gather/emission primitive for sort and joins.
    pub(crate) fn extend_column<I: IntoIterator<Item = Entry>>(&mut self, col: usize, entries: I) {
        self.columns[col].extend(entries);
    }

    /// Mutable access to one column (same caveat as
    /// [`TupleBatch::extend_column`]).
    pub(crate) fn column_mut(&mut self, col: usize) -> &mut Vec<Entry> {
        &mut self.columns[col]
    }

    /// True if column `col` is non-decreasing in `(region.start,
    /// region.end)` — the document order every operator boundary
    /// promises for its `ordered_col`.
    pub fn is_sorted_by(&self, col: usize) -> bool {
        self.columns[col]
            .windows(2)
            .all(|w| (w[0].region.start, w[0].region.end) <= (w[1].region.start, w[1].region.end))
    }

    /// Drain the batch into row-major tuples.
    pub fn into_rows(self) -> Vec<Tuple> {
        (0..self.len()).map(|r| self.row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_schema() {
        let s = Schema::singleton(PnId(3));
        assert_eq!(s.width(), 1);
        assert_eq!(s.position(PnId(3)), Some(0));
        assert!(!s.binds(PnId(0)));
    }

    #[test]
    fn concat_preserves_order() {
        let a = Schema::new(vec![PnId(0), PnId(2)]);
        let b = Schema::new(vec![PnId(1)]);
        let c = a.concat(&b);
        assert_eq!(c.columns(), &[PnId(0), PnId(2), PnId(1)]);
        assert_eq!(c.position(PnId(1)), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let a = Schema::new(vec![PnId(0)]);
        let _ = a.concat(&Schema::new(vec![PnId(0)]));
    }

    fn e(start: u32, end: u32) -> Entry {
        Entry { node: NodeId(start), region: Region { start, end, level: 1 } }
    }

    #[test]
    fn batch_round_trip() {
        let schema = Arc::new(Schema::new(vec![PnId(0), PnId(1)]));
        let mut b = TupleBatch::with_capacity(schema.clone(), 4);
        assert!(b.is_empty());
        b.push_row(&[e(1, 10), e(2, 3)]);
        b.push_row(&[e(4, 9), e(5, 6)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.width(), 2);
        assert_eq!(b.entry(1, 0), e(2, 3));
        assert_eq!(b.row(1), vec![e(4, 9), e(5, 6)]);
        assert_eq!(b.column(0), &[e(1, 10), e(4, 9)]);
        assert_eq!(b.clone().into_rows().len(), 2);
    }

    #[test]
    fn batch_extend_row_from() {
        let left = Arc::new(Schema::singleton(PnId(0)));
        let right = Arc::new(Schema::singleton(PnId(1)));
        let out = Arc::new(left.concat(&right));
        let mut rb = TupleBatch::new(right.clone());
        rb.push_row(&[e(2, 3)]);
        let mut ob = TupleBatch::new(out);
        ob.push_row(&[e(1, 10), e(7, 8)]);
        // Splice right row 0 into a new output row after a left entry.
        ob.columns[0].push(e(1, 10));
        ob.extend_row_from(1, &rb, 0);
        assert_eq!(ob.row(1), vec![e(1, 10), e(2, 3)]);
    }

    #[test]
    fn batch_sortedness_check() {
        let schema = Arc::new(Schema::singleton(PnId(0)));
        let mut b = TupleBatch::new(schema);
        b.push_row(&[e(1, 10)]);
        b.push_row(&[e(1, 12)]);
        b.push_row(&[e(4, 9)]);
        assert!(b.is_sorted_by(0));
        b.push_row(&[e(2, 3)]);
        assert!(!b.is_sorted_by(0));
    }
}
