//! Tuples and schemas for intermediate results.

use sjos_pattern::PnId;
use sjos_xml::{NodeId, Region};

/// One column value: the bound element's identity and region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The bound element.
    pub node: NodeId,
    /// Its region encoding (kept inline so joins never chase the
    /// document).
    pub region: Region,
}

/// A row of an intermediate result: one [`Entry`] per schema column.
pub type Tuple = Vec<Entry>;

/// Column layout of an intermediate result: which pattern node each
/// column binds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<PnId>,
}

impl Schema {
    /// Single-column schema.
    pub fn singleton(id: PnId) -> Schema {
        Schema { columns: vec![id] }
    }

    /// Build from explicit columns.
    ///
    /// # Panics
    /// Panics if a pattern node repeats.
    pub fn new(columns: Vec<PnId>) -> Schema {
        let mut sorted = columns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), columns.len(), "duplicate column in schema");
        Schema { columns }
    }

    /// Concatenation `self ++ other` (as a join produces it).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend_from_slice(&other.columns);
        Schema::new(columns)
    }

    /// Columns in layout order.
    pub fn columns(&self) -> &[PnId] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Position of the column binding `id`.
    pub fn position(&self, id: PnId) -> Option<usize> {
        self.columns.iter().position(|&c| c == id)
    }

    /// True if the schema binds `id`.
    pub fn binds(&self, id: PnId) -> bool {
        self.position(id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_schema() {
        let s = Schema::singleton(PnId(3));
        assert_eq!(s.width(), 1);
        assert_eq!(s.position(PnId(3)), Some(0));
        assert!(!s.binds(PnId(0)));
    }

    #[test]
    fn concat_preserves_order() {
        let a = Schema::new(vec![PnId(0), PnId(2)]);
        let b = Schema::new(vec![PnId(1)]);
        let c = a.concat(&b);
        assert_eq!(c.columns(), &[PnId(0), PnId(2), PnId(1)]);
        assert_eq!(c.position(PnId(1)), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let a = Schema::new(vec![PnId(0)]);
        let _ = a.concat(&Schema::new(vec![PnId(0)]));
    }
}
