//! Index scan operator.

use std::sync::Arc;

use sjos_pattern::PnId;
use sjos_storage::{ElementRecord, StorageError};

use crate::error::EngineError;
use crate::metrics::ExecMetrics;
use crate::ops::Operator;
use crate::tuple::{Entry, Schema, TupleBatch, BATCH_ROWS};

/// Streams one pattern node's binding list in document order,
/// optionally filtering by a value digest (equality predicates are
/// pushed into the scan, as the paper assumes every node predicate is
/// index-evaluable). The underlying record stream is a tag-index scan
/// for named nodes or a heap-file scan for wildcard nodes.
///
/// Records are packed straight into columnar batches; the two metric
/// counters (`scanned_records`, `produced_tuples`) are accumulated
/// locally and flushed with one atomic add each per batch. A storage
/// fault in the underlying scan (a page read that survived the buffer
/// pool's retries) surfaces as [`EngineError::Storage`]; the counters
/// for records read before the fault are still flushed, so partial
/// metrics stay honest.
pub struct IndexScanOp<'a> {
    iter: Box<dyn Iterator<Item = Result<ElementRecord, StorageError>> + Send + 'a>,
    schema: Arc<Schema>,
    /// Keep-only digest (from [`sjos_storage::record::value_digest`]).
    value_filter: Option<u64>,
    metrics: Arc<ExecMetrics>,
    batch_rows: usize,
}

impl<'a> IndexScanOp<'a> {
    /// Scan `pnode`'s list via `iter` (records must arrive in
    /// document order).
    pub fn new(
        pnode: PnId,
        iter: impl Iterator<Item = Result<ElementRecord, StorageError>> + Send + 'a,
        value_filter: Option<u64>,
        metrics: Arc<ExecMetrics>,
    ) -> Self {
        IndexScanOp {
            iter: Box::new(iter),
            schema: Arc::new(Schema::singleton(pnode)),
            value_filter,
            metrics,
            batch_rows: BATCH_ROWS,
        }
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]).
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }
}

impl Operator for IndexScanOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        0
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        let mut batch = TupleBatch::with_capacity(self.schema.clone(), self.batch_rows);
        let mut scanned = 0u64;
        let mut fault: Option<StorageError> = None;
        while batch.len() < self.batch_rows {
            let rec = match self.iter.next() {
                Some(Ok(rec)) => rec,
                Some(Err(e)) => {
                    fault = Some(e);
                    break;
                }
                None => break,
            };
            scanned += 1;
            if let Some(want) = self.value_filter {
                if rec.value_hash != want {
                    continue;
                }
            }
            batch.push_row(&[Entry { node: rec.node, region: rec.region }]);
        }
        if scanned > 0 {
            ExecMetrics::add(&self.metrics.scanned_records, scanned);
        }
        if let Some(e) = fault {
            return Err(EngineError::Storage(e));
        }
        if batch.is_empty() {
            return Ok(None);
        }
        ExecMetrics::add(&self.metrics.produced_tuples, batch.len() as u64);
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_storage::record::value_digest;
    use sjos_storage::XmlStore;
    use sjos_xml::Document;

    fn store() -> XmlStore {
        let doc = Document::parse("<r><e><n>a</n></e><e><n>b</n></e><e><n>a</n></e></r>").unwrap();
        XmlStore::load(doc)
    }

    #[test]
    fn scan_streams_in_document_order() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op = IndexScanOp::new(PnId(0), st.scan_tag(tag), None, Arc::clone(&m));
        let mut starts = vec![];
        while let Some(b) = op.next_batch().unwrap() {
            assert!(!b.is_empty(), "batches are never empty");
            assert!(b.is_sorted_by(0));
            starts.extend(b.column(0).iter().map(|e| e.region.start));
        }
        assert_eq!(starts.len(), 3);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(m.snapshot().scanned_records, 3);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }

    #[test]
    fn value_filter_drops_non_matching() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op =
            IndexScanOp::new(PnId(0), st.scan_tag(tag), Some(value_digest("a")), Arc::clone(&m));
        let mut n = 0;
        while let Some(b) = op.next_batch().unwrap() {
            n += b.len();
        }
        assert_eq!(n, 2);
        let snap = m.snapshot();
        assert_eq!(snap.scanned_records, 3, "filter still reads the list");
        assert_eq!(snap.produced_tuples, 2);
    }

    #[test]
    fn small_batches_partition_the_stream() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op =
            IndexScanOp::new(PnId(0), st.scan_tag(tag), None, Arc::clone(&m)).with_batch_rows(2);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| op.next_batch().unwrap().map(|b| b.len())).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }

    #[test]
    fn storage_fault_surfaces_as_typed_error() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let fail = StorageError::PoolExhausted { capacity: 0 };
        let iter = st.scan_tag(tag).take(1).chain(std::iter::once(Err(fail.clone())));
        let mut op = IndexScanOp::new(PnId(0), iter, None, Arc::clone(&m)).with_batch_rows(8);
        let err = op.next_batch().unwrap_err();
        assert_eq!(err, EngineError::Storage(fail));
        assert_eq!(m.snapshot().scanned_records, 1, "pre-fault records still counted");
    }
}
