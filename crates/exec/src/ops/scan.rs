//! Index scan operator.

use std::sync::Arc;

use sjos_pattern::PnId;
use sjos_storage::ElementRecord;

use crate::metrics::ExecMetrics;
use crate::ops::Operator;
use crate::tuple::{Entry, Schema, Tuple};

/// Streams one pattern node's binding list in document order,
/// optionally filtering by a value digest (equality predicates are
/// pushed into the scan, as the paper assumes every node predicate is
/// index-evaluable). The underlying record stream is a tag-index scan
/// for named nodes or a heap-file scan for wildcard nodes.
pub struct IndexScanOp<'a> {
    iter: Box<dyn Iterator<Item = ElementRecord> + 'a>,
    schema: Schema,
    /// Keep-only digest (from [`sjos_storage::record::value_digest`]).
    value_filter: Option<u64>,
    metrics: Arc<ExecMetrics>,
}

impl<'a> IndexScanOp<'a> {
    /// Scan `pnode`'s list via `iter` (records must arrive in
    /// document order).
    pub fn new(
        pnode: PnId,
        iter: impl Iterator<Item = ElementRecord> + 'a,
        value_filter: Option<u64>,
        metrics: Arc<ExecMetrics>,
    ) -> Self {
        IndexScanOp {
            iter: Box::new(iter),
            schema: Schema::singleton(pnode),
            value_filter,
            metrics,
        }
    }
}

impl Operator for IndexScanOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            let rec = self.iter.next()?;
            ExecMetrics::add(&self.metrics.scanned_records, 1);
            if let Some(want) = self.value_filter {
                if rec.value_hash != want {
                    continue;
                }
            }
            ExecMetrics::add(&self.metrics.produced_tuples, 1);
            return Some(vec![Entry { node: rec.node, region: rec.region }]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_storage::record::value_digest;
    use sjos_storage::XmlStore;
    use sjos_xml::Document;

    fn store() -> XmlStore {
        let doc = Document::parse("<r><e><n>a</n></e><e><n>b</n></e><e><n>a</n></e></r>").unwrap();
        XmlStore::load(doc)
    }

    #[test]
    fn scan_streams_in_document_order() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op = IndexScanOp::new(PnId(0), st.scan_tag(tag), None, Arc::clone(&m));
        let mut starts = vec![];
        while let Some(t) = op.next() {
            starts.push(t[0].region.start);
        }
        assert_eq!(starts.len(), 3);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(m.snapshot().scanned_records, 3);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }

    #[test]
    fn value_filter_drops_non_matching() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op =
            IndexScanOp::new(PnId(0), st.scan_tag(tag), Some(value_digest("a")), Arc::clone(&m));
        let mut n = 0;
        while op.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
        let snap = m.snapshot();
        assert_eq!(snap.scanned_records, 3, "filter still reads the list");
        assert_eq!(snap.produced_tuples, 2);
    }
}
