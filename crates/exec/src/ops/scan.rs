//! Index scan operator.

use std::sync::Arc;

use sjos_pattern::PnId;
use sjos_storage::ElementRecord;

use crate::metrics::ExecMetrics;
use crate::ops::Operator;
use crate::tuple::{Entry, Schema, TupleBatch, BATCH_ROWS};

/// Streams one pattern node's binding list in document order,
/// optionally filtering by a value digest (equality predicates are
/// pushed into the scan, as the paper assumes every node predicate is
/// index-evaluable). The underlying record stream is a tag-index scan
/// for named nodes or a heap-file scan for wildcard nodes.
///
/// Records are packed straight into columnar batches; the two metric
/// counters (`scanned_records`, `produced_tuples`) are accumulated
/// locally and flushed with one atomic add each per batch.
pub struct IndexScanOp<'a> {
    iter: Box<dyn Iterator<Item = ElementRecord> + 'a>,
    schema: Arc<Schema>,
    /// Keep-only digest (from [`sjos_storage::record::value_digest`]).
    value_filter: Option<u64>,
    metrics: Arc<ExecMetrics>,
    batch_rows: usize,
}

impl<'a> IndexScanOp<'a> {
    /// Scan `pnode`'s list via `iter` (records must arrive in
    /// document order).
    pub fn new(
        pnode: PnId,
        iter: impl Iterator<Item = ElementRecord> + 'a,
        value_filter: Option<u64>,
        metrics: Arc<ExecMetrics>,
    ) -> Self {
        IndexScanOp {
            iter: Box::new(iter),
            schema: Arc::new(Schema::singleton(pnode)),
            value_filter,
            metrics,
            batch_rows: BATCH_ROWS,
        }
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]).
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }
}

impl Operator for IndexScanOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        0
    }

    fn next_batch(&mut self) -> Option<TupleBatch> {
        let mut batch = TupleBatch::with_capacity(self.schema.clone(), self.batch_rows);
        let mut scanned = 0u64;
        while batch.len() < self.batch_rows {
            let Some(rec) = self.iter.next() else { break };
            scanned += 1;
            if let Some(want) = self.value_filter {
                if rec.value_hash != want {
                    continue;
                }
            }
            batch.push_row(&[Entry { node: rec.node, region: rec.region }]);
        }
        if scanned > 0 {
            ExecMetrics::add(&self.metrics.scanned_records, scanned);
        }
        if batch.is_empty() {
            return None;
        }
        ExecMetrics::add(&self.metrics.produced_tuples, batch.len() as u64);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_storage::record::value_digest;
    use sjos_storage::XmlStore;
    use sjos_xml::Document;

    fn store() -> XmlStore {
        let doc = Document::parse("<r><e><n>a</n></e><e><n>b</n></e><e><n>a</n></e></r>").unwrap();
        XmlStore::load(doc)
    }

    #[test]
    fn scan_streams_in_document_order() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op = IndexScanOp::new(PnId(0), st.scan_tag(tag), None, Arc::clone(&m));
        let mut starts = vec![];
        while let Some(b) = op.next_batch() {
            assert!(!b.is_empty(), "batches are never empty");
            assert!(b.is_sorted_by(0));
            starts.extend(b.column(0).iter().map(|e| e.region.start));
        }
        assert_eq!(starts.len(), 3);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(m.snapshot().scanned_records, 3);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }

    #[test]
    fn value_filter_drops_non_matching() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op =
            IndexScanOp::new(PnId(0), st.scan_tag(tag), Some(value_digest("a")), Arc::clone(&m));
        let mut n = 0;
        while let Some(b) = op.next_batch() {
            n += b.len();
        }
        assert_eq!(n, 2);
        let snap = m.snapshot();
        assert_eq!(snap.scanned_records, 3, "filter still reads the list");
        assert_eq!(snap.produced_tuples, 2);
    }

    #[test]
    fn small_batches_partition_the_stream() {
        let st = store();
        let tag = st.document().tag("n").unwrap();
        let m = ExecMetrics::new();
        let mut op =
            IndexScanOp::new(PnId(0), st.scan_tag(tag), None, Arc::clone(&m)).with_batch_rows(2);
        let sizes: Vec<usize> = std::iter::from_fn(|| op.next_batch().map(|b| b.len())).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }
}
