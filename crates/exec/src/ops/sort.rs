//! Blocking sort operator, with an optional spill-to-disk external
//! sort for memory-budgeted execution.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use sjos_pattern::PnId;
use sjos_storage::{BufferPool, Page, SpillSegment, TempPages, PAGE_SIZE};

use crate::error::EngineError;
use crate::guard::QueryGuard;
use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, Operator};
use crate::tuple::{Entry, Schema, TupleBatch, BATCH_ROWS};

/// Bytes of one [`Entry`] when encoded on a temp page: `u32` node id,
/// `u32` region start, `u32` region end, `u16` level — denser than the
/// padded in-memory layout, and stable across platforms.
const ENTRY_ENC_BYTES: usize = 14;

/// Temp-page header: `u16` row count at offset 0; bytes 4..8 are the
/// page checksum field stamped by the pool's write-through path.
const RUN_PAGE_HEADER: usize = 8;

/// Knobs for [`SortOp`]'s spill mode.
///
/// A spilling sort keeps at most `threshold_bytes` of input buffered;
/// beyond that it flushes the buffer as a sorted *run* of temp pages
/// and merges runs back at emission time, at most `fan_in` at once
/// (more runs trigger cascade merges). The worst-case resident
/// footprint is therefore *static*: threshold plus the merge cursors
/// plus one writer page — the quantity
/// [`SpillPolicy::resident_bound`] computes and planck's spill rules
/// certify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillPolicy {
    /// Flush the in-memory buffer as a sorted run once appending the
    /// next batch would grow it past this many bytes.
    pub threshold_bytes: usize,
    /// Maximum runs merged in one pass (≥ 2). Each merge cursor keeps
    /// one decoded page resident.
    pub fan_in: usize,
}

impl SpillPolicy {
    /// Default merge fan-in: 8 cursors ≈ 64 KiB of merge buffers.
    pub const DEFAULT_FAN_IN: usize = 8;

    /// A policy with the given flush threshold and the default fan-in.
    pub fn with_threshold(threshold_bytes: usize) -> SpillPolicy {
        SpillPolicy { threshold_bytes, fan_in: Self::DEFAULT_FAN_IN }
    }

    /// Override the merge fan-in (clamped to at least 2).
    #[must_use]
    pub fn with_fan_in(mut self, fan_in: usize) -> SpillPolicy {
        self.fan_in = fan_in.max(2);
        self
    }

    /// Rows of `width` columns that fit on one temp page. Zero means
    /// a single row overflows a page — a plan too wide to spill,
    /// rejected as invalid rather than encoded incorrectly.
    pub fn rows_per_page(&self, width: usize) -> usize {
        (PAGE_SIZE - RUN_PAGE_HEADER) / (width.max(1) * ENTRY_ENC_BYTES)
    }

    /// Worst-case resident bytes of one merge cursor: a full temp
    /// page decoded to the (padded) in-memory entry layout.
    pub fn cursor_bytes(&self, width: usize) -> usize {
        self.rows_per_page(width) * width * std::mem::size_of::<Entry>()
    }

    /// Worst-case resident bytes of a spilling sort over rows of
    /// `width` columns pulled in `batch_rows`-row batches: the buffer
    /// (threshold, or a single oversized batch), the merge cursors,
    /// and one run-writer page. This is the bound the static spill
    /// admission certifies against a memory budget.
    pub fn resident_bound(&self, width: usize, batch_rows: usize) -> usize {
        let batch = batch_rows * width * std::mem::size_of::<Entry>();
        self.threshold_bytes + batch + self.fan_in * self.cursor_bytes(width) + PAGE_SIZE
    }

    /// Derive the largest policy whose [`SpillPolicy::resident_bound`]
    /// fits inside `budget_bytes`, or `None` when even a zero
    /// threshold (flush every batch) cannot fit — the budget is too
    /// small for the merge machinery itself, and the query must be
    /// rejected rather than degraded.
    pub fn for_budget(budget_bytes: usize, width: usize, batch_rows: usize) -> Option<SpillPolicy> {
        let floor = SpillPolicy::with_threshold(0).resident_bound(width, batch_rows);
        let threshold = budget_bytes.checked_sub(floor)?;
        Some(SpillPolicy::with_threshold(threshold))
    }
}

fn encode_entry(page: &mut Page, off: usize, e: Entry) {
    page.write_u32(off, e.node.0);
    page.write_u32(off + 4, e.region.start);
    page.write_u32(off + 8, e.region.end);
    page.write_u16(off + 12, e.region.level);
}

fn decode_entry(page: &Page, off: usize) -> Entry {
    Entry {
        node: sjos_xml::NodeId(page.read_u32(off)),
        region: sjos_xml::Region {
            start: page.read_u32(off + 4),
            end: page.read_u32(off + 8),
            level: page.read_u16(off + 12),
        },
    }
}

/// One sorted run of temp pages. The [`TempPages`] handle keeps the
/// pages alive; dropping the run returns them to the segment.
struct SpillRun<'a> {
    pages: TempPages<'a>,
    rows: usize,
}

/// Encodes sorted rows onto temp pages, one page at a time.
struct RunWriter<'a> {
    segment: &'a SpillSegment,
    pages: TempPages<'a>,
    page: Box<Page>,
    in_page: usize,
    rows: usize,
    width: usize,
    rows_per_page: usize,
}

impl<'a> RunWriter<'a> {
    fn new(segment: &'a SpillSegment, width: usize, rows_per_page: usize) -> RunWriter<'a> {
        RunWriter {
            segment,
            pages: TempPages::new(segment),
            page: Page::zeroed(),
            in_page: 0,
            rows: 0,
            width,
            rows_per_page,
        }
    }

    fn push_with(
        &mut self,
        pool: &BufferPool,
        get: impl Fn(usize) -> Entry,
    ) -> Result<(), EngineError> {
        if self.in_page == self.rows_per_page {
            self.flush_page(pool)?;
        }
        let base = RUN_PAGE_HEADER + self.in_page * self.width * ENTRY_ENC_BYTES;
        for c in 0..self.width {
            encode_entry(&mut self.page, base + c * ENTRY_ENC_BYTES, get(c));
        }
        self.in_page += 1;
        self.rows += 1;
        Ok(())
    }

    fn flush_page(&mut self, pool: &BufferPool) -> Result<(), EngineError> {
        self.page.write_u16(0, self.in_page as u16);
        let id = self.pages.allocate(pool)?;
        self.segment.write(pool, id, &self.page)?;
        self.page = Page::zeroed();
        self.in_page = 0;
        Ok(())
    }

    fn finish(mut self, pool: &BufferPool) -> Result<SpillRun<'a>, EngineError> {
        if self.in_page > 0 {
            self.flush_page(pool)?;
        }
        Ok(SpillRun { pages: self.pages, rows: self.rows })
    }
}

/// Read cursor over one run: decodes a page's rows at a time (the pin
/// is dropped immediately, so a merge never holds more than one pin).
struct RunCursor<'a> {
    run: SpillRun<'a>,
    next_page: usize,
    buf: Vec<Entry>,
    pos: usize,
    width: usize,
}

impl<'a> RunCursor<'a> {
    fn new(
        run: SpillRun<'a>,
        width: usize,
        pool: &BufferPool,
        segment: &SpillSegment,
    ) -> Result<RunCursor<'a>, EngineError> {
        let mut cursor = RunCursor { run, next_page: 0, buf: Vec::new(), pos: 0, width };
        cursor.refill(pool, segment)?;
        Ok(cursor)
    }

    fn refill(&mut self, pool: &BufferPool, segment: &SpillSegment) -> Result<(), EngineError> {
        self.buf.clear();
        self.pos = 0;
        if self.next_page >= self.run.pages.len() {
            return Ok(());
        }
        let id = self.run.pages.pages()[self.next_page];
        self.next_page += 1;
        let page = segment.read(pool, id)?;
        let count = page.read_u16(0) as usize;
        self.buf.reserve(count * self.width);
        for r in 0..count {
            let base = RUN_PAGE_HEADER + r * self.width * ENTRY_ENC_BYTES;
            for c in 0..self.width {
                self.buf.push(decode_entry(&page, base + c * ENTRY_ENC_BYTES));
            }
        }
        Ok(())
    }

    fn row(&self) -> &[Entry] {
        &self.buf[self.pos * self.width..(self.pos + 1) * self.width]
    }

    fn key(&self, col: usize) -> Option<(u32, u32)> {
        if self.pos * self.width >= self.buf.len() {
            return None;
        }
        let e = self.buf[self.pos * self.width + col];
        Some((e.region.start, e.region.end))
    }

    fn advance(&mut self, pool: &BufferPool, segment: &SpillSegment) -> Result<(), EngineError> {
        self.pos += 1;
        if self.pos * self.width >= self.buf.len() {
            self.refill(pool, segment)?;
        }
        Ok(())
    }
}

/// K-way merge over run cursors, keyed `(start, end, run index)`. The
/// run-index tiebreak makes the merge equivalent to one stable sort
/// over the whole input: equal keys surface from earlier runs first,
/// and runs are flushed in input order.
struct MergeState<'a> {
    cursors: Vec<RunCursor<'a>>,
    heap: BinaryHeap<Reverse<(u32, u32, usize)>>,
}

impl<'a> MergeState<'a> {
    fn new(
        runs: Vec<SpillRun<'a>>,
        width: usize,
        col: usize,
        pool: &BufferPool,
        segment: &SpillSegment,
    ) -> Result<MergeState<'a>, EngineError> {
        let mut cursors = Vec::with_capacity(runs.len());
        for run in runs {
            cursors.push(RunCursor::new(run, width, pool, segment)?);
        }
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter().enumerate() {
            if let Some((s, e)) = c.key(col) {
                heap.push(Reverse((s, e, i)));
            }
        }
        Ok(MergeState { cursors, heap })
    }

    /// Copy the globally-next row into `out`. `Ok(false)` when every
    /// run is exhausted.
    fn pop_into(
        &mut self,
        pool: &BufferPool,
        segment: &SpillSegment,
        col: usize,
        out: &mut Vec<Entry>,
    ) -> Result<bool, EngineError> {
        let Some(Reverse((_, _, idx))) = self.heap.pop() else {
            return Ok(false);
        };
        let cursor = &mut self.cursors[idx];
        out.clear();
        out.extend_from_slice(cursor.row());
        cursor.advance(pool, segment)?;
        if let Some((s, e)) = cursor.key(col) {
            self.heap.push(Reverse((s, e, idx)));
        }
        Ok(true)
    }
}

/// Spill-mode state attached by [`SortOp::with_spill`].
struct SpillCtx<'a> {
    policy: SpillPolicy,
    pool: &'a BufferPool,
    segment: &'a SpillSegment,
    /// Runs flushed so far, in input order.
    runs: Vec<SpillRun<'a>>,
    /// Final merge, set once materialization finishes with spilled
    /// runs present.
    merge: Option<MergeState<'a>>,
}

/// Materializes its input and re-orders it by the `by` column's
/// document position. This is the blocking point the paper's
/// non-fully-pipelined plans pay for (`n log n * f_s` in the cost
/// model), and what the FP algorithm avoids entirely.
///
/// The buffer is kept columnar: input batches append straight onto
/// per-column arrays, a sort permutation is computed over the key
/// column only, and output batches gather through that permutation.
///
/// As an unboundedly-buffering operator, the sort reports its
/// materialization to the [`QueryGuard`] (when one is attached) one
/// input batch at a time, so a memory budget trips mid-
/// materialization rather than after the fact.
///
/// With [`SortOp::with_spill`], the sort degrades instead of
/// breaching: when the buffer would pass the [`SpillPolicy`]
/// threshold — or the guard's remaining headroom — it is sorted,
/// encoded onto temp pages as a run, and its bytes released; emission
/// k-way-merges the runs back. Output is bit-identical to the
/// in-memory sort at every batch size (the merge's run-index tiebreak
/// reproduces stable-sort order). Only a single input batch larger
/// than the whole budget still breaches.
pub struct SortOp<'a> {
    input: Option<BoxedOperator<'a>>,
    schema: Arc<Schema>,
    col: usize,
    /// Materialized input, column-major.
    buffer: Vec<Vec<Entry>>,
    /// Row indices of `buffer` in sorted order (in-memory path only).
    perm: Vec<u32>,
    /// Next position in `perm` to emit.
    emitted: usize,
    metrics: Arc<ExecMetrics>,
    guard: Option<Arc<QueryGuard>>,
    batch_rows: usize,
    /// Live buffer bytes accounted to [`ExecMetrics`] (released when
    /// the operator drops).
    reserved_bytes: u64,
    /// Live bytes charged to the guard (released on flush and on drop
    /// in spill mode; cumulative otherwise).
    guard_reserved: usize,
    /// Bytes currently buffered in `buffer` (spill bookkeeping).
    buffered_bytes: usize,
    spill: Option<SpillCtx<'a>>,
}

impl<'a> SortOp<'a> {
    /// Sort `input` by the column binding `by`.
    ///
    /// # Errors
    /// [`EngineError::InvalidPlan`] if `input` does not bind `by` —
    /// an optimizer bug, reported instead of panicking.
    pub fn new(
        input: BoxedOperator<'a>,
        by: PnId,
        metrics: Arc<ExecMetrics>,
    ) -> Result<Self, EngineError> {
        let schema = input.schema().clone();
        let col = schema
            .position(by)
            .ok_or_else(|| EngineError::InvalidPlan(format!("sort by unbound column {by:?}")))?;
        Ok(SortOp {
            input: Some(input),
            schema,
            col,
            buffer: Vec::new(),
            perm: Vec::new(),
            emitted: 0,
            metrics,
            guard: None,
            batch_rows: BATCH_ROWS,
            reserved_bytes: 0,
            guard_reserved: 0,
            buffered_bytes: 0,
            spill: None,
        })
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]).
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Report buffer growth to `guard`'s memory budget.
    #[must_use]
    pub fn with_guard(mut self, guard: Arc<QueryGuard>) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Enable spilling: flush sorted runs to `segment` through `pool`
    /// under `policy` instead of buffering without bound. With a
    /// guard attached, flushing also happens whenever the guard's
    /// remaining headroom could not absorb the next batch — the sort
    /// degrades to disk instead of breaching the budget.
    #[must_use]
    pub fn with_spill(
        mut self,
        pool: &'a BufferPool,
        segment: &'a SpillSegment,
        policy: SpillPolicy,
    ) -> Self {
        self.spill = Some(SpillCtx { policy, pool, segment, runs: Vec::new(), merge: None });
        self
    }

    /// Charge `bytes` to metrics and (when present) the guard.
    fn track_reserve(&mut self, bytes: usize) -> Result<(), EngineError> {
        self.metrics.reserve_bytes(bytes as u64);
        self.reserved_bytes += bytes as u64;
        if let Some(guard) = &self.guard {
            guard.reserve(bytes)?;
            self.guard_reserved += bytes;
        }
        Ok(())
    }

    /// Release `bytes` from metrics, and from the guard in spill mode
    /// (the guard stays cumulative otherwise — see
    /// [`QueryGuard::release`]).
    fn track_release(&mut self, bytes: usize) {
        self.metrics.release_bytes(bytes as u64);
        self.reserved_bytes = self.reserved_bytes.saturating_sub(bytes as u64);
        if self.spill.is_some() {
            if let Some(guard) = &self.guard {
                guard.release(bytes);
            }
            self.guard_reserved = self.guard_reserved.saturating_sub(bytes);
        }
    }

    /// Flush the buffer as a sorted run if appending `incoming` bytes
    /// would cross the spill threshold or the guard's headroom.
    fn maybe_flush(&mut self, incoming: usize) -> Result<(), EngineError> {
        let Some(ctx) = &self.spill else { return Ok(()) };
        if self.buffered_bytes == 0 {
            return Ok(());
        }
        let over_threshold = self.buffered_bytes + incoming > ctx.policy.threshold_bytes;
        let over_headroom = self.guard.as_ref().is_some_and(|g| g.memory_headroom() < incoming);
        if over_threshold || over_headroom {
            self.flush_run()?;
        }
        Ok(())
    }

    /// Sort the current buffer and write it to temp pages as one run,
    /// then release its bytes.
    fn flush_run(&mut self) -> Result<(), EngineError> {
        let ctx = self.spill.as_ref().expect("flush_run requires spill mode");
        let (pool, segment, policy) = (ctx.pool, ctx.segment, ctx.policy);
        let width = self.schema.width();
        let rows_per_page = policy.rows_per_page(width);
        if rows_per_page == 0 {
            return Err(EngineError::InvalidPlan(format!(
                "schema of {width} columns is too wide to spill (row exceeds a page)"
            )));
        }
        let rows = self.buffer.first().map_or(0, Vec::len);
        let keys = &self.buffer[self.col];
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.sort_by_key(|&r| {
            let e = keys[r as usize];
            (e.region.start, e.region.end)
        });
        // The writer's page buffer is resident while the run encodes.
        self.track_reserve(PAGE_SIZE)?;
        let mut writer = RunWriter::new(segment, width, rows_per_page);
        for &r in &perm {
            writer.push_with(pool, |c| self.buffer[c][r as usize])?;
        }
        let run = writer.finish(pool)?;
        ExecMetrics::add(&self.metrics.spilled_runs, 1);
        ExecMetrics::add(&self.metrics.spilled_bytes, (run.rows * width * ENTRY_ENC_BYTES) as u64);
        self.spill.as_mut().expect("spill mode").runs.push(run);
        self.track_release(PAGE_SIZE);
        let freed = self.buffered_bytes;
        for c in &mut self.buffer {
            c.clear();
        }
        self.buffered_bytes = 0;
        self.track_release(freed);
        Ok(())
    }

    /// Cascade-merge runs down to the fan-in, then stand up the final
    /// streaming merge. Returns the total row count across runs.
    fn finish_spill(&mut self) -> Result<u64, EngineError> {
        let ctx = self.spill.as_ref().expect("finish_spill requires spill mode");
        let (pool, segment, policy) = (ctx.pool, ctx.segment, ctx.policy);
        let width = self.schema.width();
        let col = self.col;
        let cursor_bytes = policy.cursor_bytes(width);
        let mut runs = std::mem::take(&mut self.spill.as_mut().expect("spill mode").runs);
        while runs.len() > policy.fan_in {
            // One cascade round: merge consecutive groups of `fan_in`
            // runs left to right. Groups preserve input order across
            // runs, so the run-index tiebreak keeps reproducing
            // stable-sort order, and each round shrinks the run count
            // by the fan-in factor (logarithmically many rounds).
            let mut next = Vec::with_capacity(runs.len().div_ceil(policy.fan_in));
            let mut pending = std::mem::take(&mut runs).into_iter().peekable();
            while pending.peek().is_some() {
                let head: Vec<SpillRun<'a>> = pending.by_ref().take(policy.fan_in).collect();
                if head.len() == 1 {
                    // A lone trailing run needs no rewrite.
                    next.extend(head);
                    continue;
                }
                self.track_reserve(head.len() * cursor_bytes + PAGE_SIZE)?;
                let reserved = head.len() * cursor_bytes + PAGE_SIZE;
                let mut merge = MergeState::new(head, width, col, pool, segment)?;
                let mut writer = RunWriter::new(segment, width, policy.rows_per_page(width));
                let mut row = Vec::with_capacity(width);
                while merge.pop_into(pool, segment, col, &mut row)? {
                    writer.push_with(pool, |c| row[c])?;
                }
                let merged = writer.finish(pool)?;
                ExecMetrics::add(&self.metrics.spill_merge_passes, 1);
                ExecMetrics::add(
                    &self.metrics.spilled_bytes,
                    (merged.rows * width * ENTRY_ENC_BYTES) as u64,
                );
                drop(merge); // frees the consumed runs' pages for recycling
                self.track_release(reserved);
                next.push(merged);
            }
            runs = next;
        }
        let total: u64 = runs.iter().map(|r| r.rows as u64).sum();
        // The final merge's cursors stay resident until the operator
        // drops (emission is streaming).
        self.track_reserve(runs.len() * cursor_bytes)?;
        let merge = MergeState::new(runs, width, col, pool, segment)?;
        self.spill.as_mut().expect("spill mode").merge = Some(merge);
        Ok(total)
    }

    fn materialize(&mut self) -> Result<(), EngineError> {
        let Some(mut input) = self.input.take() else { return Ok(()) };
        self.buffer = (0..self.schema.width()).map(|_| Vec::new()).collect();
        let row_bytes = self.schema.width() * std::mem::size_of::<Entry>();
        while let Some(batch) = input.next_batch()? {
            let bytes = batch.len() * row_bytes;
            self.maybe_flush(bytes)?;
            self.track_reserve(bytes)?;
            self.buffered_bytes += bytes;
            for (dst, c) in self.buffer.iter_mut().enumerate() {
                c.extend_from_slice(batch.column(dst));
            }
        }
        let rows = self.buffer.first().map_or(0, Vec::len);
        let total = if self.spill.as_ref().is_some_and(|s| !s.runs.is_empty()) {
            if rows > 0 {
                self.flush_run()?;
            }
            self.finish_spill()?
        } else {
            let keys = &self.buffer[self.col];
            let mut perm: Vec<u32> = (0..rows as u32).collect();
            perm.sort_by_key(|&r| {
                let e = keys[r as usize];
                (e.region.start, e.region.end)
            });
            self.perm = perm;
            rows as u64
        };
        ExecMetrics::add(&self.metrics.sort_operations, 1);
        ExecMetrics::add(&self.metrics.sorted_tuples, total);
        Ok(())
    }

    /// Emit the next batch from the final k-way merge.
    fn next_merged_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        let schema = self.schema.clone();
        let (col, cap) = (self.col, self.batch_rows);
        let ctx = self.spill.as_mut().expect("merge emission requires spill mode");
        let (pool, segment) = (ctx.pool, ctx.segment);
        let merge = ctx.merge.as_mut().expect("merge emission requires a merge");
        let mut batch = TupleBatch::with_capacity(schema, cap);
        let mut row = Vec::new();
        while batch.len() < cap && merge.pop_into(pool, segment, col, &mut row)? {
            batch.push_row(&row);
        }
        if batch.is_empty() {
            return Ok(None);
        }
        ExecMetrics::add(&self.metrics.produced_tuples, batch.len() as u64);
        Ok(Some(batch))
    }
}

impl Drop for SortOp<'_> {
    fn drop(&mut self) {
        self.metrics.release_bytes(self.reserved_bytes);
        if self.spill.is_some() {
            if let Some(guard) = &self.guard {
                guard.release(self.guard_reserved);
            }
        }
    }
}

impl Operator for SortOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        self.col
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        if self.input.is_some() {
            self.materialize()?;
        }
        if self.spill.as_ref().is_some_and(|s| s.merge.is_some()) {
            return self.next_merged_batch();
        }
        if self.emitted >= self.perm.len() {
            return Ok(None);
        }
        let end = (self.emitted + self.batch_rows).min(self.perm.len());
        let take = &self.perm[self.emitted..end];
        let mut batch = TupleBatch::with_capacity(self.schema.clone(), take.len());
        for (dst, src) in (0..self.schema.width()).zip(&self.buffer) {
            batch.extend_column(dst, take.iter().map(|&r| src[r as usize]));
        }
        self.emitted = end;
        ExecMetrics::add(&self.metrics.produced_tuples, batch.len() as u64);
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GuardBreach;
    use crate::ops::VecInput;
    use crate::tuple::Tuple;
    use sjos_xml::{NodeId, Region};

    fn two_col_rows(pairs: &[(u32, u32)]) -> VecInput {
        let rows: Vec<Tuple> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                vec![
                    Entry {
                        node: NodeId(i as u32),
                        region: Region { start: a, end: a + 1, level: 0 },
                    },
                    Entry {
                        node: NodeId(100 + i as u32),
                        region: Region { start: b, end: b + 1, level: 1 },
                    },
                ]
            })
            .collect();
        VecInput::new(Schema::new(vec![PnId(0), PnId(1)]), rows)
    }

    #[test]
    fn sorts_by_requested_column() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        let mut op = SortOp::new(Box::new(input), PnId(1), Arc::clone(&m)).unwrap();
        let mut seen = vec![];
        while let Some(b) = op.next_batch().unwrap() {
            assert!(b.is_sorted_by(op.ordered_col()));
            seen.extend(b.column(1).iter().map(|e| e.region.start));
        }
        assert_eq!(seen, vec![10, 20, 30]);
        let s = m.snapshot();
        assert_eq!(s.sort_operations, 1);
        assert_eq!(s.sorted_tuples, 3);
        assert_eq!(s.produced_tuples, 3);
    }

    #[test]
    fn sorted_output_respects_batch_granularity() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        let mut op =
            SortOp::new(Box::new(input), PnId(0), Arc::clone(&m)).unwrap().with_batch_rows(2);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| op.next_batch().unwrap().map(|b| b.len())).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }

    #[test]
    fn empty_input_sorts_empty() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[]);
        let mut op = SortOp::new(Box::new(input), PnId(0), m.clone()).unwrap();
        assert!(op.next_batch().unwrap().is_none());
        assert_eq!(m.snapshot().sort_operations, 1);
    }

    #[test]
    fn peak_bytes_track_the_materialized_buffer() {
        use std::sync::atomic::Ordering;
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        {
            let mut op = SortOp::new(Box::new(input), PnId(0), Arc::clone(&m)).unwrap();
            while op.next_batch().unwrap().is_some() {}
            let live = 3 * 2 * std::mem::size_of::<Entry>() as u64;
            assert_eq!(m.cur_bytes.load(Ordering::Relaxed), live);
        }
        assert_eq!(m.cur_bytes.load(Ordering::Relaxed), 0, "released on drop");
        assert!(m.snapshot().peak_bytes > 0);
    }

    #[test]
    fn sorting_unbound_column_is_a_typed_error() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(1, 2)]);
        let err = SortOp::new(Box::new(input), PnId(9), m).err().expect("unbound column");
        assert!(matches!(err, EngineError::InvalidPlan(msg) if msg.contains("unbound column")));
    }

    #[test]
    fn memory_budget_stops_materialization() {
        let m = ExecMetrics::new();
        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(16));
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]).with_batch_rows(1);
        let mut op =
            SortOp::new(Box::new(input), PnId(0), m).unwrap().with_batch_rows(1).with_guard(guard);
        let err = op.next_batch().unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }));
    }

    // ---- spill mode ----

    fn spill_env(frames: usize) -> (BufferPool, SpillSegment) {
        let stats = Arc::new(sjos_storage::IoStats::new());
        let disk = Arc::new(sjos_storage::InMemoryDisk::new(Arc::clone(&stats)));
        (BufferPool::new(disk, stats, frames), SpillSegment::new())
    }

    /// `n` rows whose keys are a pseudo-shuffle with many duplicates —
    /// duplicates are what distinguish a stable merge from an unstable
    /// one.
    fn shuffled_pairs(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|i| ((i * 7919) % 97, (i * 31) % 13)).collect()
    }

    fn drain_rows(op: &mut SortOp<'_>) -> Vec<Tuple> {
        let mut rows = Vec::new();
        while let Some(b) = op.next_batch().unwrap() {
            assert!(b.is_sorted_by(op.ordered_col()));
            rows.extend(b.into_rows());
        }
        rows
    }

    #[test]
    fn spilled_sort_is_bit_identical_to_in_memory_at_every_batch_size() {
        let pairs = shuffled_pairs(5_000);
        for &batch_rows in &[1usize, 3, 1024] {
            let m = ExecMetrics::new();
            let mut baseline = SortOp::new(
                Box::new(two_col_rows(&pairs).with_batch_rows(batch_rows)),
                PnId(1),
                Arc::clone(&m),
            )
            .unwrap()
            .with_batch_rows(batch_rows);
            let expected = drain_rows(&mut baseline);

            let (pool, segment) = spill_env(64);
            let m2 = ExecMetrics::new();
            let mut spilled = SortOp::new(
                Box::new(two_col_rows(&pairs).with_batch_rows(batch_rows)),
                PnId(1),
                Arc::clone(&m2),
            )
            .unwrap()
            .with_batch_rows(batch_rows)
            // Tiny threshold: every input batch becomes its own run.
            .with_spill(
                &pool,
                &segment,
                SpillPolicy::with_threshold(64).with_fan_in(3),
            );
            let got = drain_rows(&mut spilled);

            assert_eq!(got, expected, "batch_rows={batch_rows}");
            let s = m2.snapshot();
            assert!(s.spilled_runs > 1, "batch_rows={batch_rows}: expected spilling");
            assert!(s.spilled_bytes > 0);
            drop(spilled);
            assert_eq!(segment.live_pages(), 0, "all temp pages returned");
        }
    }

    #[test]
    fn cascade_merge_kicks_in_past_the_fan_in() {
        let pairs = shuffled_pairs(400);
        let (pool, segment) = spill_env(64);
        let m = ExecMetrics::new();
        let mut op =
            SortOp::new(Box::new(two_col_rows(&pairs).with_batch_rows(8)), PnId(0), Arc::clone(&m))
                .unwrap()
                .with_spill(&pool, &segment, SpillPolicy::with_threshold(0).with_fan_in(2));
        let rows = drain_rows(&mut op);
        assert_eq!(rows.len(), 400);
        let s = m.snapshot();
        assert!(s.spill_merge_passes > 0, "fan-in 2 over many runs must cascade");
        drop(op);
        assert_eq!(segment.live_pages(), 0);
    }

    #[test]
    fn starved_guard_spills_instead_of_breaching() {
        let pairs = shuffled_pairs(10_000);
        let row_bytes = 2 * std::mem::size_of::<Entry>();
        let total_bytes = pairs.len() * row_bytes;
        let budget = SpillPolicy::with_threshold(0).resident_bound(2, 64) + 4 * row_bytes * 64;
        assert!(budget < total_bytes, "budget must starve the in-memory sort");
        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(budget));

        // Without spill the same budget breaches.
        let m0 = ExecMetrics::new();
        let mut plain =
            SortOp::new(Box::new(two_col_rows(&pairs).with_batch_rows(64)), PnId(0), m0)
                .unwrap()
                .with_batch_rows(64)
                .with_guard(Arc::clone(&guard));
        let err = plain.next_batch().unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }));
        drop(plain);

        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(budget));
        let policy = SpillPolicy::for_budget(budget, 2, 64).expect("budget fits the machinery");
        let (pool, segment) = spill_env(64);
        let m = ExecMetrics::new();
        let mut op = SortOp::new(
            Box::new(two_col_rows(&pairs).with_batch_rows(64)),
            PnId(0),
            Arc::clone(&m),
        )
        .unwrap()
        .with_batch_rows(64)
        .with_guard(Arc::clone(&guard))
        .with_spill(&pool, &segment, policy);
        let rows = drain_rows(&mut op);
        assert_eq!(rows.len(), pairs.len());
        let s = m.snapshot();
        assert!(s.spilled_runs > 0, "the starved budget must force spilling");
        assert!(
            (s.peak_bytes as usize) <= policy.resident_bound(2, 64),
            "peak {} exceeds the certified bound {}",
            s.peak_bytes,
            policy.resident_bound(2, 64)
        );
        drop(op);
        assert_eq!(segment.live_pages(), 0, "no leaked temp pages");
        assert_eq!(guard.bytes_reserved(), 0, "spill mode releases the guard on drop");
    }

    #[test]
    fn oversized_single_batch_still_breaches_typed() {
        let pairs = shuffled_pairs(512);
        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(256));
        let (pool, segment) = spill_env(16);
        let m = ExecMetrics::new();
        // One 512-row batch (~16 KiB) against a 256-byte budget: no
        // threshold can help, the reservation itself must fail.
        let mut op = SortOp::new(Box::new(two_col_rows(&pairs)), PnId(0), m)
            .unwrap()
            .with_guard(guard)
            .with_spill(&pool, &segment, SpillPolicy::with_threshold(0));
        let err = op.next_batch().unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }));
        drop(op);
        assert_eq!(segment.live_pages(), 0, "error path frees temp pages");
    }

    #[test]
    fn spill_policy_budget_round_trip() {
        let policy = SpillPolicy::for_budget(1 << 20, 2, BATCH_ROWS).unwrap();
        assert!(policy.resident_bound(2, BATCH_ROWS) <= 1 << 20);
        assert!(SpillPolicy::for_budget(1024, 2, BATCH_ROWS).is_none(), "too small to spill");
        assert_eq!(SpillPolicy::with_threshold(0).with_fan_in(0).fan_in, 2, "fan-in clamps");
    }

    #[test]
    fn entry_page_encoding_round_trips() {
        let mut page = Page::zeroed();
        let e = Entry {
            node: NodeId(0xDEAD_BEEF),
            region: Region { start: 17, end: u32::MAX - 3, level: 9 },
        };
        encode_entry(&mut page, RUN_PAGE_HEADER, e);
        assert_eq!(decode_entry(&page, RUN_PAGE_HEADER), e);
    }
}
