//! Blocking sort operator.

use std::sync::Arc;

use sjos_pattern::PnId;

use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, Operator};
use crate::tuple::{Schema, Tuple};

/// Materializes its input and re-orders it by the `by` column's
/// document position. This is the blocking point the paper's
/// non-fully-pipelined plans pay for (`n log n * f_s` in the cost
/// model), and what the FP algorithm avoids entirely.
pub struct SortOp<'a> {
    input: Option<BoxedOperator<'a>>,
    schema: Schema,
    col: usize,
    buffer: std::vec::IntoIter<Tuple>,
    metrics: Arc<ExecMetrics>,
}

impl<'a> SortOp<'a> {
    /// Sort `input` by the column binding `by`.
    ///
    /// # Panics
    /// Panics if `input` does not bind `by`.
    pub fn new(input: BoxedOperator<'a>, by: PnId, metrics: Arc<ExecMetrics>) -> Self {
        let schema = input.schema().clone();
        let col = schema.position(by).unwrap_or_else(|| panic!("sort by unbound column {by:?}"));
        SortOp { input: Some(input), schema, col, buffer: Vec::new().into_iter(), metrics }
    }

    fn materialize(&mut self) {
        let Some(mut input) = self.input.take() else { return };
        let mut rows: Vec<Tuple> = Vec::new();
        while let Some(t) = input.next() {
            rows.push(t);
        }
        let col = self.col;
        rows.sort_by_key(|t| (t[col].region.start, t[col].region.end));
        ExecMetrics::add(&self.metrics.sort_operations, 1);
        ExecMetrics::add(&self.metrics.sorted_tuples, rows.len() as u64);
        self.buffer = rows.into_iter();
    }
}

impl Operator for SortOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        if self.input.is_some() {
            self.materialize();
        }
        let t = self.buffer.next()?;
        ExecMetrics::add(&self.metrics.produced_tuples, 1);
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Entry;
    use sjos_xml::{NodeId, Region};

    struct FixedInput {
        schema: Schema,
        rows: std::vec::IntoIter<Tuple>,
    }

    impl Operator for FixedInput {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Tuple> {
            self.rows.next()
        }
    }

    fn two_col_rows(pairs: &[(u32, u32)]) -> FixedInput {
        let rows: Vec<Tuple> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                vec![
                    Entry {
                        node: NodeId(i as u32),
                        region: Region { start: a, end: a + 1, level: 0 },
                    },
                    Entry {
                        node: NodeId(100 + i as u32),
                        region: Region { start: b, end: b + 1, level: 1 },
                    },
                ]
            })
            .collect();
        FixedInput { schema: Schema::new(vec![PnId(0), PnId(1)]), rows: rows.into_iter() }
    }

    #[test]
    fn sorts_by_requested_column() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        let mut op = SortOp::new(Box::new(input), PnId(1), Arc::clone(&m));
        let mut seen = vec![];
        while let Some(t) = op.next() {
            seen.push(t[1].region.start);
        }
        assert_eq!(seen, vec![10, 20, 30]);
        let s = m.snapshot();
        assert_eq!(s.sort_operations, 1);
        assert_eq!(s.sorted_tuples, 3);
        assert_eq!(s.produced_tuples, 3);
    }

    #[test]
    fn empty_input_sorts_empty() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[]);
        let mut op = SortOp::new(Box::new(input), PnId(0), m.clone());
        assert!(op.next().is_none());
        assert_eq!(m.snapshot().sort_operations, 1);
    }

    #[test]
    #[should_panic(expected = "unbound column")]
    fn sorting_unbound_column_panics() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(1, 2)]);
        let _ = SortOp::new(Box::new(input), PnId(9), m);
    }
}
