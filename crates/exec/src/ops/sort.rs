//! Blocking sort operator.

use std::sync::Arc;

use sjos_pattern::PnId;

use crate::error::EngineError;
use crate::guard::QueryGuard;
use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, Operator};
use crate::tuple::{Entry, Schema, TupleBatch, BATCH_ROWS};

/// Materializes its input and re-orders it by the `by` column's
/// document position. This is the blocking point the paper's
/// non-fully-pipelined plans pay for (`n log n * f_s` in the cost
/// model), and what the FP algorithm avoids entirely.
///
/// The buffer is kept columnar: input batches append straight onto
/// per-column arrays, a sort permutation is computed over the key
/// column only, and output batches gather through that permutation.
///
/// As an unboundedly-buffering operator, the sort reports its
/// materialization to the [`QueryGuard`] (when one is attached) one
/// input batch at a time, so a memory budget trips mid-
/// materialization rather than after the fact.
pub struct SortOp<'a> {
    input: Option<BoxedOperator<'a>>,
    schema: Arc<Schema>,
    col: usize,
    /// Materialized input, column-major.
    buffer: Vec<Vec<Entry>>,
    /// Row indices of `buffer` in sorted order.
    perm: Vec<u32>,
    /// Next position in `perm` to emit.
    emitted: usize,
    metrics: Arc<ExecMetrics>,
    guard: Option<Arc<QueryGuard>>,
    batch_rows: usize,
    /// Live buffer bytes accounted to [`ExecMetrics`] (released when
    /// the operator drops).
    reserved_bytes: u64,
}

impl<'a> SortOp<'a> {
    /// Sort `input` by the column binding `by`.
    ///
    /// # Errors
    /// [`EngineError::InvalidPlan`] if `input` does not bind `by` —
    /// an optimizer bug, reported instead of panicking.
    pub fn new(
        input: BoxedOperator<'a>,
        by: PnId,
        metrics: Arc<ExecMetrics>,
    ) -> Result<Self, EngineError> {
        let schema = input.schema().clone();
        let col = schema
            .position(by)
            .ok_or_else(|| EngineError::InvalidPlan(format!("sort by unbound column {by:?}")))?;
        Ok(SortOp {
            input: Some(input),
            schema,
            col,
            buffer: Vec::new(),
            perm: Vec::new(),
            emitted: 0,
            metrics,
            guard: None,
            batch_rows: BATCH_ROWS,
            reserved_bytes: 0,
        })
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]).
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Report buffer growth to `guard`'s memory budget.
    #[must_use]
    pub fn with_guard(mut self, guard: Arc<QueryGuard>) -> Self {
        self.guard = Some(guard);
        self
    }

    fn materialize(&mut self) -> Result<(), EngineError> {
        let Some(mut input) = self.input.take() else { return Ok(()) };
        self.buffer = (0..self.schema.width()).map(|_| Vec::new()).collect();
        let row_bytes = self.schema.width() * std::mem::size_of::<Entry>();
        while let Some(batch) = input.next_batch()? {
            let bytes = batch.len() * row_bytes;
            self.metrics.reserve_bytes(bytes as u64);
            self.reserved_bytes += bytes as u64;
            if let Some(guard) = &self.guard {
                guard.reserve(bytes)?;
            }
            for (dst, c) in self.buffer.iter_mut().enumerate() {
                c.extend_from_slice(batch.column(dst));
            }
        }
        let rows = self.buffer.first().map_or(0, Vec::len);
        let keys = &self.buffer[self.col];
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.sort_by_key(|&r| {
            let e = keys[r as usize];
            (e.region.start, e.region.end)
        });
        self.perm = perm;
        ExecMetrics::add(&self.metrics.sort_operations, 1);
        ExecMetrics::add(&self.metrics.sorted_tuples, rows as u64);
        Ok(())
    }
}

impl Drop for SortOp<'_> {
    fn drop(&mut self) {
        self.metrics.release_bytes(self.reserved_bytes);
    }
}

impl Operator for SortOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        self.col
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        if self.input.is_some() {
            self.materialize()?;
        }
        if self.emitted >= self.perm.len() {
            return Ok(None);
        }
        let end = (self.emitted + self.batch_rows).min(self.perm.len());
        let take = &self.perm[self.emitted..end];
        let mut batch = TupleBatch::with_capacity(self.schema.clone(), take.len());
        for (dst, src) in (0..self.schema.width()).zip(&self.buffer) {
            batch.extend_column(dst, take.iter().map(|&r| src[r as usize]));
        }
        self.emitted = end;
        ExecMetrics::add(&self.metrics.produced_tuples, batch.len() as u64);
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GuardBreach;
    use crate::ops::VecInput;
    use crate::tuple::Tuple;
    use sjos_xml::{NodeId, Region};

    fn two_col_rows(pairs: &[(u32, u32)]) -> VecInput {
        let rows: Vec<Tuple> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                vec![
                    Entry {
                        node: NodeId(i as u32),
                        region: Region { start: a, end: a + 1, level: 0 },
                    },
                    Entry {
                        node: NodeId(100 + i as u32),
                        region: Region { start: b, end: b + 1, level: 1 },
                    },
                ]
            })
            .collect();
        VecInput::new(Schema::new(vec![PnId(0), PnId(1)]), rows)
    }

    #[test]
    fn sorts_by_requested_column() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        let mut op = SortOp::new(Box::new(input), PnId(1), Arc::clone(&m)).unwrap();
        let mut seen = vec![];
        while let Some(b) = op.next_batch().unwrap() {
            assert!(b.is_sorted_by(op.ordered_col()));
            seen.extend(b.column(1).iter().map(|e| e.region.start));
        }
        assert_eq!(seen, vec![10, 20, 30]);
        let s = m.snapshot();
        assert_eq!(s.sort_operations, 1);
        assert_eq!(s.sorted_tuples, 3);
        assert_eq!(s.produced_tuples, 3);
    }

    #[test]
    fn sorted_output_respects_batch_granularity() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        let mut op =
            SortOp::new(Box::new(input), PnId(0), Arc::clone(&m)).unwrap().with_batch_rows(2);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| op.next_batch().unwrap().map(|b| b.len())).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(m.snapshot().produced_tuples, 3);
    }

    #[test]
    fn empty_input_sorts_empty() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[]);
        let mut op = SortOp::new(Box::new(input), PnId(0), m.clone()).unwrap();
        assert!(op.next_batch().unwrap().is_none());
        assert_eq!(m.snapshot().sort_operations, 1);
    }

    #[test]
    fn peak_bytes_track_the_materialized_buffer() {
        use std::sync::atomic::Ordering;
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]);
        {
            let mut op = SortOp::new(Box::new(input), PnId(0), Arc::clone(&m)).unwrap();
            while op.next_batch().unwrap().is_some() {}
            let live = 3 * 2 * std::mem::size_of::<Entry>() as u64;
            assert_eq!(m.cur_bytes.load(Ordering::Relaxed), live);
        }
        assert_eq!(m.cur_bytes.load(Ordering::Relaxed), 0, "released on drop");
        assert!(m.snapshot().peak_bytes > 0);
    }

    #[test]
    fn sorting_unbound_column_is_a_typed_error() {
        let m = ExecMetrics::new();
        let input = two_col_rows(&[(1, 2)]);
        let err = SortOp::new(Box::new(input), PnId(9), m).err().expect("unbound column");
        assert!(matches!(err, EngineError::InvalidPlan(msg) if msg.contains("unbound column")));
    }

    #[test]
    fn memory_budget_stops_materialization() {
        let m = ExecMetrics::new();
        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(16));
        let input = two_col_rows(&[(5, 10), (1, 30), (3, 20)]).with_batch_rows(1);
        let mut op =
            SortOp::new(Box::new(input), PnId(0), m).unwrap().with_batch_rows(1).with_guard(guard);
        let err = op.next_batch().unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }));
    }
}
