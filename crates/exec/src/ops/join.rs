//! Stack-tree structural joins over tuple streams.
//!
//! Both algorithms come from Al-Khalifa et al., *Structural Joins: A
//! Primitive for Efficient XML Query Pattern Matching* (ICDE 2002),
//! generalized from node lists to tuple lists: the left input binds
//! the ancestor-side pattern node (and is ordered by it), the right
//! input binds the descendant-side node (ordered by it). A stack of
//! left tuples tracks the current ancestor chain.
//!
//! * **Stack-Tree-Desc** emits each output pair the moment the
//!   descendant tuple is consumed — fully streaming, output ordered
//!   by the descendant node.
//! * **Stack-Tree-Anc** must emit in ancestor order, so pairs are
//!   parked on per-stack-entry *self* and *inherit* lists and released
//!   when the stack bottom pops (the buffering that gives the
//!   algorithm its extra I/O cost term in the paper's model).

use std::collections::VecDeque;
use std::sync::Arc;

use sjos_pattern::{Axis, PnId};

use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, Operator};
use crate::plan::JoinAlgo;
use crate::tuple::{Schema, Tuple};

/// A structural join operator (either stack-tree variant).
pub struct StackTreeJoinOp<'a> {
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    /// Column index of the ancestor-side join node in `left`.
    left_col: usize,
    /// Column index of the descendant-side join node in `right`.
    right_col: usize,
    axis: Axis,
    algo: JoinAlgo,
    schema: Schema,
    metrics: Arc<ExecMetrics>,

    started: bool,
    cur_left: Option<Tuple>,
    cur_right: Option<Tuple>,
    /// Desc: plain ancestor stack. Anc: stack with pair lists.
    stack: Vec<StackEntry>,
    /// Desc: index into `stack` while emitting matches of `cur_right`.
    emit_idx: usize,
    emitting: bool,
    /// Anc: completed output awaiting delivery.
    ready: VecDeque<Tuple>,
    /// Debug-only: last start positions seen on each input, to verify
    /// input ordering.
    last_left_start: Option<u32>,
    last_right_start: Option<u32>,
}

struct StackEntry {
    tuple: Tuple,
    /// Pairs with this entry as the ancestor (Anc only).
    self_list: Vec<Tuple>,
    /// Ordered pairs inherited from popped descendants (Anc only).
    inherit_list: Vec<Tuple>,
}

impl<'a> StackTreeJoinOp<'a> {
    /// Join `left` (binding/ordered by `anc`) with `right`
    /// (binding/ordered by `desc`).
    ///
    /// # Panics
    /// Panics if an input does not bind its join node.
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        anc: PnId,
        desc: PnId,
        axis: Axis,
        algo: JoinAlgo,
        metrics: Arc<ExecMetrics>,
    ) -> Self {
        let left_col = left
            .schema()
            .position(anc)
            .unwrap_or_else(|| panic!("left input does not bind {anc:?}"));
        let right_col = right
            .schema()
            .position(desc)
            .unwrap_or_else(|| panic!("right input does not bind {desc:?}"));
        assert!(
            algo != JoinAlgo::MergeJoin,
            "MergeJoin is implemented by MergeJoinOp, not the stack-tree operator"
        );
        let schema = left.schema().concat(right.schema());
        StackTreeJoinOp {
            left,
            right,
            left_col,
            right_col,
            axis,
            algo,
            schema,
            metrics,
            started: false,
            cur_left: None,
            cur_right: None,
            stack: Vec::new(),
            emit_idx: 0,
            emitting: false,
            ready: VecDeque::new(),
            last_left_start: None,
            last_right_start: None,
        }
    }

    #[inline]
    fn left_start(&self, t: &Tuple) -> u32 {
        t[self.left_col].region.start
    }

    #[inline]
    fn right_start(&self, t: &Tuple) -> u32 {
        t[self.right_col].region.start
    }

    fn advance_left(&mut self) -> Option<Tuple> {
        let next = self.left.next();
        if let Some(t) = &next {
            let s = self.left_start(t);
            debug_assert!(
                self.last_left_start.is_none_or(|p| p <= s),
                "left input not ordered by ancestor column"
            );
            self.last_left_start = Some(s);
        }
        std::mem::replace(&mut self.cur_left, next)
    }

    fn advance_right(&mut self) -> Option<Tuple> {
        let next = self.right.next();
        if let Some(t) = &next {
            let s = self.right_start(t);
            debug_assert!(
                self.last_right_start.is_none_or(|p| p <= s),
                "right input not ordered by descendant column"
            );
            self.last_right_start = Some(s);
        }
        std::mem::replace(&mut self.cur_right, next)
    }

    /// Does the pair (ancestor entry `a`, descendant tuple `d`)
    /// satisfy the axis?  Containment is implied by stack membership;
    /// only the level test remains for `/`.
    #[inline]
    fn axis_ok(&self, a: &Tuple, d: &Tuple) -> bool {
        match self.axis {
            Axis::Descendant => true,
            Axis::Child => a[self.left_col].region.level + 1 == d[self.right_col].region.level,
        }
    }

    fn concat(&self, a: &Tuple, d: &Tuple) -> Tuple {
        let mut out = Vec::with_capacity(a.len() + d.len());
        out.extend_from_slice(a);
        out.extend_from_slice(d);
        out
    }

    /// Pop every stack entry whose interval ends before `pos`.
    fn pop_before(&mut self, pos: u32) {
        while let Some(top) = self.stack.last() {
            if top.tuple[self.left_col].region.end < pos {
                self.pop_one();
            } else {
                break;
            }
        }
    }

    /// Pop the top entry, routing its buffered pairs (Anc).
    fn pop_one(&mut self) {
        let entry = self.stack.pop().expect("pop from empty stack");
        ExecMetrics::add(&self.metrics.stack_pops, 1);
        if self.algo == JoinAlgo::StackTreeAnc {
            let mut pairs = entry.self_list;
            pairs.extend(entry.inherit_list);
            match self.stack.last_mut() {
                Some(below) => {
                    ExecMetrics::add(&self.metrics.buffered_pairs, pairs.len() as u64);
                    below.inherit_list.extend(pairs);
                }
                None => self.ready.extend(pairs),
            }
        }
    }

    fn push(&mut self, tuple: Tuple) {
        ExecMetrics::add(&self.metrics.stack_pushes, 1);
        self.stack.push(StackEntry { tuple, self_list: Vec::new(), inherit_list: Vec::new() });
    }

    /// One step of the merge loop. Returns `false` when both inputs
    /// and the stack are fully drained.
    fn step(&mut self) -> bool {
        match (&self.cur_left, &self.cur_right) {
            (Some(a), Some(d)) => {
                let (a_start, d_start) = (self.left_start(a), self.right_start(d));
                if a_start < d_start {
                    self.pop_before(a_start);
                    let t = self.advance_left().expect("cur_left present");
                    self.push(t);
                } else {
                    self.consume_right();
                }
                true
            }
            (None, Some(_)) => {
                self.consume_right();
                // Once the stack is empty with the left side done, no
                // later descendant can match.
                if self.stack.is_empty() && self.ready.is_empty() && !self.emitting {
                    self.cur_right = None;
                    self.drain_stack();
                    return false;
                }
                true
            }
            // No descendants left: flush (Anc) and stop.
            (_, None) => {
                self.drain_stack();
                false
            }
        }
    }

    /// Process the current right tuple against the stack.
    fn consume_right(&mut self) {
        let d_start = {
            let d = self.cur_right.as_ref().expect("cur_right present");
            self.right_start(d)
        };
        self.pop_before(d_start);
        match self.algo {
            JoinAlgo::StackTreeDesc => {
                // Emit lazily via `emitting` so output streams.
                self.emitting = true;
                self.emit_idx = 0;
            }
            JoinAlgo::StackTreeAnc => {
                let d = self.advance_right().expect("cur_right present");
                for i in 0..self.stack.len() {
                    if self.axis_ok(&self.stack[i].tuple, &d) {
                        let pair = self.concat(&self.stack[i].tuple, &d);
                        ExecMetrics::add(&self.metrics.buffered_pairs, 1);
                        self.stack[i].self_list.push(pair);
                    }
                }
            }
            JoinAlgo::MergeJoin => unreachable!("rejected in the constructor"),
        }
    }

    fn drain_stack(&mut self) {
        while !self.stack.is_empty() {
            self.pop_one();
        }
    }

    fn produce(&self, t: Tuple) -> Tuple {
        ExecMetrics::add(&self.metrics.produced_tuples, 1);
        t
    }
}

impl Operator for StackTreeJoinOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        if !self.started {
            self.started = true;
            self.cur_left = self.left.next();
            if let Some(t) = &self.cur_left {
                self.last_left_start = Some(self.left_start(t));
            }
            self.cur_right = self.right.next();
            if let Some(t) = &self.cur_right {
                self.last_right_start = Some(self.right_start(t));
            }
        }
        loop {
            // Deliver Desc matches for the in-flight right tuple.
            if self.emitting {
                let d_matches = loop {
                    if self.emit_idx >= self.stack.len() {
                        break None;
                    }
                    let i = self.emit_idx;
                    self.emit_idx += 1;
                    let d = self.cur_right.as_ref().expect("emitting without right");
                    if self.axis_ok(&self.stack[i].tuple, d) {
                        break Some(self.concat(&self.stack[i].tuple, d));
                    }
                };
                match d_matches {
                    Some(t) => return Some(self.produce(t)),
                    None => {
                        self.emitting = false;
                        self.advance_right();
                        continue;
                    }
                }
            }
            // Deliver buffered Anc output.
            if let Some(t) = self.ready.pop_front() {
                return Some(self.produce(t));
            }
            if !self.step() {
                // Final flush may have filled `ready`.
                return self.ready.pop_front().map(|t| self.produce(t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Entry;
    use sjos_xml::{NodeId, Region};

    /// A canned single-column input.
    struct FixedInput {
        schema: Schema,
        rows: std::vec::IntoIter<Tuple>,
    }

    impl FixedInput {
        fn new(col: PnId, regions: Vec<Region>) -> Self {
            let rows: Vec<Tuple> = regions
                .into_iter()
                .enumerate()
                .map(|(i, r)| vec![Entry { node: NodeId(i as u32), region: r }])
                .collect();
            FixedInput { schema: Schema::singleton(col), rows: rows.into_iter() }
        }
    }

    impl Operator for FixedInput {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Tuple> {
            self.rows.next()
        }
    }

    fn r(start: u32, end: u32, level: u16) -> Region {
        Region { start, end, level }
    }

    /// Document shape:
    /// a1=(0,11,0) contains a2=(1,6,1), d1=(2,3,2), d2=(4,5,2), d3=(7,8,1);
    /// a3=(12,15,0) contains d4=(13,14,1).
    fn ancestors() -> Vec<Region> {
        vec![r(0, 11, 0), r(1, 6, 1), r(12, 15, 0)]
    }

    fn descendants() -> Vec<Region> {
        vec![r(2, 3, 2), r(4, 5, 2), r(7, 8, 1), r(13, 14, 1)]
    }

    fn run(algo: JoinAlgo, axis: Axis) -> (Vec<(u32, u32)>, Arc<ExecMetrics>) {
        let m = ExecMetrics::new();
        let left = Box::new(FixedInput::new(PnId(0), ancestors()));
        let right = Box::new(FixedInput::new(PnId(1), descendants()));
        let mut op =
            StackTreeJoinOp::new(left, right, PnId(0), PnId(1), axis, algo, Arc::clone(&m));
        let mut out = vec![];
        while let Some(t) = op.next() {
            out.push((t[0].region.start, t[1].region.start));
        }
        (out, m)
    }

    #[test]
    fn desc_finds_all_ancestor_descendant_pairs() {
        let (out, _) = run(JoinAlgo::StackTreeDesc, Axis::Descendant);
        // Expected pairs (anc.start, desc.start):
        // d1(2): a1, a2; d2(4): a1, a2; d3(7): a1; d4(13): a3.
        let mut expected = vec![(0, 2), (1, 2), (0, 4), (1, 4), (0, 7), (12, 13)];
        let mut got = out.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
        // Desc order: primary key = descendant start.
        let desc_starts: Vec<u32> = out.iter().map(|p| p.1).collect();
        assert!(desc_starts.windows(2).all(|w| w[0] <= w[1]), "{desc_starts:?}");
    }

    #[test]
    fn anc_output_is_ancestor_ordered() {
        let (out, _) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        let anc_starts: Vec<u32> = out.iter().map(|p| p.0).collect();
        assert!(anc_starts.windows(2).all(|w| w[0] <= w[1]), "{anc_starts:?}");
        let mut got = out;
        got.sort_unstable();
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn anc_and_desc_agree_on_the_pair_set() {
        let (mut a, _) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        let (mut d, _) = run(JoinAlgo::StackTreeDesc, Axis::Descendant);
        a.sort_unstable();
        d.sort_unstable();
        assert_eq!(a, d);
    }

    #[test]
    fn parent_child_filters_by_level() {
        let (mut out, _) = run(JoinAlgo::StackTreeDesc, Axis::Child);
        out.sort_unstable();
        // Parent pairs: a2(level1)->d1(level2), a2->d2, a1(level0)->d3(level1), a3->d4.
        assert_eq!(out, vec![(0, 7), (1, 2), (1, 4), (12, 13)]);
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let m = ExecMetrics::new();
        let left = Box::new(FixedInput::new(PnId(0), vec![]));
        let right = Box::new(FixedInput::new(PnId(1), descendants()));
        let mut op = StackTreeJoinOp::new(
            left,
            right,
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        );
        assert!(op.next().is_none());
    }

    #[test]
    fn metrics_count_stack_traffic() {
        let (_, m) = run(JoinAlgo::StackTreeDesc, Axis::Descendant);
        let s = m.snapshot();
        assert_eq!(s.stack_pushes, 3, "each ancestor pushed once");
        assert_eq!(s.stack_pops, 3);
        assert_eq!(s.produced_tuples, 6);
        assert_eq!(s.buffered_pairs, 0, "Desc never buffers");
        let (_, m2) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        assert!(m2.snapshot().buffered_pairs >= 6, "Anc buffers every pair");
    }

    #[test]
    fn self_join_excludes_identity() {
        // Same list on both sides (e.g. manager//manager).
        let regions = vec![r(0, 7, 0), r(1, 6, 1), r(2, 3, 2)];
        let m = ExecMetrics::new();
        let left = Box::new(FixedInput::new(PnId(0), regions.clone()));
        let right = Box::new(FixedInput::new(PnId(1), regions));
        let mut op = StackTreeJoinOp::new(
            left,
            right,
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        );
        let mut out = vec![];
        while let Some(t) = op.next() {
            out.push((t[0].region.start, t[1].region.start));
        }
        out.sort_unstable();
        assert_eq!(out, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn deep_nesting_keeps_whole_chain_on_stack() {
        let n = 50u32;
        let ancs: Vec<Region> = (0..n).map(|i| r(i, 2 * n + 1 - i, i as u16)).collect();
        let descs = vec![r(n, n + 1, n as u16)];
        let m = ExecMetrics::new();
        let left = Box::new(FixedInput::new(PnId(0), ancs));
        let right = Box::new(FixedInput::new(PnId(1), descs));
        let mut op = StackTreeJoinOp::new(
            left,
            right,
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        );
        let mut count = 0;
        while op.next().is_some() {
            count += 1;
        }
        assert_eq!(count, n, "every ancestor matches the single leaf");
    }
}
