//! Stack-tree structural joins over batched tuple streams.
//!
//! Both algorithms come from Al-Khalifa et al., *Structural Joins: A
//! Primitive for Efficient XML Query Pattern Matching* (ICDE 2002),
//! generalized from node lists to tuple lists: the left input binds
//! the ancestor-side pattern node (and is ordered by it), the right
//! input binds the descendant-side node (ordered by it). A stack of
//! left tuples tracks the current ancestor chain.
//!
//! * **Stack-Tree-Desc** emits each output pair the moment the
//!   descendant tuple is consumed — fully streaming, output ordered
//!   by the descendant node.
//! * **Stack-Tree-Anc** must emit in ancestor order, so pairs are
//!   parked on per-stack-entry *self* and *inherit* lists and released
//!   when the stack bottom pops (the buffering that gives the
//!   algorithm its extra I/O cost term in the paper's model).
//!
//! The merge loop itself stays tuple-granular (the algorithms are
//! inherently cursor-based), but inputs arrive and output leaves in
//! columnar [`TupleBatch`]es, and the stack/buffer/output metric
//! counters are accumulated locally and flushed with one atomic add
//! per counter per batch — the totals are bit-identical to the
//! tuple-at-a-time engine for every batch size.
//!
//! The merge loop additionally keeps its counters *partition-exact*:
//! every left tuple consumed is pushed (and eventually popped) even
//! after the right stream ends, so `stack_pushes` equals the number
//! of left tuples and `stack_pops` equals `stack_pushes` for any
//! input. Because a region-range morsel's inputs are exactly the
//! serial inputs restricted to its range — and a valid cut is one no
//! scanned interval straddles, so the serial stack is empty at every
//! cut — per-morsel counters sum bit-identically to the serial run
//! (planck rule PL068 re-verifies this dynamically).

use std::collections::VecDeque;
use std::sync::Arc;

use sjos_pattern::{Axis, PnId};

use crate::error::EngineError;
use crate::guard::QueryGuard;
use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, InputCursor, Operator};
use crate::plan::JoinAlgo;
use crate::tuple::{Entry, Schema, Tuple, TupleBatch, BATCH_ROWS};

/// A structural join operator (either stack-tree variant).
pub struct StackTreeJoinOp<'a> {
    left: InputCursor<'a>,
    right: InputCursor<'a>,
    /// Column index of the ancestor-side join node in the left input.
    left_col: usize,
    /// Column index of the descendant-side join node in the right
    /// input.
    right_col: usize,
    /// Width of the left input (offset of right columns in output).
    left_width: usize,
    axis: Axis,
    algo: JoinAlgo,
    schema: Arc<Schema>,
    metrics: Arc<ExecMetrics>,
    guard: Option<Arc<QueryGuard>>,

    /// Desc: plain ancestor stack. Anc: stack with pair lists.
    stack: Vec<StackEntry>,
    /// Anc: completed output awaiting delivery.
    ready: VecDeque<Tuple>,
    /// Reused copy of the right tuple being consumed.
    scratch_right: Vec<Entry>,
    done: bool,
    batch_rows: usize,

    /// Local metric accumulators, flushed once per batch.
    c_pushes: u64,
    c_pops: u64,
    c_buffered: u64,
    /// Anc pairs created over the operator's lifetime / already
    /// reported to the guard — the delta is reserved once per batch.
    pairs_created: u64,
    pairs_reserved: u64,
    /// Bytes currently accounted to [`ExecMetrics`] as live (stack
    /// entries plus buffered Anc pairs); the remainder is released on
    /// drop. Unlike the guard's cumulative reservation this tracks
    /// the instantaneous footprint, so it shrinks as pairs leave via
    /// `ready` and stack entries pop.
    metrics_live_bytes: u64,
}

struct StackEntry {
    tuple: Tuple,
    /// Pairs with this entry as the ancestor (Anc only).
    self_list: Vec<Tuple>,
    /// Ordered pairs inherited from popped descendants (Anc only).
    inherit_list: Vec<Tuple>,
}

impl<'a> StackTreeJoinOp<'a> {
    /// Join `left` (binding/ordered by `anc`) with `right`
    /// (binding/ordered by `desc`).
    ///
    /// # Errors
    /// [`EngineError::InvalidPlan`] if an input does not bind its
    /// join node, or if `algo` is [`JoinAlgo::MergeJoin`] (which is
    /// implemented by `MergeJoinOp`) — optimizer bugs, reported
    /// instead of panicking.
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        anc: PnId,
        desc: PnId,
        axis: Axis,
        algo: JoinAlgo,
        metrics: Arc<ExecMetrics>,
    ) -> Result<Self, EngineError> {
        let left_col = left.schema().position(anc).ok_or_else(|| {
            EngineError::InvalidPlan(format!("left join input does not bind {anc:?}"))
        })?;
        let right_col = right.schema().position(desc).ok_or_else(|| {
            EngineError::InvalidPlan(format!("right join input does not bind {desc:?}"))
        })?;
        if algo == JoinAlgo::MergeJoin {
            return Err(EngineError::InvalidPlan(
                "MergeJoin is implemented by MergeJoinOp, not the stack-tree operator".into(),
            ));
        }
        let schema = Arc::new(left.schema().concat(right.schema()));
        let left_width = left.schema().width();
        Ok(StackTreeJoinOp {
            left: InputCursor::new(left, left_col),
            right: InputCursor::new(right, right_col),
            left_col,
            right_col,
            left_width,
            axis,
            algo,
            schema,
            metrics,
            guard: None,
            stack: Vec::new(),
            ready: VecDeque::new(),
            scratch_right: Vec::new(),
            done: false,
            batch_rows: BATCH_ROWS,
            c_pushes: 0,
            c_pops: 0,
            c_buffered: 0,
            pairs_created: 0,
            pairs_reserved: 0,
            metrics_live_bytes: 0,
        })
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]). A
    /// batch may overshoot the target by the stack depth because one
    /// descendant's matches are always emitted together.
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Report Anc pair-buffer growth to `guard`'s memory budget.
    #[must_use]
    pub fn with_guard(mut self, guard: Arc<QueryGuard>) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Start of the current left tuple's ancestor-column region.
    fn left_start(&mut self) -> Result<Option<u32>, EngineError> {
        let col = self.left_col;
        Ok(self.left.peek()?.map(|(b, r)| b.entry(col, r).region.start))
    }

    /// Start of the current right tuple's descendant-column region.
    fn right_start(&mut self) -> Result<Option<u32>, EngineError> {
        let col = self.right_col;
        Ok(self.right.peek()?.map(|(b, r)| b.entry(col, r).region.start))
    }

    /// Does the pair (ancestor row `a`, descendant row `d`) satisfy
    /// the axis? Containment is implied by stack membership; only the
    /// level test remains for `/`.
    #[inline]
    fn axis_ok(&self, a: &[Entry], d: &[Entry]) -> bool {
        match self.axis {
            Axis::Descendant => true,
            Axis::Child => a[self.left_col].region.level + 1 == d[self.right_col].region.level,
        }
    }

    /// Bytes of one stack entry's tuple.
    #[inline]
    fn stack_entry_bytes(&self) -> u64 {
        (self.left_width * std::mem::size_of::<Entry>()) as u64
    }

    /// Bytes of one buffered output pair.
    #[inline]
    fn pair_bytes(&self) -> u64 {
        (self.schema.width() * std::mem::size_of::<Entry>()) as u64
    }

    #[inline]
    fn reserve_live(&mut self, bytes: u64) {
        self.metrics.reserve_bytes(bytes);
        self.metrics_live_bytes += bytes;
    }

    #[inline]
    fn release_live(&mut self, bytes: u64) {
        self.metrics.release_bytes(bytes);
        self.metrics_live_bytes = self.metrics_live_bytes.saturating_sub(bytes);
    }

    /// Pop every stack entry whose interval ends before `pos`.
    fn pop_before(&mut self, pos: u32) {
        while let Some(top) = self.stack.last() {
            if top.tuple[self.left_col].region.end < pos {
                self.pop_one();
            } else {
                break;
            }
        }
    }

    /// Pop the top entry, routing its buffered pairs (Anc).
    fn pop_one(&mut self) {
        // Invariant: both call sites check the stack is non-empty
        // (`pop_before` peeks the top, `step` loops on `!is_empty`).
        let entry = self.stack.pop().expect("pop from empty stack");
        self.c_pops += 1;
        self.release_live(self.stack_entry_bytes());
        if self.algo == JoinAlgo::StackTreeAnc {
            let mut pairs = entry.self_list;
            pairs.extend(entry.inherit_list);
            match self.stack.last_mut() {
                Some(below) => {
                    self.c_buffered += pairs.len() as u64;
                    below.inherit_list.extend(pairs);
                }
                None => self.ready.extend(pairs),
            }
        }
    }

    fn push(&mut self, tuple: Tuple) {
        self.c_pushes += 1;
        self.reserve_live(self.stack_entry_bytes());
        self.stack.push(StackEntry { tuple, self_list: Vec::new(), inherit_list: Vec::new() });
    }

    /// One step of the merge loop: consume one input tuple, emitting
    /// Desc pairs into `out`. Sets `done` when no further output can
    /// exist (buffered Anc output may still be in `ready`).
    fn step(&mut self, out: &mut TupleBatch) -> Result<(), EngineError> {
        match (self.left_start()?, self.right_start()?) {
            (Some(a_start), Some(d_start)) => {
                if a_start < d_start {
                    self.pop_before(a_start);
                    // Invariant: `left_start` above peeked this row.
                    let t = self.left.peek_row()?.expect("left row present");
                    self.left.advance();
                    self.push(t);
                } else {
                    self.consume_right(out)?;
                }
            }
            (None, Some(_)) => {
                self.consume_right(out)?;
                // Once the stack is empty with the left side done, no
                // later descendant can match; run the abandoned right
                // side out so total work is batch-size-independent.
                if self.stack.is_empty() {
                    self.right.exhaust()?;
                    self.done = true;
                }
            }
            // No descendants left, but ancestors remain: keep them on
            // the normal push/pop path (they cannot produce output,
            // but this keeps stack traffic equal to the number of
            // left tuples consumed — the invariant that makes metric
            // totals decompose exactly over region-range morsels,
            // where a morsel's descendant slice may end before its
            // ancestor slice does).
            (Some(a_start), None) => {
                self.pop_before(a_start);
                // Invariant: `left_start` above peeked this row.
                let t = self.left.peek_row()?.expect("left row present");
                self.left.advance();
                self.push(t);
            }
            // Both sides done: flush the remaining stack (Anc pair
            // routing included) and stop.
            (None, None) => {
                while !self.stack.is_empty() {
                    self.pop_one();
                }
                self.done = true;
            }
        }
        Ok(())
    }

    /// Process the current right tuple against the stack.
    fn consume_right(&mut self, out: &mut TupleBatch) -> Result<(), EngineError> {
        // Invariant: every caller has just peeked a right row.
        let d_start = self.right_start()?.expect("right row present");
        self.pop_before(d_start);
        {
            let (batch, row) = self.right.peek()?.expect("right row present");
            self.scratch_right.clear();
            self.scratch_right.extend((0..batch.width()).map(|c| batch.entry(c, row)));
        }
        self.right.advance();
        match self.algo {
            JoinAlgo::StackTreeDesc => {
                // Emit bottom-up so each descendant's pairs leave in
                // ancestor order, matching the tuple-engine's lazy
                // stack walk.
                for i in 0..self.stack.len() {
                    if self.axis_ok(&self.stack[i].tuple, &self.scratch_right) {
                        out.push_concat(&self.stack[i].tuple, &self.scratch_right);
                    }
                }
            }
            JoinAlgo::StackTreeAnc => {
                for i in 0..self.stack.len() {
                    if self.axis_ok(&self.stack[i].tuple, &self.scratch_right) {
                        let mut pair = Vec::with_capacity(self.schema.width());
                        pair.extend_from_slice(&self.stack[i].tuple);
                        pair.extend_from_slice(&self.scratch_right);
                        self.c_buffered += 1;
                        self.pairs_created += 1;
                        self.reserve_live(self.pair_bytes());
                        self.stack[i].self_list.push(pair);
                    }
                }
            }
            JoinAlgo::MergeJoin => unreachable!("rejected in the constructor"),
        }
        Ok(())
    }

    /// Flush local counters to the shared metrics — one atomic add
    /// per touched counter per batch.
    fn flush_metrics(&mut self) {
        if self.c_pushes > 0 {
            ExecMetrics::add(&self.metrics.stack_pushes, self.c_pushes);
            self.c_pushes = 0;
        }
        if self.c_pops > 0 {
            ExecMetrics::add(&self.metrics.stack_pops, self.c_pops);
            self.c_pops = 0;
        }
        if self.c_buffered > 0 {
            ExecMetrics::add(&self.metrics.buffered_pairs, self.c_buffered);
            self.c_buffered = 0;
        }
    }

    /// Account newly created Anc pairs against the guard's memory
    /// budget (once per output batch). Pairs moving between inherit
    /// lists and `ready` are not counted again — only creation
    /// allocates.
    fn reserve_buffered(&mut self) -> Result<(), EngineError> {
        if self.pairs_created > self.pairs_reserved {
            if let Some(guard) = &self.guard {
                let pair_bytes = self.schema.width() * std::mem::size_of::<Entry>();
                let fresh = (self.pairs_created - self.pairs_reserved) as usize;
                guard.reserve(fresh * pair_bytes)?;
            }
            self.pairs_reserved = self.pairs_created;
        }
        Ok(())
    }
}

impl Drop for StackTreeJoinOp<'_> {
    fn drop(&mut self) {
        self.metrics.release_bytes(self.metrics_live_bytes);
    }
}

impl Operator for StackTreeJoinOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        match self.algo {
            JoinAlgo::StackTreeDesc => self.left_width + self.right_col,
            _ => self.left_col,
        }
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        let mut out = TupleBatch::with_capacity(self.schema.clone(), self.batch_rows);
        while out.len() < self.batch_rows {
            if let Some(t) = self.ready.pop_front() {
                out.push_row(&t);
                self.release_live(self.pair_bytes());
                continue;
            }
            if self.done {
                break;
            }
            if let Err(e) = self.step(&mut out) {
                // Flush before propagating so partial metrics are
                // accurate at the moment of failure.
                self.flush_metrics();
                return Err(e);
            }
        }
        self.flush_metrics();
        self.reserve_buffered()?;
        if out.is_empty() {
            return Ok(None);
        }
        ExecMetrics::add(&self.metrics.produced_tuples, out.len() as u64);
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecInput;
    use sjos_xml::{NodeId, Region};

    fn fixed(col: PnId, regions: Vec<Region>) -> VecInput {
        let entries = regions
            .into_iter()
            .enumerate()
            .map(|(i, r)| Entry { node: NodeId(i as u32), region: r })
            .collect();
        VecInput::single(col, entries)
    }

    fn r(start: u32, end: u32, level: u16) -> Region {
        Region { start, end, level }
    }

    /// Document shape:
    /// a1=(0,11,0) contains a2=(1,6,1), d1=(2,3,2), d2=(4,5,2), d3=(7,8,1);
    /// a3=(12,15,0) contains d4=(13,14,1).
    fn ancestors() -> Vec<Region> {
        vec![r(0, 11, 0), r(1, 6, 1), r(12, 15, 0)]
    }

    fn descendants() -> Vec<Region> {
        vec![r(2, 3, 2), r(4, 5, 2), r(7, 8, 1), r(13, 14, 1)]
    }

    fn drain(op: &mut StackTreeJoinOp<'_>) -> Vec<(u32, u32)> {
        let mut out = vec![];
        while let Some(b) = op.next_batch().unwrap() {
            assert!(!b.is_empty(), "batches are never empty");
            for row in 0..b.len() {
                out.push((b.entry(0, row).region.start, b.entry(1, row).region.start));
            }
        }
        out
    }

    fn run_batched(
        algo: JoinAlgo,
        axis: Axis,
        batch_rows: usize,
    ) -> (Vec<(u32, u32)>, Arc<ExecMetrics>) {
        let m = ExecMetrics::new();
        let left = Box::new(fixed(PnId(0), ancestors()).with_batch_rows(batch_rows));
        let right = Box::new(fixed(PnId(1), descendants()).with_batch_rows(batch_rows));
        let mut op =
            StackTreeJoinOp::new(left, right, PnId(0), PnId(1), axis, algo, Arc::clone(&m))
                .unwrap()
                .with_batch_rows(batch_rows);
        (drain(&mut op), m)
    }

    fn run(algo: JoinAlgo, axis: Axis) -> (Vec<(u32, u32)>, Arc<ExecMetrics>) {
        run_batched(algo, axis, BATCH_ROWS)
    }

    #[test]
    fn desc_finds_all_ancestor_descendant_pairs() {
        let (out, _) = run(JoinAlgo::StackTreeDesc, Axis::Descendant);
        // Expected pairs (anc.start, desc.start):
        // d1(2): a1, a2; d2(4): a1, a2; d3(7): a1; d4(13): a3.
        let mut expected = vec![(0, 2), (1, 2), (0, 4), (1, 4), (0, 7), (12, 13)];
        let mut got = out.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
        // Desc order: primary key = descendant start.
        let desc_starts: Vec<u32> = out.iter().map(|p| p.1).collect();
        assert!(desc_starts.windows(2).all(|w| w[0] <= w[1]), "{desc_starts:?}");
    }

    #[test]
    fn anc_output_is_ancestor_ordered() {
        let (out, _) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        let anc_starts: Vec<u32> = out.iter().map(|p| p.0).collect();
        assert!(anc_starts.windows(2).all(|w| w[0] <= w[1]), "{anc_starts:?}");
        let mut got = out;
        got.sort_unstable();
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn anc_and_desc_agree_on_the_pair_set() {
        let (mut a, _) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        let (mut d, _) = run(JoinAlgo::StackTreeDesc, Axis::Descendant);
        a.sort_unstable();
        d.sort_unstable();
        assert_eq!(a, d);
    }

    #[test]
    fn parent_child_filters_by_level() {
        let (mut out, _) = run(JoinAlgo::StackTreeDesc, Axis::Child);
        out.sort_unstable();
        // Parent pairs: a2(level1)->d1(level2), a2->d2, a1(level0)->d3(level1), a3->d4.
        assert_eq!(out, vec![(0, 7), (1, 2), (1, 4), (12, 13)]);
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let m = ExecMetrics::new();
        let left = Box::new(fixed(PnId(0), vec![]));
        let right = Box::new(fixed(PnId(1), descendants()));
        let mut op = StackTreeJoinOp::new(
            left,
            right,
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        )
        .unwrap();
        assert!(op.next_batch().unwrap().is_none());
    }

    #[test]
    fn unbound_join_column_is_a_typed_error() {
        let m = ExecMetrics::new();
        let err = StackTreeJoinOp::new(
            Box::new(fixed(PnId(0), ancestors())),
            Box::new(fixed(PnId(1), descendants())),
            PnId(0),
            PnId(9),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        )
        .err()
        .expect("unbound descendant column");
        assert!(matches!(err, EngineError::InvalidPlan(_)));
    }

    #[test]
    fn anc_memory_budget_bounds_pair_buffering() {
        use crate::error::GuardBreach;
        // Nested ancestors make Anc buffer every pair; a tiny budget
        // trips once the self-lists grow.
        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(64));
        let m = ExecMetrics::new();
        let mut op = StackTreeJoinOp::new(
            Box::new(fixed(PnId(0), ancestors())),
            Box::new(fixed(PnId(1), descendants())),
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeAnc,
            m,
        )
        .unwrap()
        .with_batch_rows(1)
        .with_guard(guard);
        let mut saw_breach = false;
        loop {
            match op.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }) => {
                    saw_breach = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_breach, "pair buffering must trip the memory budget");
    }

    #[test]
    fn metrics_count_stack_traffic() {
        let (_, m) = run(JoinAlgo::StackTreeDesc, Axis::Descendant);
        let s = m.snapshot();
        assert_eq!(s.stack_pushes, 3, "each ancestor pushed once");
        assert_eq!(s.stack_pops, 3);
        assert_eq!(s.produced_tuples, 6);
        assert_eq!(s.buffered_pairs, 0, "Desc never buffers");
        let (_, m2) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        assert!(m2.snapshot().buffered_pairs >= 6, "Anc buffers every pair");
    }

    #[test]
    fn batch_size_never_changes_output_or_metrics() {
        for algo in [JoinAlgo::StackTreeDesc, JoinAlgo::StackTreeAnc] {
            let (base_out, base_m) = run_batched(algo, Axis::Descendant, BATCH_ROWS);
            let base = base_m.snapshot();
            for rows in [1, 2, 3] {
                let (out, m) = run_batched(algo, Axis::Descendant, rows);
                assert_eq!(out, base_out, "{algo:?} output differs at batch_rows={rows}");
                let s = m.snapshot();
                assert_eq!(s.stack_pushes, base.stack_pushes);
                assert_eq!(s.stack_pops, base.stack_pops);
                assert_eq!(s.buffered_pairs, base.buffered_pairs);
                assert_eq!(s.produced_tuples, base.produced_tuples);
            }
        }
    }

    #[test]
    fn peak_bytes_rise_while_running_and_release_on_drop() {
        use std::sync::atomic::Ordering;
        let (_, m) = run(JoinAlgo::StackTreeAnc, Axis::Descendant);
        let s = m.snapshot();
        let pair = 2 * std::mem::size_of::<Entry>() as u64;
        assert!(s.peak_bytes >= pair, "Anc buffering must register a peak: {}", s.peak_bytes);
        assert_eq!(m.cur_bytes.load(Ordering::Relaxed), 0, "all buffers released after drop");
    }

    #[test]
    fn self_join_excludes_identity() {
        // Same list on both sides (e.g. manager//manager).
        let regions = vec![r(0, 7, 0), r(1, 6, 1), r(2, 3, 2)];
        let m = ExecMetrics::new();
        let left = Box::new(fixed(PnId(0), regions.clone()));
        let right = Box::new(fixed(PnId(1), regions));
        let mut op = StackTreeJoinOp::new(
            left,
            right,
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        )
        .unwrap();
        let mut out = drain(&mut op);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn deep_nesting_keeps_whole_chain_on_stack() {
        let n = 50u32;
        let ancs: Vec<Region> = (0..n).map(|i| r(i, 2 * n + 1 - i, i as u16)).collect();
        let descs = vec![r(n, n + 1, n as u16)];
        let m = ExecMetrics::new();
        let left = Box::new(fixed(PnId(0), ancs));
        let right = Box::new(fixed(PnId(1), descs));
        let mut op = StackTreeJoinOp::new(
            left,
            right,
            PnId(0),
            PnId(1),
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
            m,
        )
        .unwrap();
        let count: usize = std::iter::from_fn(|| op.next_batch().unwrap().map(|b| b.len())).sum();
        assert_eq!(count as u32, n, "every ancestor matches the single leaf");
    }
}
