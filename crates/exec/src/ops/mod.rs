//! Volcano-style physical operators, vectorized: each pull returns a
//! columnar [`TupleBatch`] instead of a single tuple.
//!
//! Every operator declares via [`Operator::ordered_col`] which output
//! column it keeps in document order `(region.start, region.end)`.
//! Debug builds verify that promise on every batch crossing an
//! operator boundary (see [`OrderingCheck`]); release builds pay
//! nothing.

pub mod join;
pub mod merge;
pub mod scan;
pub mod sort;

pub use join::StackTreeJoinOp;
pub use merge::MergeJoinOp;
pub use scan::IndexScanOp;
pub use sort::{SortOp, SpillPolicy};

use std::sync::Arc;

use crate::error::EngineError;
use crate::tuple::{Schema, Tuple, TupleBatch, BATCH_ROWS};

/// A pull-based operator producing columnar batches.
///
/// Contract: batches are never empty; end-of-stream is `Ok(None)`. The
/// column at [`Operator::ordered_col`] is non-decreasing in
/// `(region.start, region.end)` within each batch and across
/// consecutive batches. An `Err` is terminal: a storage fault or a
/// guard breach propagated up the tree — callers must not pull again.
pub trait Operator {
    /// Column layout of produced batches.
    fn schema(&self) -> &Arc<Schema>;

    /// Index of the output column this operator keeps in document
    /// order (every physical operator here orders by exactly one
    /// column — scans and sorts by construction, joins by the
    /// stack/merge algorithm's emission rule).
    fn ordered_col(&self) -> usize;

    /// Produce the next batch, `Ok(None)` when exhausted, or a
    /// typed error when storage or a resource guard fails the pull.
    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError>;
}

/// Boxed operator with the executor's lifetime.
pub type BoxedOperator<'a> = Box<dyn Operator + Send + 'a>;

/// Debug-only verifier of the ordering contract at one operator
/// boundary: each batch internally sorted by the ordered column, and
/// the first row of a batch not before the last row of the previous
/// one. Compiles to a no-op struct in release builds.
#[derive(Debug, Default)]
pub struct OrderingCheck {
    #[cfg(debug_assertions)]
    last: Option<(u32, u32)>,
}

impl OrderingCheck {
    /// Fresh checker (no batch seen yet).
    pub fn new() -> OrderingCheck {
        OrderingCheck::default()
    }

    /// Assert (debug builds only) that `batch` honours the ordering
    /// contract on column `col`, continuing from previous batches.
    #[inline]
    pub fn check(&mut self, batch: &TupleBatch, col: usize) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(batch.is_sorted_by(col), "batch not sorted by ordered column {col}");
            if let Some(first) = batch.column(col).first() {
                let key = (first.region.start, first.region.end);
                debug_assert!(
                    self.last.is_none_or(|last| last <= key),
                    "batch regresses across boundary on ordered column {col}"
                );
            }
            if let Some(last) = batch.column(col).last() {
                self.last = Some((last.region.start, last.region.end));
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (batch, col);
        }
    }
}

/// Cursor over an operator's batch stream, exposing per-row access so
/// the join algorithms can keep their tuple-granular control flow
/// while their inputs move in batches.
///
/// `required_col` is the column the *consumer* needs ordered (the
/// join's own input requirement, derived from the plan) — each pulled
/// batch is ordering-checked against it in debug builds.
pub(crate) struct InputCursor<'a> {
    op: BoxedOperator<'a>,
    check: OrderingCheck,
    required_col: usize,
    batch: Option<TupleBatch>,
    pos: usize,
    /// End-of-stream seen: later peeks return `None` without pulling
    /// the producer again, so one operator boundary sees at most one
    /// `None` pull — the invariant the static batch-pull bound
    /// (planck's PL063/PL064) counts on.
    done: bool,
}

impl<'a> InputCursor<'a> {
    pub(crate) fn new(op: BoxedOperator<'a>, required_col: usize) -> InputCursor<'a> {
        InputCursor {
            op,
            check: OrderingCheck::new(),
            required_col,
            batch: None,
            pos: 0,
            done: false,
        }
    }

    /// Current row, pulling the next batch if needed. `Ok(None)` at
    /// end-of-stream; a pull failure propagates.
    pub(crate) fn peek(&mut self) -> Result<Option<(&TupleBatch, usize)>, EngineError> {
        loop {
            if self.done {
                return Ok(None);
            }
            match &self.batch {
                Some(b) if self.pos < b.len() => break,
                _ => match self.op.next_batch()? {
                    Some(next) => {
                        self.check.check(&next, self.required_col);
                        self.batch = Some(next);
                        self.pos = 0;
                    }
                    None => {
                        self.done = true;
                        return Ok(None);
                    }
                },
            }
        }
        Ok(Some((self.batch.as_ref().expect("batch present"), self.pos)))
    }

    /// Copy of the current row, if any.
    pub(crate) fn peek_row(&mut self) -> Result<Option<Tuple>, EngineError> {
        Ok(self.peek()?.map(|(b, r)| b.row(r)))
    }

    /// Advance past the current row.
    pub(crate) fn advance(&mut self) {
        self.pos += 1;
    }

    /// Drain the rest of the stream, discarding rows.
    ///
    /// Called when the consumer terminates early (e.g. a join whose
    /// other input ran out): the producer still runs to completion, so
    /// the work every operator performs — and with it every metric
    /// counter — is identical at every batch granularity. Without
    /// this, an abandoned producer would have done work rounded up to
    /// its batch size, making counters drift with `batch_rows`.
    pub(crate) fn exhaust(&mut self) -> Result<(), EngineError> {
        self.batch = None;
        self.pos = 0;
        if self.done {
            return Ok(());
        }
        while let Some(next) = self.op.next_batch()? {
            self.check.check(&next, self.required_col);
        }
        self.done = true;
        Ok(())
    }
}

/// An operator over a pre-materialized tuple vector — useful for
/// testing operators in isolation and for the cost-model calibration
/// harness (which must time joins without scan overhead).
pub struct VecInput {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
    next_row: usize,
    batch_rows: usize,
}

impl VecInput {
    /// Wrap `rows` (which must already satisfy any ordering the
    /// consumer expects) with the given schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> VecInput {
        VecInput { schema: Arc::new(schema), rows, next_row: 0, batch_rows: BATCH_ROWS }
    }

    /// Single-column input from entries.
    pub fn single(column: sjos_pattern::PnId, entries: Vec<crate::tuple::Entry>) -> VecInput {
        VecInput::new(Schema::singleton(column), entries.into_iter().map(|e| vec![e]).collect())
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]).
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> VecInput {
        self.batch_rows = batch_rows.max(1);
        self
    }
}

impl Operator for VecInput {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        0
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        if self.next_row >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.next_row + self.batch_rows).min(self.rows.len());
        let mut batch = TupleBatch::with_capacity(self.schema.clone(), end - self.next_row);
        for row in &self.rows[self.next_row..end] {
            batch.push_row(row);
        }
        self.next_row = end;
        Ok(Some(batch))
    }
}
