//! Volcano-style physical operators.

pub mod join;
pub mod merge;
pub mod scan;
pub mod sort;

pub use join::StackTreeJoinOp;
pub use merge::MergeJoinOp;
pub use scan::IndexScanOp;
pub use sort::SortOp;

use crate::tuple::{Schema, Tuple};

/// A pull-based operator producing tuples one at a time.
pub trait Operator {
    /// Column layout of produced tuples.
    fn schema(&self) -> &Schema;

    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Option<Tuple>;
}

/// Boxed operator with the executor's lifetime.
pub type BoxedOperator<'a> = Box<dyn Operator + 'a>;

/// An operator over a pre-materialized tuple vector — useful for
/// testing operators in isolation and for the cost-model calibration
/// harness (which must time joins without scan overhead).
pub struct VecInput {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl VecInput {
    /// Wrap `rows` (which must already satisfy any ordering the
    /// consumer expects) with the given schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> VecInput {
        VecInput { schema, rows: rows.into_iter() }
    }

    /// Single-column input from entries.
    pub fn single(column: sjos_pattern::PnId, entries: Vec<crate::tuple::Entry>) -> VecInput {
        VecInput {
            schema: Schema::singleton(column),
            rows: entries.into_iter().map(|e| vec![e]).collect::<Vec<_>>().into_iter(),
        }
    }
}

impl Operator for VecInput {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        self.rows.next()
    }
}
