//! MPMGJN — the multi-predicate merge join of Zhang et al., *On
//! Supporting Containment Queries in Relational Database Management
//! Systems* (SIGMOD 2001): the pre-stack-tree structural join.
//!
//! Both inputs arrive in document order of their join columns. For
//! each ancestor tuple, the descendant input is scanned from a
//! *mark* that only moves forward with the ancestor's start; nested
//! ancestors re-scan the same descendant window — the quadratic-ish
//! behavior that motivated the stack-tree algorithms, reproduced
//! faithfully here (and priced by the cost model's rescan term).
//! Output is ordered by the ancestor column.

use std::sync::Arc;

use sjos_pattern::{Axis, PnId};

use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, Operator};
use crate::tuple::{Schema, Tuple};

/// Merge-based structural join; output ordered by the ancestor.
pub struct MergeJoinOp<'a> {
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    left_col: usize,
    right_col: usize,
    axis: Axis,
    schema: Schema,
    metrics: Arc<ExecMetrics>,

    /// Buffered descendant tuples (grows lazily).
    right_buf: Vec<Tuple>,
    right_done: bool,
    /// First buffered index that can still join a future ancestor.
    mark: usize,
    /// Scan position within the current ancestor's window.
    scan: usize,
    cur_left: Option<Tuple>,
    started: bool,
}

impl<'a> MergeJoinOp<'a> {
    /// Join `left` (binding/ordered by `anc`) with `right`
    /// (binding/ordered by `desc`).
    ///
    /// # Panics
    /// Panics if an input does not bind its join node.
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        anc: PnId,
        desc: PnId,
        axis: Axis,
        metrics: Arc<ExecMetrics>,
    ) -> Self {
        let left_col = left
            .schema()
            .position(anc)
            .unwrap_or_else(|| panic!("left input does not bind {anc:?}"));
        let right_col = right
            .schema()
            .position(desc)
            .unwrap_or_else(|| panic!("right input does not bind {desc:?}"));
        let schema = left.schema().concat(right.schema());
        MergeJoinOp {
            left,
            right,
            left_col,
            right_col,
            axis,
            schema,
            metrics,
            right_buf: Vec::new(),
            right_done: false,
            mark: 0,
            scan: 0,
            cur_left: None,
            started: false,
        }
    }

    fn fill_right_until(&mut self, pos: u32) {
        while !self.right_done {
            let need_more =
                self.right_buf.last().map(|t| t[self.right_col].region.start < pos).unwrap_or(true);
            if !need_more {
                break;
            }
            match self.right.next() {
                Some(t) => self.right_buf.push(t),
                None => self.right_done = true,
            }
        }
    }

    fn advance_left(&mut self) {
        self.cur_left = self.left.next();
        if let Some(a) = &self.cur_left {
            let a_region = a[self.left_col].region;
            // Move the mark past descendants that precede this (and
            // therefore every later) ancestor.
            self.fill_right_until(a_region.start);
            while self.mark < self.right_buf.len()
                && self.right_buf[self.mark][self.right_col].region.start < a_region.start
            {
                self.mark += 1;
            }
            // Rescan from the mark: nested ancestors revisit tuples.
            self.scan = self.mark;
            // Make sure the whole window is buffered.
            self.fill_right_until(a_region.end);
        }
    }
}

impl Operator for MergeJoinOp<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Tuple> {
        if !self.started {
            self.started = true;
            self.advance_left();
        }
        loop {
            let a = self.cur_left.as_ref()?;
            let a_region = a[self.left_col].region;
            while self.scan < self.right_buf.len() {
                let d = &self.right_buf[self.scan];
                let d_region = d[self.right_col].region;
                if d_region.start >= a_region.end {
                    break;
                }
                self.scan += 1;
                ExecMetrics::add(&self.metrics.merge_rescans, 1);
                // Window membership implies containment (regions
                // nest); only the level test remains for `/`.
                debug_assert!(d_region.start <= a_region.start || a_region.contains(d_region));
                if d_region.start <= a_region.start {
                    continue; // same element (self-join edge case)
                }
                if self.axis == Axis::Child && a_region.level + 1 != d_region.level {
                    continue;
                }
                let mut out = Vec::with_capacity(a.len() + d.len());
                out.extend_from_slice(a);
                out.extend_from_slice(d);
                ExecMetrics::add(&self.metrics.produced_tuples, 1);
                return Some(out);
            }
            self.advance_left();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Entry;
    use sjos_xml::{NodeId, Region};

    struct FixedInput {
        schema: Schema,
        rows: std::vec::IntoIter<Tuple>,
    }

    impl FixedInput {
        fn new(col: PnId, regions: Vec<Region>) -> Self {
            let rows: Vec<Tuple> = regions
                .into_iter()
                .enumerate()
                .map(|(i, r)| vec![Entry { node: NodeId(i as u32), region: r }])
                .collect();
            FixedInput { schema: Schema::singleton(col), rows: rows.into_iter() }
        }
    }

    impl Operator for FixedInput {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Tuple> {
            self.rows.next()
        }
    }

    fn r(start: u32, end: u32, level: u16) -> Region {
        Region { start, end, level }
    }

    fn run(ancs: Vec<Region>, descs: Vec<Region>, axis: Axis) -> Vec<(u32, u32)> {
        let m = ExecMetrics::new();
        let mut op = MergeJoinOp::new(
            Box::new(FixedInput::new(PnId(0), ancs)),
            Box::new(FixedInput::new(PnId(1), descs)),
            PnId(0),
            PnId(1),
            axis,
            m,
        );
        let mut out = vec![];
        while let Some(t) = op.next() {
            out.push((t[0].region.start, t[1].region.start));
        }
        out
    }

    #[test]
    fn finds_all_pairs_in_ancestor_order() {
        let ancs = vec![r(0, 11, 0), r(1, 6, 1), r(12, 15, 0)];
        let descs = vec![r(2, 3, 2), r(4, 5, 2), r(7, 8, 1), r(13, 14, 1)];
        let got = run(ancs, descs, Axis::Descendant);
        assert_eq!(got, vec![(0, 2), (0, 4), (0, 7), (1, 2), (1, 4), (12, 13)]);
    }

    #[test]
    fn parent_child_level_filter() {
        let ancs = vec![r(0, 11, 0), r(1, 6, 1)];
        let descs = vec![r(2, 3, 2), r(7, 8, 1)];
        let got = run(ancs, descs, Axis::Child);
        assert_eq!(got, vec![(0, 7), (1, 2)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(run(vec![], vec![r(1, 2, 1)], Axis::Descendant).is_empty());
        assert!(run(vec![r(0, 3, 0)], vec![], Axis::Descendant).is_empty());
    }

    #[test]
    fn self_join_excludes_identity() {
        let list = vec![r(0, 7, 0), r(1, 6, 1), r(2, 3, 2)];
        let got = run(list.clone(), list, Axis::Descendant);
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn rescans_are_counted() {
        // Two nested ancestors re-scan the same descendants.
        let ancs = vec![r(0, 9, 0), r(1, 8, 1)];
        let descs = vec![r(2, 3, 2), r(4, 5, 2)];
        let m = ExecMetrics::new();
        let mut op = MergeJoinOp::new(
            Box::new(FixedInput::new(PnId(0), ancs)),
            Box::new(FixedInput::new(PnId(1), descs)),
            PnId(0),
            PnId(1),
            Axis::Descendant,
            Arc::clone(&m),
        );
        while op.next().is_some() {}
        assert_eq!(m.snapshot().merge_rescans, 4, "each ancestor scans both");
    }
}
