//! MPMGJN — the multi-predicate merge join of Zhang et al., *On
//! Supporting Containment Queries in Relational Database Management
//! Systems* (SIGMOD 2001): the pre-stack-tree structural join.
//!
//! Both inputs arrive in document order of their join columns. For
//! each ancestor tuple, the descendant input is scanned from a
//! *mark* that only moves forward with the ancestor's start; nested
//! ancestors re-scan the same descendant window — the quadratic-ish
//! behavior that motivated the stack-tree algorithms, reproduced
//! faithfully here (and priced by the cost model's rescan term).
//! Output is ordered by the ancestor column.
//!
//! The descendant buffer is kept columnar (one `Vec<Entry>` per right
//! column) so rescans walk a dense region array, and the rescan/output
//! counters are flushed to the shared metrics once per batch. Buffer
//! growth is reported to the attached [`QueryGuard`] (if any) at the
//! same per-batch granularity.

use std::sync::Arc;

use sjos_pattern::{Axis, PnId};

use crate::error::EngineError;
use crate::guard::QueryGuard;
use crate::metrics::ExecMetrics;
use crate::ops::{BoxedOperator, InputCursor, Operator};
use crate::tuple::{Entry, Schema, Tuple, TupleBatch, BATCH_ROWS};

/// Merge-based structural join; output ordered by the ancestor.
pub struct MergeJoinOp<'a> {
    left: InputCursor<'a>,
    right: InputCursor<'a>,
    left_col: usize,
    right_col: usize,
    left_width: usize,
    axis: Axis,
    schema: Arc<Schema>,
    metrics: Arc<ExecMetrics>,
    guard: Option<Arc<QueryGuard>>,

    /// Buffered descendant tuples, column-major (grows lazily).
    right_buf: Vec<Vec<Entry>>,
    right_done: bool,
    /// First buffered row that can still join a future ancestor.
    mark: usize,
    /// Scan position within the current ancestor's window.
    scan: usize,
    cur_left: Option<Tuple>,
    started: bool,
    batch_rows: usize,

    /// Local rescan counter, flushed once per batch.
    c_rescans: u64,
    /// Buffered rows already reported to the guard.
    reserved_rows: usize,
    /// Live buffer bytes accounted to [`ExecMetrics`] (released on
    /// drop — the descendant buffer never shrinks while running).
    metrics_reserved_bytes: u64,
}

impl<'a> MergeJoinOp<'a> {
    /// Join `left` (binding/ordered by `anc`) with `right`
    /// (binding/ordered by `desc`).
    ///
    /// # Errors
    /// [`EngineError::InvalidPlan`] if an input does not bind its
    /// join node — an optimizer bug, reported instead of panicking.
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        anc: PnId,
        desc: PnId,
        axis: Axis,
        metrics: Arc<ExecMetrics>,
    ) -> Result<Self, EngineError> {
        let left_col = left.schema().position(anc).ok_or_else(|| {
            EngineError::InvalidPlan(format!("left merge-join input does not bind {anc:?}"))
        })?;
        let right_col = right.schema().position(desc).ok_or_else(|| {
            EngineError::InvalidPlan(format!("right merge-join input does not bind {desc:?}"))
        })?;
        let schema = Arc::new(left.schema().concat(right.schema()));
        let left_width = left.schema().width();
        let right_width = right.schema().width();
        Ok(MergeJoinOp {
            left: InputCursor::new(left, left_col),
            right: InputCursor::new(right, right_col),
            left_col,
            right_col,
            left_width,
            axis,
            schema,
            metrics,
            guard: None,
            right_buf: (0..right_width).map(|_| Vec::new()).collect(),
            right_done: false,
            mark: 0,
            scan: 0,
            cur_left: None,
            started: false,
            batch_rows: BATCH_ROWS,
            c_rescans: 0,
            reserved_rows: 0,
            metrics_reserved_bytes: 0,
        })
    }

    /// Override the batch granularity (default [`BATCH_ROWS`]).
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Report descendant-buffer growth to `guard`'s memory budget.
    #[must_use]
    pub fn with_guard(mut self, guard: Arc<QueryGuard>) -> Self {
        self.guard = Some(guard);
        self
    }

    fn right_len(&self) -> usize {
        self.right_buf.first().map_or(0, Vec::len)
    }

    fn fill_right_until(&mut self, pos: u32) -> Result<(), EngineError> {
        while !self.right_done {
            let need_more =
                self.right_buf[self.right_col].last().is_none_or(|e| e.region.start < pos);
            if !need_more {
                break;
            }
            match self.right.peek()? {
                Some((batch, row)) => {
                    for (c, col) in self.right_buf.iter_mut().enumerate() {
                        col.push(batch.entry(c, row));
                    }
                    self.right.advance();
                }
                None => self.right_done = true,
            }
        }
        Ok(())
    }

    fn advance_left(&mut self) -> Result<(), EngineError> {
        self.cur_left = self.left.peek_row()?;
        if self.cur_left.is_some() {
            self.left.advance();
        } else {
            // No future ancestor exists; run the abandoned right side
            // out so total work is batch-size-independent.
            self.right.exhaust()?;
        }
        if let Some(a) = &self.cur_left {
            let a_region = a[self.left_col].region;
            // Move the mark past descendants that precede this (and
            // therefore every later) ancestor.
            self.fill_right_until(a_region.start)?;
            while self.mark < self.right_len()
                && self.right_buf[self.right_col][self.mark].region.start < a_region.start
            {
                self.mark += 1;
            }
            // Rescan from the mark: nested ancestors revisit tuples.
            self.scan = self.mark;
            // Make sure the whole window is buffered.
            self.fill_right_until(a_region.end)?;
        }
        Ok(())
    }

    fn flush_rescans(&mut self) {
        if self.c_rescans > 0 {
            ExecMetrics::add(&self.metrics.merge_rescans, self.c_rescans);
            self.c_rescans = 0;
        }
    }

    /// Account newly buffered descendant rows against the guard's
    /// memory budget and the live-bytes metric (once per output
    /// batch).
    fn reserve_buffer(&mut self) -> Result<(), EngineError> {
        let rows = self.right_len();
        if rows > self.reserved_rows {
            let bytes =
                (rows - self.reserved_rows) * self.right_buf.len() * std::mem::size_of::<Entry>();
            self.metrics.reserve_bytes(bytes as u64);
            self.metrics_reserved_bytes += bytes as u64;
            if let Some(guard) = &self.guard {
                guard.reserve(bytes)?;
            }
            self.reserved_rows = rows;
        }
        Ok(())
    }
}

impl Drop for MergeJoinOp<'_> {
    fn drop(&mut self) {
        self.metrics.release_bytes(self.metrics_reserved_bytes);
    }
}

impl Operator for MergeJoinOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn ordered_col(&self) -> usize {
        self.left_col
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        if !self.started {
            self.started = true;
            if let Err(e) = self.advance_left() {
                self.flush_rescans();
                return Err(e);
            }
        }
        let mut out = TupleBatch::with_capacity(self.schema.clone(), self.batch_rows);
        while out.len() < self.batch_rows {
            let Some(a_region) = self.cur_left.as_ref().map(|a| a[self.left_col].region) else {
                break;
            };
            let in_window = self.scan < self.right_len()
                && self.right_buf[self.right_col][self.scan].region.start < a_region.end;
            if !in_window {
                if let Err(e) = self.advance_left() {
                    self.flush_rescans();
                    return Err(e);
                }
                continue;
            }
            let row = self.scan;
            let d_region = self.right_buf[self.right_col][row].region;
            self.scan += 1;
            self.c_rescans += 1;
            // Window membership implies containment (regions nest);
            // only the level test remains for `/`.
            debug_assert!(d_region.start <= a_region.start || a_region.contains(d_region));
            if d_region.start <= a_region.start {
                continue; // same element (self-join edge case)
            }
            if self.axis == Axis::Child && a_region.level + 1 != d_region.level {
                continue;
            }
            // Invariant: `a_region` was read from `cur_left` above and
            // nothing in this iteration cleared it.
            let a = self.cur_left.as_ref().expect("left row present");
            for (col, &e) in a.iter().enumerate() {
                out.column_mut(col).push(e);
            }
            for (j, src) in self.right_buf.iter().enumerate() {
                out.column_mut(self.left_width + j).push(src[row]);
            }
        }
        self.flush_rescans();
        self.reserve_buffer()?;
        if out.is_empty() {
            return Ok(None);
        }
        ExecMetrics::add(&self.metrics.produced_tuples, out.len() as u64);
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GuardBreach;
    use crate::ops::VecInput;
    use sjos_xml::{NodeId, Region};

    fn fixed(col: PnId, regions: Vec<Region>) -> VecInput {
        let entries = regions
            .into_iter()
            .enumerate()
            .map(|(i, r)| Entry { node: NodeId(i as u32), region: r })
            .collect();
        VecInput::single(col, entries)
    }

    fn r(start: u32, end: u32, level: u16) -> Region {
        Region { start, end, level }
    }

    fn drain(op: &mut MergeJoinOp<'_>) -> Vec<(u32, u32)> {
        let mut out = vec![];
        while let Some(b) = op.next_batch().unwrap() {
            assert!(!b.is_empty(), "batches are never empty");
            assert!(b.is_sorted_by(op.ordered_col()));
            for row in 0..b.len() {
                out.push((b.entry(0, row).region.start, b.entry(1, row).region.start));
            }
        }
        out
    }

    fn run(ancs: Vec<Region>, descs: Vec<Region>, axis: Axis) -> Vec<(u32, u32)> {
        let m = ExecMetrics::new();
        let mut op = MergeJoinOp::new(
            Box::new(fixed(PnId(0), ancs)),
            Box::new(fixed(PnId(1), descs)),
            PnId(0),
            PnId(1),
            axis,
            m,
        )
        .unwrap();
        drain(&mut op)
    }

    #[test]
    fn finds_all_pairs_in_ancestor_order() {
        let ancs = vec![r(0, 11, 0), r(1, 6, 1), r(12, 15, 0)];
        let descs = vec![r(2, 3, 2), r(4, 5, 2), r(7, 8, 1), r(13, 14, 1)];
        let got = run(ancs, descs, Axis::Descendant);
        assert_eq!(got, vec![(0, 2), (0, 4), (0, 7), (1, 2), (1, 4), (12, 13)]);
    }

    #[test]
    fn parent_child_level_filter() {
        let ancs = vec![r(0, 11, 0), r(1, 6, 1)];
        let descs = vec![r(2, 3, 2), r(7, 8, 1)];
        let got = run(ancs, descs, Axis::Child);
        assert_eq!(got, vec![(0, 7), (1, 2)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(run(vec![], vec![r(1, 2, 1)], Axis::Descendant).is_empty());
        assert!(run(vec![r(0, 3, 0)], vec![], Axis::Descendant).is_empty());
    }

    #[test]
    fn self_join_excludes_identity() {
        let list = vec![r(0, 7, 0), r(1, 6, 1), r(2, 3, 2)];
        let got = run(list.clone(), list, Axis::Descendant);
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn batch_size_never_changes_output_or_rescans() {
        let ancs = vec![r(0, 11, 0), r(1, 6, 1), r(12, 15, 0)];
        let descs = vec![r(2, 3, 2), r(4, 5, 2), r(7, 8, 1), r(13, 14, 1)];
        let base = run(ancs.clone(), descs.clone(), Axis::Descendant);
        for rows in [1usize, 2, 3] {
            let m = ExecMetrics::new();
            let mut op = MergeJoinOp::new(
                Box::new(fixed(PnId(0), ancs.clone()).with_batch_rows(rows)),
                Box::new(fixed(PnId(1), descs.clone()).with_batch_rows(rows)),
                PnId(0),
                PnId(1),
                Axis::Descendant,
                Arc::clone(&m),
            )
            .unwrap()
            .with_batch_rows(rows);
            assert_eq!(drain(&mut op), base, "output differs at batch_rows={rows}");
        }
    }

    #[test]
    fn rescans_are_counted() {
        // Two nested ancestors re-scan the same descendants.
        let ancs = vec![r(0, 9, 0), r(1, 8, 1)];
        let descs = vec![r(2, 3, 2), r(4, 5, 2)];
        let m = ExecMetrics::new();
        let mut op = MergeJoinOp::new(
            Box::new(fixed(PnId(0), ancs)),
            Box::new(fixed(PnId(1), descs)),
            PnId(0),
            PnId(1),
            Axis::Descendant,
            Arc::clone(&m),
        )
        .unwrap();
        while op.next_batch().unwrap().is_some() {}
        assert_eq!(m.snapshot().merge_rescans, 4, "each ancestor scans both");
    }

    #[test]
    fn unbound_join_column_is_a_typed_error() {
        let m = ExecMetrics::new();
        let err = MergeJoinOp::new(
            Box::new(fixed(PnId(0), vec![r(0, 3, 0)])),
            Box::new(fixed(PnId(1), vec![r(1, 2, 1)])),
            PnId(7),
            PnId(1),
            Axis::Descendant,
            m,
        )
        .err()
        .expect("unbound ancestor column");
        assert!(matches!(err, EngineError::InvalidPlan(_)));
    }

    #[test]
    fn memory_budget_bounds_descendant_buffer() {
        // One wide ancestor forces the whole descendant list into the
        // buffer; a 32-byte budget stops that almost immediately.
        let ancs = vec![r(0, 100, 0)];
        let descs: Vec<Region> = (0..20).map(|i| r(2 * i + 1, 2 * i + 2, 1)).collect();
        let m = ExecMetrics::new();
        let guard = Arc::new(QueryGuard::unlimited().with_memory_budget(32));
        let mut op = MergeJoinOp::new(
            Box::new(fixed(PnId(0), ancs)),
            Box::new(fixed(PnId(1), descs)),
            PnId(0),
            PnId(1),
            Axis::Descendant,
            m,
        )
        .unwrap()
        .with_guard(guard);
        let mut saw_breach = false;
        loop {
            match op.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(EngineError::Guard { breach: GuardBreach::MemoryBudget { .. }, .. }) => {
                    saw_breach = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_breach, "buffer growth must trip the memory budget");
    }
}
