//! Physical plan trees.

use std::fmt;

use sjos_pattern::{Axis, Pattern, PnId};

/// Which stack-tree variant a join uses; fixes the output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Stack-Tree-Anc: output ordered by the ancestor-side join node.
    StackTreeAnc,
    /// Stack-Tree-Desc: output ordered by the descendant-side join
    /// node; fully streaming.
    StackTreeDesc,
    /// MPMGJN (Zhang et al., SIGMOD 2001): merge join with descendant
    /// rescans; output ordered by the ancestor-side join node.
    MergeJoin,
}

impl JoinAlgo {
    /// True when the variant emits output ordered by the ancestor-side
    /// join node (Stack-Tree-Anc, MPMGJN); false for the
    /// descendant-ordered Stack-Tree-Desc.
    pub fn orders_by_ancestor(self) -> bool {
        matches!(self, JoinAlgo::StackTreeAnc | JoinAlgo::MergeJoin)
    }
}

/// The physical-property contract one operator declares at its
/// boundaries: the pattern node its output stream is ordered by, the
/// ordering each input stream must arrive in, and whether the operator
/// blocks (must consume its whole input before emitting anything).
///
/// Contracts are *declarations* — what the operator promises assuming
/// its inputs honor theirs. The `planck` dataflow pass propagates
/// proven orderings bottom-up and compares them against these
/// declarations; a mismatch means the declaration is unfounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorContract {
    /// Pattern node the operator's output is ordered by.
    pub output_order: PnId,
    /// Required input orderings, one per input in left-to-right order
    /// (empty for leaves; a sort accepts any input order).
    pub input_orders: Vec<PnId>,
    /// True when the operator is blocking (breaks the pipeline).
    pub blocking: bool,
}

/// A physical evaluation plan (the paper's rooted labelled tree of
/// access methods, §2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// Scan one pattern node's binding list from the tag index; output
    /// is in document order (= ordered by that node).
    IndexScan {
        /// Pattern node bound by this scan.
        pnode: PnId,
    },
    /// Structural join of two sub-plans along one pattern edge.
    StructuralJoin {
        /// Input binding the ancestor-side join node; must be ordered
        /// by `anc`.
        left: Box<PlanNode>,
        /// Input binding the descendant-side join node; must be
        /// ordered by `desc`.
        right: Box<PlanNode>,
        /// Ancestor-side pattern node of the edge being evaluated.
        anc: PnId,
        /// Descendant-side pattern node of the edge.
        desc: PnId,
        /// `/` or `//`.
        axis: Axis,
        /// Algorithm choice (fixes output order).
        algo: JoinAlgo,
    },
    /// Blocking sort of a sub-plan's output by one of its columns.
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
        /// Column (pattern node) to order by.
        by: PnId,
    },
}

impl PlanNode {
    /// Pattern nodes bound by this plan's output.
    pub fn bound_nodes(&self) -> Vec<PnId> {
        match self {
            PlanNode::IndexScan { pnode } => vec![*pnode],
            PlanNode::StructuralJoin { left, right, .. } => {
                let mut v = left.bound_nodes();
                v.extend(right.bound_nodes());
                v
            }
            PlanNode::Sort { input, .. } => input.bound_nodes(),
        }
    }

    /// The pattern node the output is ordered by.
    pub fn ordered_by(&self) -> PnId {
        match self {
            PlanNode::IndexScan { pnode } => *pnode,
            PlanNode::StructuralJoin { anc, desc, algo, .. } => {
                if algo.orders_by_ancestor() {
                    *anc
                } else {
                    *desc
                }
            }
            PlanNode::Sort { by, .. } => *by,
        }
    }

    /// The order/blocking contract this operator declares, independent
    /// of whether its subtree can actually honor it. `output_order`
    /// always equals [`PlanNode::ordered_by`]; `input_orders` states
    /// what the stack-tree algorithms require of each input (§2.2's
    /// ordering constraint); `blocking` is true exactly for sorts.
    pub fn contract(&self) -> OperatorContract {
        match self {
            PlanNode::IndexScan { pnode } => {
                OperatorContract { output_order: *pnode, input_orders: Vec::new(), blocking: false }
            }
            PlanNode::StructuralJoin { anc, desc, .. } => OperatorContract {
                output_order: self.ordered_by(),
                input_orders: vec![*anc, *desc],
                blocking: false,
            },
            // A sort consumes its input in any order, so it imposes no
            // input requirement — at the price of blocking.
            PlanNode::Sort { by, .. } => {
                OperatorContract { output_order: *by, input_orders: Vec::new(), blocking: true }
            }
        }
    }

    /// True when this node (not its subtree) is a blocking operator.
    pub fn is_blocking_op(&self) -> bool {
        matches!(self, PlanNode::Sort { .. })
    }

    /// Number of explicit sort operators in the plan. Zero ⇔ the plan
    /// is fully pipelined (non-blocking), the property the FP
    /// algorithm guarantees.
    pub fn sort_count(&self) -> usize {
        match self {
            PlanNode::IndexScan { .. } => 0,
            PlanNode::StructuralJoin { left, right, .. } => left.sort_count() + right.sort_count(),
            PlanNode::Sort { input, .. } => 1 + input.sort_count(),
        }
    }

    /// True when the plan contains no blocking operator.
    pub fn is_fully_pipelined(&self) -> bool {
        self.sort_count() == 0
    }

    /// True when every join's right input is a leaf (index scan or
    /// sorted index scan) — the relational notion of a left-deep plan.
    pub fn is_left_deep(&self) -> bool {
        fn is_leaf(p: &PlanNode) -> bool {
            match p {
                PlanNode::IndexScan { .. } => true,
                PlanNode::Sort { input, .. } => is_leaf(input),
                PlanNode::StructuralJoin { .. } => false,
            }
        }
        match self {
            PlanNode::IndexScan { .. } => true,
            PlanNode::Sort { input, .. } => input.is_left_deep(),
            PlanNode::StructuralJoin { left, right, .. } => {
                // Either side may act as the pipeline "spine"; the
                // other must be a base input.
                (left.is_left_deep() && is_leaf(right)) || (right.is_left_deep() && is_leaf(left))
            }
        }
    }

    /// Number of structural joins.
    pub fn join_count(&self) -> usize {
        match self {
            PlanNode::IndexScan { .. } => 0,
            PlanNode::StructuralJoin { left, right, .. } => {
                1 + left.join_count() + right.join_count()
            }
            PlanNode::Sort { input, .. } => input.join_count(),
        }
    }

    /// Validate the plan against `pattern`: every pattern node bound
    /// exactly once, every join evaluates a real pattern edge with the
    /// correct orientation, and every join input is ordered by its
    /// join node. Returns a description of the first violation.
    pub fn validate(&self, pattern: &Pattern) -> Result<(), String> {
        let mut bound = self.bound_nodes();
        bound.sort_unstable();
        let expected: Vec<PnId> = pattern.node_ids().collect();
        if bound != expected {
            return Err(format!("plan binds {bound:?}, pattern has {expected:?}"));
        }
        if let Some(w) = pattern.order_by() {
            if self.ordered_by() != w {
                return Err(format!(
                    "pattern requires results ordered by {w:?}, plan delivers {:?}",
                    self.ordered_by()
                ));
            }
        }
        self.validate_inner(pattern)
    }

    fn validate_inner(&self, pattern: &Pattern) -> Result<(), String> {
        match self {
            PlanNode::IndexScan { pnode } => {
                if pnode.index() >= pattern.len() {
                    return Err(format!("scan of unknown pattern node {pnode:?}"));
                }
                Ok(())
            }
            PlanNode::Sort { input, by } => {
                if !input.bound_nodes().contains(by) {
                    return Err(format!("sort by unbound column {by:?}"));
                }
                input.validate_inner(pattern)
            }
            PlanNode::StructuralJoin { left, right, anc, desc, axis, .. } => {
                left.validate_inner(pattern)?;
                right.validate_inner(pattern)?;
                let edge = pattern
                    .edge_between(*anc, *desc)
                    .ok_or_else(|| format!("no pattern edge between {anc:?} and {desc:?}"))?;
                if edge.parent != *anc || edge.child != *desc {
                    return Err(format!("join orientation reversed for edge {anc:?}-{desc:?}"));
                }
                if edge.axis != *axis {
                    return Err(format!("axis mismatch on edge {anc:?}-{desc:?}"));
                }
                if !left.bound_nodes().contains(anc) {
                    return Err(format!("left input does not bind {anc:?}"));
                }
                if !right.bound_nodes().contains(desc) {
                    return Err(format!("right input does not bind {desc:?}"));
                }
                if left.ordered_by() != *anc {
                    return Err(format!(
                        "left input ordered by {:?}, join needs {anc:?}",
                        left.ordered_by()
                    ));
                }
                if right.ordered_by() != *desc {
                    return Err(format!(
                        "right input ordered by {:?}, join needs {desc:?}",
                        right.ordered_by()
                    ));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for PlanNode {
    /// One-line plan rendering, e.g.
    /// `STJ-D(0//1)[Scan(0), Sort#2(STJ-A(1/2)[Scan(1), Scan(2)])]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanNode::IndexScan { pnode } => write!(f, "Scan({})", pnode.0),
            PlanNode::Sort { input, by } => write!(f, "Sort#{}({input})", by.0),
            PlanNode::StructuralJoin { left, right, anc, desc, axis, algo } => {
                let a = match algo {
                    JoinAlgo::StackTreeAnc => "STJ-A",
                    JoinAlgo::StackTreeDesc => "STJ-D",
                    JoinAlgo::MergeJoin => "MPMGJN",
                };
                let ax = match axis {
                    Axis::Child => "/",
                    Axis::Descendant => "//",
                };
                write!(f, "{a}({}{ax}{})[{left}, {right}]", anc.0, desc.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_pattern::parse_pattern;

    fn scan(i: u16) -> PlanNode {
        PlanNode::IndexScan { pnode: PnId(i) }
    }

    fn join(
        left: PlanNode,
        right: PlanNode,
        anc: u16,
        desc: u16,
        axis: Axis,
        algo: JoinAlgo,
    ) -> PlanNode {
        PlanNode::StructuralJoin {
            left: Box::new(left),
            right: Box::new(right),
            anc: PnId(anc),
            desc: PnId(desc),
            axis,
            algo,
        }
    }

    #[test]
    fn properties_of_a_pipelined_plan() {
        // //a/b//c : ((a ⋈ b) ⋈ c) keeping descendant order.
        let p = join(
            join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeDesc),
            scan(2),
            1,
            2,
            Axis::Descendant,
            JoinAlgo::StackTreeDesc,
        );
        assert!(p.is_fully_pipelined());
        assert!(p.is_left_deep());
        assert_eq!(p.join_count(), 2);
        assert_eq!(p.ordered_by(), PnId(2));
        let pat = parse_pattern("//a/b//c").unwrap();
        p.validate(&pat).unwrap();
    }

    #[test]
    fn sort_makes_plan_blocking() {
        let inner = join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeAnc);
        let sorted = PlanNode::Sort { input: Box::new(inner), by: PnId(1) };
        assert_eq!(sorted.sort_count(), 1);
        assert!(!sorted.is_fully_pipelined());
        assert_eq!(sorted.ordered_by(), PnId(1));
    }

    #[test]
    fn validate_catches_missing_node() {
        let pat = parse_pattern("//a/b//c").unwrap();
        let p = join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeDesc);
        assert!(p.validate(&pat).unwrap_err().contains("binds"));
    }

    #[test]
    fn validate_catches_wrong_order() {
        let pat = parse_pattern("//a/b//c").unwrap();
        // Left input ordered by b (desc output), but joining edge b//c
        // needs order by... actually join (1,2) with left ordered by 0.
        let left = join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeAnc);
        let p = join(left, scan(2), 1, 2, Axis::Descendant, JoinAlgo::StackTreeDesc);
        let err = p.validate(&pat).unwrap_err();
        assert!(err.contains("ordered by"), "{err}");
    }

    #[test]
    fn validate_catches_reversed_orientation() {
        let pat = parse_pattern("//a/b").unwrap();
        let p = join(scan(1), scan(0), 1, 0, Axis::Child, JoinAlgo::StackTreeDesc);
        let err = p.validate(&pat).unwrap_err();
        assert!(err.contains("reversed") || err.contains("no pattern edge"), "{err}");
    }

    #[test]
    fn validate_catches_axis_mismatch() {
        let pat = parse_pattern("//a/b").unwrap();
        let p = join(scan(0), scan(1), 0, 1, Axis::Descendant, JoinAlgo::StackTreeDesc);
        assert!(p.validate(&pat).unwrap_err().contains("axis"));
    }

    #[test]
    fn bushy_plan_is_not_left_deep() {
        let pat = parse_pattern("//a[./b/c]/d").unwrap();
        // (a ⋈ d) ⋈ (b ⋈ c): bushy.
        let left = join(scan(0), scan(3), 0, 3, Axis::Child, JoinAlgo::StackTreeAnc);
        let right = join(scan(1), scan(2), 1, 2, Axis::Child, JoinAlgo::StackTreeAnc);
        let p = join(left, right, 0, 1, Axis::Child, JoinAlgo::StackTreeDesc);
        p.validate(&pat).unwrap();
        assert!(!p.is_left_deep());
        assert!(p.is_fully_pipelined());
    }

    #[test]
    fn contracts_declare_order_and_blocking() {
        let j = join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeAnc);
        let c = j.contract();
        assert_eq!(c.output_order, PnId(0));
        assert_eq!(c.input_orders, vec![PnId(0), PnId(1)]);
        assert!(!c.blocking);
        assert!(!j.is_blocking_op());

        let d = join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeDesc).contract();
        assert_eq!(d.output_order, PnId(1));

        let s = PlanNode::Sort { input: Box::new(j), by: PnId(1) };
        let sc = s.contract();
        assert_eq!(sc.output_order, PnId(1));
        assert!(sc.input_orders.is_empty(), "a sort accepts any input order");
        assert!(sc.blocking);
        assert!(s.is_blocking_op());

        let leaf = scan(2).contract();
        assert_eq!(leaf.output_order, PnId(2));
        assert!(leaf.input_orders.is_empty());
        assert!(!leaf.blocking);
    }

    #[test]
    fn contract_output_order_matches_ordered_by() {
        for algo in [JoinAlgo::StackTreeAnc, JoinAlgo::StackTreeDesc, JoinAlgo::MergeJoin] {
            let j = join(scan(0), scan(1), 0, 1, Axis::Child, algo);
            assert_eq!(j.contract().output_order, j.ordered_by());
            assert_eq!(algo.orders_by_ancestor(), j.ordered_by() == PnId(0));
        }
    }

    #[test]
    fn display_is_compact() {
        let p = join(scan(0), scan(1), 0, 1, Axis::Child, JoinAlgo::StackTreeDesc);
        assert_eq!(p.to_string(), "STJ-D(0/1)[Scan(0), Scan(1)]");
    }
}
