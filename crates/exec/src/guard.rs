//! Resource governance for plan execution.
//!
//! A [`QueryGuard`] bounds one execution by wall-clock deadline,
//! batch-pull budget, and memory-reservation budget, and carries a
//! cooperative [`CancelToken`]. The executor wraps every physical
//! operator in a [`GuardedOp`], so the guard is consulted at *every*
//! [`TupleBatch`] boundary in the tree — a runaway plan stops within
//! one batch of the breach even when the root is blocked inside a
//! materializing operator (the blocking sort's input pulls are
//! guarded too). Buffering operators additionally call
//! [`QueryGuard::reserve`] as their buffers grow, so an
//! intermediate-result explosion trips the memory budget long before
//! the process feels it.
//!
//! All checks are lock-free reads/adds; an unlimited guard costs a
//! few relaxed atomic operations per batch.
//!
//! Every field is atomic, so one `Arc<QueryGuard>` is safely shared by
//! all workers of a parallel execution (see [`crate::parallel`]): the
//! batch and memory counters then accumulate the *aggregate* across
//! workers — the budgets bound the whole query's footprint, not one
//! worker's — and cancellation/deadline breaches are observed at the
//! next batch boundary of every worker independently, so cancellation
//! latency stays within one batch regardless of parallelism. Note the
//! aggregate batch count of a morsel-partitioned run can exceed the
//! serial run's (each morsel rounds up its final partial batches), so
//! parallel admission scales the batch bound by the worker count (see
//! `sjos-planck`'s `admit_parallel`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{EngineError, GuardBreach};
use crate::ops::{BoxedOperator, Operator};
use crate::tuple::{Schema, TupleBatch};

/// Shared cancellation flag. Clone it, hand it to another thread, and
/// call [`CancelToken::cancel`]; the running query observes the flag
/// at its next batch boundary and stops with
/// [`GuardBreach::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Limits governing one execution, checked at batch boundaries.
///
/// Build with [`QueryGuard::unlimited`] and narrow with the `with_*`
/// methods, then share behind an `Arc`:
///
/// ```
/// use std::time::Duration;
/// use sjos_exec::QueryGuard;
/// let guard = std::sync::Arc::new(
///     QueryGuard::unlimited()
///         .with_deadline(Duration::from_secs(5))
///         .with_batch_budget(10_000),
/// );
/// # let _ = guard;
/// ```
#[derive(Debug)]
pub struct QueryGuard {
    /// Absolute deadline plus the limit it was derived from (the
    /// limit is reported in the breach).
    deadline: Option<(Instant, Duration)>,
    batch_budget: Option<u64>,
    memory_budget: Option<usize>,
    cancel: CancelToken,
    /// Batches pulled across all guarded operator boundaries.
    batches: AtomicU64,
    /// Bytes of operator buffering currently charged against the
    /// memory budget. In-memory operators only reserve, so for them
    /// this is the conservative cumulative total; spilling sorts call
    /// [`QueryGuard::release`] when a run leaves memory for temp
    /// pages, so under spill the counter tracks the *resident*
    /// footprint — the quantity a memory budget is actually meant to
    /// bound.
    reserved: AtomicUsize,
}

impl Default for QueryGuard {
    fn default() -> QueryGuard {
        QueryGuard::unlimited()
    }
}

impl QueryGuard {
    /// A guard with no limits: every check passes, only the counters
    /// accumulate. This is what the plain `execute` entry points use.
    pub fn unlimited() -> QueryGuard {
        QueryGuard {
            deadline: None,
            batch_budget: None,
            memory_budget: None,
            cancel: CancelToken::new(),
            batches: AtomicU64::new(0),
            reserved: AtomicUsize::new(0),
        }
    }

    /// Stop the query once `limit` wall-clock time has elapsed
    /// (measured from this call).
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> QueryGuard {
        // A limit so large the Instant overflows is no limit at all.
        self.deadline = Instant::now().checked_add(limit).map(|at| (at, limit));
        self
    }

    /// Stop the query after `limit` batch pulls across all operator
    /// boundaries (engine-wide, not per operator).
    #[must_use]
    pub fn with_batch_budget(mut self, limit: u64) -> QueryGuard {
        self.batch_budget = Some(limit.max(1));
        self
    }

    /// Stop the query once buffering operators have reserved more
    /// than `limit_bytes` in total.
    #[must_use]
    pub fn with_memory_budget(mut self, limit_bytes: usize) -> QueryGuard {
        self.memory_budget = Some(limit_bytes);
        self
    }

    /// Use `token` for cancellation instead of a fresh one.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> QueryGuard {
        self.cancel = token;
        self
    }

    /// The guard's cancellation token (clone it to another thread).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The memory budget in bytes, if one is set — exposed so a
    /// static admission check (planck's resource-bound pass) can
    /// compare a plan's worst-case footprint against the budget
    /// *before* execution.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// The batch-pull budget, if one is set (see
    /// [`Self::memory_budget`] for the static-admission use case).
    pub fn batch_budget(&self) -> Option<u64> {
        self.batch_budget
    }

    /// Batches pulled so far across guarded boundaries.
    pub fn batches_pulled(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Total bytes reserved so far by buffering operators.
    pub fn bytes_reserved(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// One batch-boundary check: cancellation, deadline, batch
    /// budget. Called by [`GuardedOp`] before every pull.
    pub fn check_batch(&self) -> Result<(), GuardBreach> {
        if self.cancel.is_cancelled() {
            return Err(GuardBreach::Cancelled);
        }
        if let Some((at, limit)) = self.deadline {
            if Instant::now() >= at {
                return Err(GuardBreach::Deadline { limit });
            }
        }
        let pulled = self.batches.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.batch_budget {
            if pulled > limit {
                return Err(GuardBreach::BatchBudget { limit });
            }
        }
        Ok(())
    }

    /// A checkpoint that consults only cancellation and the deadline,
    /// without consuming batch budget — for long pre-execution passes
    /// (the parallel partitioner's cut-selection scan) that must stay
    /// responsive to cancellation but pull no operator batches.
    pub fn check_point(&self) -> Result<(), GuardBreach> {
        if self.cancel.is_cancelled() {
            return Err(GuardBreach::Cancelled);
        }
        if let Some((at, limit)) = self.deadline {
            if Instant::now() >= at {
                return Err(GuardBreach::Deadline { limit });
            }
        }
        Ok(())
    }

    /// Account `bytes` of operator buffering against the memory
    /// budget. In-memory operators never release, so their
    /// reservations accumulate (a conservative over-count); spilling
    /// operators pair this with [`QueryGuard::release`] so only the
    /// resident footprint counts.
    pub fn reserve(&self, bytes: usize) -> Result<(), GuardBreach> {
        let total = self.reserved.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(limit) = self.memory_budget {
            if total > limit {
                return Err(GuardBreach::MemoryBudget {
                    limit_bytes: limit,
                    requested_bytes: total,
                });
            }
        }
        Ok(())
    }

    /// Return `bytes` previously [`QueryGuard::reserve`]d — called by
    /// spilling sorts when a sorted run moves from memory to temp
    /// pages, so the budget governs resident bytes instead of
    /// cumulative traffic. Saturates at zero so a release raced
    /// against a snapshot can never wrap.
    pub fn release(&self, bytes: usize) {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.reserved.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes of budget headroom left, `usize::MAX` when unbudgeted —
    /// what a spilling sort consults to flush *before* a reservation
    /// would breach.
    pub fn memory_headroom(&self) -> usize {
        match self.memory_budget {
            Some(limit) => limit.saturating_sub(self.reserved.load(Ordering::Relaxed)),
            None => usize::MAX,
        }
    }
}

/// Wraps an operator so every `next_batch` pull first passes
/// [`QueryGuard::check_batch`]. The executor inserts one around each
/// node of the physical tree.
pub struct GuardedOp<'a> {
    inner: BoxedOperator<'a>,
    guard: Arc<QueryGuard>,
}

impl<'a> GuardedOp<'a> {
    /// Guard `inner` with `guard`.
    pub fn new(inner: BoxedOperator<'a>, guard: Arc<QueryGuard>) -> GuardedOp<'a> {
        GuardedOp { inner, guard }
    }
}

impl Operator for GuardedOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn ordered_col(&self) -> usize {
        self.inner.ordered_col()
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EngineError> {
        self.guard.check_batch()?;
        self.inner.next_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_always_passes() {
        let g = QueryGuard::unlimited();
        for _ in 0..10_000 {
            g.check_batch().unwrap();
        }
        g.reserve(usize::MAX / 2).unwrap();
        assert_eq!(g.batches_pulled(), 10_000);
    }

    #[test]
    fn batch_budget_trips_after_limit() {
        let g = QueryGuard::unlimited().with_batch_budget(3);
        for _ in 0..3 {
            g.check_batch().unwrap();
        }
        assert_eq!(g.check_batch().unwrap_err(), GuardBreach::BatchBudget { limit: 3 });
    }

    #[test]
    fn memory_budget_trips_on_overshoot() {
        let g = QueryGuard::unlimited().with_memory_budget(100);
        g.reserve(60).unwrap();
        let err = g.reserve(60).unwrap_err();
        assert_eq!(err, GuardBreach::MemoryBudget { limit_bytes: 100, requested_bytes: 120 });
    }

    #[test]
    fn release_restores_headroom() {
        let g = QueryGuard::unlimited().with_memory_budget(100);
        g.reserve(80).unwrap();
        assert_eq!(g.memory_headroom(), 20);
        g.release(60);
        assert_eq!(g.memory_headroom(), 80);
        g.reserve(70).unwrap();
        g.release(1_000);
        assert_eq!(g.bytes_reserved(), 0, "release saturates at zero");
        assert_eq!(QueryGuard::unlimited().memory_headroom(), usize::MAX);
    }

    #[test]
    fn check_point_observes_cancel_without_spending_batches() {
        let g = QueryGuard::unlimited().with_batch_budget(1);
        g.check_point().unwrap();
        g.check_point().unwrap();
        assert_eq!(g.batches_pulled(), 0, "checkpoints must not consume batch budget");
        g.cancel_token().cancel();
        assert_eq!(g.check_point().unwrap_err(), GuardBreach::Cancelled);
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let g = QueryGuard::unlimited().with_deadline(Duration::ZERO);
        assert!(matches!(g.check_batch().unwrap_err(), GuardBreach::Deadline { .. }));
    }

    #[test]
    fn cancellation_is_observed_cross_handle() {
        let g = QueryGuard::unlimited();
        let token = g.cancel_token();
        g.check_batch().unwrap();
        token.cancel();
        assert_eq!(g.check_batch().unwrap_err(), GuardBreach::Cancelled);
    }
}
