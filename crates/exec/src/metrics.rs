//! Execution metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters accumulated while a plan runs. Shared (`Arc`) between all
/// operators of one execution.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Tuples produced by the plan root.
    pub output_tuples: AtomicU64,
    /// Tuples produced by all operators (root included) — the paper's
    /// "intermediate result sizes" in aggregate.
    pub produced_tuples: AtomicU64,
    /// Stack push operations across all structural joins.
    pub stack_pushes: AtomicU64,
    /// Stack pop operations across all structural joins.
    pub stack_pops: AtomicU64,
    /// Pairs buffered by Stack-Tree-Anc (self/inherit list appends);
    /// the source of its `2|AB| f_IO` cost term.
    pub buffered_pairs: AtomicU64,
    /// Tuples that passed through explicit sort operators.
    pub sorted_tuples: AtomicU64,
    /// Number of explicit sort operators executed.
    pub sort_operations: AtomicU64,
    /// Records delivered by index scans.
    pub scanned_records: AtomicU64,
    /// Descendant-window tuples visited by merge joins (MPMGJN's
    /// rescan traffic).
    pub merge_rescans: AtomicU64,
    /// Bytes of operator buffering currently live (reservations minus
    /// releases) — unlike [`crate::QueryGuard`]'s cumulative
    /// reservation counter, this tracks the instantaneous footprint.
    pub cur_bytes: AtomicU64,
    /// High-water mark of [`Self::cur_bytes`]: the peak instantaneous
    /// buffering the execution reached. The static resource-bound
    /// analysis (planck's PL064) checks its worst-case bound against
    /// this observation.
    pub peak_bytes: AtomicU64,
    /// Sorted runs flushed to temp pages by spilling sorts.
    pub spilled_runs: AtomicU64,
    /// Payload bytes written to temp pages by spilling sorts
    /// (initial run flushes plus cascade-merge rewrites).
    pub spilled_bytes: AtomicU64,
    /// Cascade merge passes performed when a spill produced more runs
    /// than the merge fan-in.
    pub spill_merge_passes: AtomicU64,
}

/// Point-in-time copy of [`ExecMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Tuples emitted at the plan root.
    pub output_tuples: u64,
    /// Tuples produced by all operators, including intermediates.
    pub produced_tuples: u64,
    /// Stack push operations across the stack-tree joins.
    pub stack_pushes: u64,
    /// Stack pop operations across the stack-tree joins.
    pub stack_pops: u64,
    /// Pairs buffered by Stack-Tree-Anc for in-order emission.
    pub buffered_pairs: u64,
    /// Tuples passed through sort operators.
    pub sorted_tuples: u64,
    /// Number of sort operators executed.
    pub sort_operations: u64,
    /// Records delivered by index scans.
    pub scanned_records: u64,
    /// Descendant-window tuples revisited by merge joins.
    pub merge_rescans: u64,
    /// Peak instantaneous operator-buffer footprint in bytes.
    pub peak_bytes: u64,
    /// Sorted runs flushed to temp pages by spilling sorts.
    pub spilled_runs: u64,
    /// Payload bytes written to temp pages by spilling sorts.
    pub spilled_bytes: u64,
    /// Cascade merge passes over spilled runs.
    pub spill_merge_passes: u64,
}

impl MetricsSnapshot {
    /// Sum per-morsel (per-worker) snapshots into the totals of the
    /// whole parallel execution.
    ///
    /// For the *work* counters — output/produced tuples, stack
    /// traffic, buffered pairs, sorted tuples, scanned records, merge
    /// rescans, spill counters — the sum is bit-identical to the
    /// single-threaded run of the same plan, because region-range
    /// partitioning restricts every operator's input to a range no
    /// scanned interval straddles (the PL068 contract). Two counters
    /// are *not* part of that exact contract and merge conservatively:
    /// `sort_operations` is structural (each morsel runs its own copy
    /// of every sort operator, so the sum is `morsels ×` the serial
    /// count), and `peak_bytes` is interleaving-dependent (the sum of
    /// per-worker peaks over-approximates the true aggregate peak, the
    /// safe direction for budget comparisons).
    pub fn merged(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for p in parts {
            total.output_tuples += p.output_tuples;
            total.produced_tuples += p.produced_tuples;
            total.stack_pushes += p.stack_pushes;
            total.stack_pops += p.stack_pops;
            total.buffered_pairs += p.buffered_pairs;
            total.sorted_tuples += p.sorted_tuples;
            total.sort_operations += p.sort_operations;
            total.scanned_records += p.scanned_records;
            total.merge_rescans += p.merge_rescans;
            total.peak_bytes += p.peak_bytes;
            total.spilled_runs += p.spilled_runs;
            total.spilled_bytes += p.spilled_bytes;
            total.spill_merge_passes += p.spill_merge_passes;
        }
        total
    }
}

impl ExecMetrics {
    /// Fresh shared metrics.
    pub fn new() -> Arc<ExecMetrics> {
        Arc::new(ExecMetrics::default())
    }

    /// Copy current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            output_tuples: self.output_tuples.load(Ordering::Relaxed),
            produced_tuples: self.produced_tuples.load(Ordering::Relaxed),
            stack_pushes: self.stack_pushes.load(Ordering::Relaxed),
            stack_pops: self.stack_pops.load(Ordering::Relaxed),
            buffered_pairs: self.buffered_pairs.load(Ordering::Relaxed),
            sorted_tuples: self.sorted_tuples.load(Ordering::Relaxed),
            sort_operations: self.sort_operations.load(Ordering::Relaxed),
            scanned_records: self.scanned_records.load(Ordering::Relaxed),
            merge_rescans: self.merge_rescans.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            spilled_runs: self.spilled_runs.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spill_merge_passes: self.spill_merge_passes.load(Ordering::Relaxed),
        }
    }

    /// Account `bytes` of newly live operator buffering and advance
    /// the peak high-water mark.
    pub fn reserve_bytes(&self, bytes: u64) {
        let cur = self.cur_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(cur, Ordering::Relaxed);
    }

    /// Release `bytes` of operator buffering (buffer dropped or its
    /// contents handed downstream). Saturates at zero so a release
    /// raced against a snapshot can never wrap.
    pub fn release_bytes(&self, bytes: u64) {
        let mut cur = self.cur_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.cur_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let m = ExecMetrics::new();
        ExecMetrics::add(&m.stack_pushes, 3);
        ExecMetrics::add(&m.output_tuples, 1);
        let s = m.snapshot();
        assert_eq!(s.stack_pushes, 3);
        assert_eq!(s.output_tuples, 1);
        assert_eq!(s.sort_operations, 0);
    }

    #[test]
    fn peak_bytes_is_a_high_water_mark() {
        let m = ExecMetrics::new();
        m.reserve_bytes(100);
        m.reserve_bytes(50);
        m.release_bytes(120);
        m.reserve_bytes(10);
        let s = m.snapshot();
        assert_eq!(s.peak_bytes, 150, "peak is the maximum, not the final value");
        assert_eq!(m.cur_bytes.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn merged_sums_work_counters() {
        let a = MetricsSnapshot {
            output_tuples: 3,
            stack_pushes: 10,
            peak_bytes: 100,
            sort_operations: 1,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            output_tuples: 4,
            stack_pushes: 7,
            peak_bytes: 60,
            sort_operations: 1,
            ..MetricsSnapshot::default()
        };
        let m = MetricsSnapshot::merged(&[a, b]);
        assert_eq!(m.output_tuples, 7);
        assert_eq!(m.stack_pushes, 17);
        assert_eq!(m.peak_bytes, 160);
        assert_eq!(m.sort_operations, 2);
        assert_eq!(MetricsSnapshot::merged(&[]), MetricsSnapshot::default());
    }

    #[test]
    fn release_saturates_at_zero() {
        let m = ExecMetrics::new();
        m.reserve_bytes(10);
        m.release_bytes(1_000);
        assert_eq!(m.cur_bytes.load(Ordering::Relaxed), 0);
        m.reserve_bytes(5);
        assert_eq!(m.snapshot().peak_bytes, 10);
    }
}
