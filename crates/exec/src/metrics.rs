//! Execution metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters accumulated while a plan runs. Shared (`Arc`) between all
/// operators of one execution.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Tuples produced by the plan root.
    pub output_tuples: AtomicU64,
    /// Tuples produced by all operators (root included) — the paper's
    /// "intermediate result sizes" in aggregate.
    pub produced_tuples: AtomicU64,
    /// Stack push operations across all structural joins.
    pub stack_pushes: AtomicU64,
    /// Stack pop operations across all structural joins.
    pub stack_pops: AtomicU64,
    /// Pairs buffered by Stack-Tree-Anc (self/inherit list appends);
    /// the source of its `2|AB| f_IO` cost term.
    pub buffered_pairs: AtomicU64,
    /// Tuples that passed through explicit sort operators.
    pub sorted_tuples: AtomicU64,
    /// Number of explicit sort operators executed.
    pub sort_operations: AtomicU64,
    /// Records delivered by index scans.
    pub scanned_records: AtomicU64,
    /// Descendant-window tuples visited by merge joins (MPMGJN's
    /// rescan traffic).
    pub merge_rescans: AtomicU64,
}

/// Point-in-time copy of [`ExecMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Tuples emitted at the plan root.
    pub output_tuples: u64,
    /// Tuples produced by all operators, including intermediates.
    pub produced_tuples: u64,
    /// Stack push operations across the stack-tree joins.
    pub stack_pushes: u64,
    /// Stack pop operations across the stack-tree joins.
    pub stack_pops: u64,
    /// Pairs buffered by Stack-Tree-Anc for in-order emission.
    pub buffered_pairs: u64,
    /// Tuples passed through sort operators.
    pub sorted_tuples: u64,
    /// Number of sort operators executed.
    pub sort_operations: u64,
    /// Records delivered by index scans.
    pub scanned_records: u64,
    /// Descendant-window tuples revisited by merge joins.
    pub merge_rescans: u64,
}

impl ExecMetrics {
    /// Fresh shared metrics.
    pub fn new() -> Arc<ExecMetrics> {
        Arc::new(ExecMetrics::default())
    }

    /// Copy current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            output_tuples: self.output_tuples.load(Ordering::Relaxed),
            produced_tuples: self.produced_tuples.load(Ordering::Relaxed),
            stack_pushes: self.stack_pushes.load(Ordering::Relaxed),
            stack_pops: self.stack_pops.load(Ordering::Relaxed),
            buffered_pairs: self.buffered_pairs.load(Ordering::Relaxed),
            sorted_tuples: self.sorted_tuples.load(Ordering::Relaxed),
            sort_operations: self.sort_operations.load(Ordering::Relaxed),
            scanned_records: self.scanned_records.load(Ordering::Relaxed),
            merge_rescans: self.merge_rescans.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let m = ExecMetrics::new();
        ExecMetrics::add(&m.stack_pushes, 3);
        ExecMetrics::add(&m.output_tuples, 1);
        let s = m.snapshot();
        assert_eq!(s.stack_pushes, 3);
        assert_eq!(s.output_tuples, 1);
        assert_eq!(s.sort_operations, 0);
    }
}
