//! Morsel-driven intra-query parallelism via region-range partitioning.
//!
//! The paper's binding lists arrive sorted by region `(start, end)`,
//! and a node's descendants fall entirely inside its ancestor's
//! interval — so splitting the document's start-axis at *clean cuts*
//! makes the structural-join pipeline embarrassingly parallel:
//!
//! * A cut `c` is **valid** when no record in any scanned binding
//!   list straddles it (`start < c <= end`). Morsel `k` is the plan
//!   restricted to records with `start ∈ [c_k, c_{k+1})`; validity
//!   means every record's whole interval lies inside its morsel's
//!   range, so every join partner pair is co-located in one morsel.
//! * At a valid cut the serial algorithm's ancestor stack is empty,
//!   so the serial run is event-for-event the concatenation of the
//!   independent morsel runs: concatenating morsel outputs in cut
//!   order reproduces the serial output sequence exactly, and every
//!   work counter (cardinalities, stack traffic, buffered pairs,
//!   scanned records, merge rescans, sorted tuples) sums
//!   bit-identically to the single-threaded totals — the PL034 batch
//!   contract extended to partitions, verified dynamically by planck
//!   rule **PL068 partition-sound**.
//! * Plans over lists with no valid interior cut — a wildcard scan
//!   (the document root spans everything) or a query binding the root
//!   tag — degrade mechanically to one morsel, i.e. the serial
//!   engine.
//!
//! The general seam machinery (replicating a straddling ancestor into
//! every morsel it overlaps and deduplicating at stitch-up — see
//! [`scatter`] / [`stitch`]) exists for *arbitrary*, externally
//! chosen cuts; the partitioner's own cuts never produce replicas,
//! which is precisely what makes the metric totals exact rather than
//! merely correctable.
//!
//! Workers come from [`std::thread::scope`] (no extra crates, no
//! condvars — the vendored `parking_lot` stub has none): each worker
//! claims morsel indices from a shared atomic counter, re-installs
//! the session's [`IoTap`] so per-session I/O attribution survives
//! the thread hop, runs its morsel's operator pipeline under the
//! *shared* [`QueryGuard`] (budgets bound the aggregate footprint;
//! cancellation and deadlines are observed at every batch boundary of
//! every worker), and parks its tuples and [`MetricsSnapshot`] in its
//! morsel's slot. The first failure (lowest morsel index wins, so
//! errors are deterministic) aborts the remaining workers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sjos_pattern::Pattern;
use sjos_storage::{IoTap, XmlStore};
use sjos_xml::Region;

use crate::error::EngineError;
use crate::executor::{attach_partial, build_operator, execute_opts, QueryResult};
use crate::guard::QueryGuard;
use crate::metrics::{ExecMetrics, MetricsSnapshot};
use crate::ops::OrderingCheck;
use crate::plan::PlanNode;
use crate::tuple::{Schema, Tuple, BATCH_ROWS};

/// How records flow into the cut chooser between guard checkpoints.
const PREPASS_CHECK_EVERY: u64 = 4096;

/// Parallelism knobs for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Worker threads (1 = the serial engine, no pool).
    pub threads: usize,
    /// Morsels targeted per worker; more than one keeps the pool busy
    /// when morsel sizes are skewed (work stealing via the shared
    /// morsel counter).
    pub morsels_per_thread: usize,
}

impl ParallelPolicy {
    /// `threads` workers at the default morsel granularity (4 morsels
    /// per worker).
    pub fn with_threads(threads: usize) -> ParallelPolicy {
        ParallelPolicy { threads: threads.max(1), morsels_per_thread: 4 }
    }

    /// Total morsels the partitioner aims for.
    pub fn target_morsels(&self) -> usize {
        self.threads.max(1) * self.morsels_per_thread.max(1)
    }
}

/// A partition of the document's start-axis into region-disjoint
/// morsel ranges: `cuts` are the interior boundaries, strictly
/// increasing, each valid (no scanned interval straddles it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPartition {
    /// Interior cut points on the `region.start` axis.
    pub cuts: Vec<u32>,
    /// Total records across all scanned lists (self-joins counted per
    /// scan), from the index statistics.
    pub total_records: u64,
}

impl RegionPartition {
    /// The trivial partition: one morsel covering everything.
    pub fn serial() -> RegionPartition {
        RegionPartition { cuts: Vec::new(), total_records: 0 }
    }

    /// Number of morsels (`cuts.len() + 1`).
    pub fn morsel_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The half-open `[lo, hi)` start-ranges of each morsel, in
    /// document order, jointly covering `[0, u32::MAX)`.
    pub fn ranges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.cuts.len() + 1);
        let mut lo = 0u32;
        for &c in &self.cuts {
            out.push((lo, c));
            lo = c;
        }
        out.push((lo, u32::MAX));
        out
    }
}

/// Choose valid cuts over in-memory region lists (each sorted by
/// `start`), aiming for `target_morsels` morsels of roughly equal
/// record counts. The pure-core twin of [`plan_partition`], exposed
/// so property tests can drive it with arbitrary lists.
pub fn partition_regions(lists: &[Vec<Region>], target_morsels: usize) -> RegionPartition {
    let total: u64 = lists.iter().map(|l| l.len() as u64).sum();
    let streams: Vec<_> = lists
        .iter()
        .map(|l| l.iter().map(|r| Ok::<(u32, u32), EngineError>((r.start, r.end))))
        .collect();
    let cuts = choose_cuts(streams, &vec![1u64; lists.len()], total, target_morsels, None)
        .expect("in-memory streams cannot fail");
    RegionPartition { cuts, total_records: total }
}

/// Choose valid cuts for `plan` against `store` by streaming the
/// scanned binding lists once (page-pruned index scans; the paper's
/// `f_I·n` cost, paid once before the parallel run). Plans containing
/// a wildcard scan return the serial partition: the document root's
/// interval spans every candidate cut, so no interior cut is valid.
///
/// # Errors
/// [`EngineError::Storage`] if the pre-pass hits an unrecoverable
/// page fault, [`EngineError::Guard`] if `guard` trips mid-pass.
pub fn plan_partition(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    target_morsels: usize,
    guard: Option<&QueryGuard>,
) -> Result<RegionPartition, EngineError> {
    if target_morsels <= 1 {
        return Ok(RegionPartition::serial());
    }
    // Collect the scanned tags (with multiplicity — a self-join scans
    // the same list twice and its records weigh double).
    let mut tags: HashMap<sjos_xml::Tag, u64> = HashMap::new();
    let mut leaves = Vec::new();
    collect_leaves(plan, &mut leaves);
    for pnode in leaves {
        let pat_node = pattern.node(pnode);
        if pat_node.is_wildcard() {
            // The heap list contains the document root, which spans
            // every element: no interior cut can be valid.
            return Ok(RegionPartition::serial());
        }
        if let Some(t) = store.document().tag(&pat_node.tag) {
            *tags.entry(t).or_insert(0) += 1;
        }
        // A missing tag scans an empty list: no cut constraints.
    }
    let mut tags: Vec<(sjos_xml::Tag, u64)> = tags.into_iter().collect();
    tags.sort_unstable_by_key(|&(t, _)| t);
    let total: u64 = tags.iter().map(|&(t, m)| store.tag_cardinality(t) * m).sum();
    if total == 0 {
        return Ok(RegionPartition::serial());
    }
    let weights: Vec<u64> = tags.iter().map(|&(_, m)| m).collect();
    let streams: Vec<_> = tags
        .iter()
        .map(|&(t, _)| {
            store.scan_tag(t).map(|r| match r {
                Ok(rec) => Ok((rec.region.start, rec.region.end)),
                Err(e) => Err(EngineError::Storage(e)),
            })
        })
        .collect();
    let cuts = choose_cuts(streams, &weights, total, target_morsels, guard)?;
    Ok(RegionPartition { cuts, total_records: total })
}

/// The streaming cut chooser: k-way-merge the per-list streams by
/// `start`, track the running maximum `end` over everything consumed,
/// and greedily cut at the first boundary at-or-after each `j·N/M`
/// record target where the boundary is valid (`max_end < start` — no
/// consumed interval reaches past it, and unconsumed records start
/// later still). `O(n log k)` time, `O(k)` memory.
fn choose_cuts<I>(
    streams: Vec<I>,
    weights: &[u64],
    total: u64,
    target_morsels: usize,
    guard: Option<&QueryGuard>,
) -> Result<Vec<u32>, EngineError>
where
    I: Iterator<Item = Result<(u32, u32), EngineError>>,
{
    let stride = (total / target_morsels.max(1) as u64).max(1);
    let mut next_target = stride;
    let mut consumed = 0u64;
    let mut since_check = 0u64;
    let mut max_end = 0u32;
    let mut cuts: Vec<u32> = Vec::new();
    let mut streams = streams;
    let mut heap: BinaryHeap<Reverse<(u32, u32, usize)>> = BinaryHeap::new();
    for (i, s) in streams.iter_mut().enumerate() {
        if let Some(r) = s.next() {
            let (start, end) = r?;
            heap.push(Reverse((start, end, i)));
        }
    }
    while let Some(Reverse((start, end, i))) = heap.pop() {
        if consumed >= next_target && max_end < start && cuts.last().is_none_or(|&c| c < start) {
            cuts.push(start);
            next_target = consumed + stride;
        }
        consumed += weights[i];
        max_end = max_end.max(end);
        since_check += 1;
        if since_check >= PREPASS_CHECK_EVERY {
            since_check = 0;
            if let Some(g) = guard {
                g.check_point().map_err(|breach| EngineError::Guard {
                    breach,
                    partial: Box::new(MetricsSnapshot::default()),
                })?;
            }
        }
        if let Some(r) = streams[i].next() {
            let (s2, e2) = r?;
            heap.push(Reverse((s2, e2, i)));
        }
    }
    Ok(cuts)
}

fn collect_leaves(plan: &PlanNode, out: &mut Vec<sjos_pattern::PnId>) {
    match plan {
        PlanNode::IndexScan { pnode } => out.push(*pnode),
        PlanNode::Sort { input, .. } => collect_leaves(input, out),
        PlanNode::StructuralJoin { left, right, .. } => {
            collect_leaves(left, out);
            collect_leaves(right, out);
        }
    }
}

/// Assign each record of a document-ordered region list to every
/// morsel range its interval overlaps: the owner morsel (the one
/// holding its `start`) plus a *seam replica* in each later range the
/// interval straddles into. Partitioner-chosen cuts are valid, so
/// under them this is a plain partition by `start` with zero
/// replicas; the general form exists so the seam contract
/// ([`stitch`] deduplicates exactly the replicas) is testable against
/// arbitrary cut choices.
pub fn scatter(list: &[Region], ranges: &[(u32, u32)]) -> Vec<Vec<Region>> {
    let mut out: Vec<Vec<Region>> = vec![Vec::new(); ranges.len()];
    for r in list {
        for (k, &(lo, hi)) in ranges.iter().enumerate() {
            // The interval [start, end] overlaps [lo, hi): the owner
            // morsel holds `start`; later overlapped ranges get seam
            // replicas.
            if r.start < hi && r.end >= lo {
                out[k].push(*r);
            }
        }
    }
    out
}

/// Reassemble scattered morsel lists into one document-ordered list,
/// dropping seam replicas: a record belongs to the morsel that owns
/// its `start`, so any copy sitting in a range that begins *after*
/// its start is a replica [`scatter`] planted for a straddled cut.
/// Ownership (not adjacency) identifies replicas, because nested
/// intervals can interleave a straddler with later same-morsel
/// records. `stitch(&scatter(list, ranges), ranges) == list` for any
/// cover of the start axis — the partition round-trip invariant the
/// property suite pins.
///
/// # Panics
/// Panics if `parts` and `ranges` disagree on the morsel count (a
/// caller bug).
pub fn stitch(parts: &[Vec<Region>], ranges: &[(u32, u32)]) -> Vec<Region> {
    assert_eq!(parts.len(), ranges.len(), "one range per morsel part");
    let mut out: Vec<Region> = Vec::new();
    for (part, &(lo, _)) in parts.iter().zip(ranges) {
        out.extend(part.iter().filter(|r| r.start >= lo));
    }
    out
}

/// The answer of one parallel execution: the merged [`QueryResult`]
/// plus the partition evidence (per-morsel snapshots and cut points)
/// that planck's PL068 and the benches audit.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// Merged result — tuples concatenated in morsel (document)
    /// order, metrics summed per [`MetricsSnapshot::merged`].
    pub result: QueryResult,
    /// Interior cut points the partitioner chose (empty = serial).
    pub cuts: Vec<u32>,
    /// Per-morsel metric snapshots, in morsel order.
    pub morsel_snapshots: Vec<MetricsSnapshot>,
    /// Worker threads the pool actually used.
    pub threads_used: usize,
}

impl ParallelOutcome {
    /// Number of morsels the query ran as (1 = serial fallback).
    pub fn morsel_count(&self) -> usize {
        self.morsel_snapshots.len()
    }
}

/// Execute `plan` across `threads` workers, materializing results.
/// Falls back to the serial engine when `threads <= 1` or no valid
/// cut exists.
pub fn execute_parallel(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    threads: usize,
) -> Result<ParallelOutcome, EngineError> {
    execute_parallel_opts(
        store,
        pattern,
        plan,
        true,
        BATCH_ROWS,
        &Arc::new(QueryGuard::unlimited()),
        ParallelPolicy::with_threads(threads),
    )
}

/// [`execute_parallel`] without result materialization — for
/// measurement runs over folded corpora.
pub fn execute_parallel_counting(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    threads: usize,
) -> Result<ParallelOutcome, EngineError> {
    execute_parallel_opts(
        store,
        pattern,
        plan,
        false,
        BATCH_ROWS,
        &Arc::new(QueryGuard::unlimited()),
        ParallelPolicy::with_threads(threads),
    )
}

/// [`execute_parallel`] under an explicit shared [`QueryGuard`]: its
/// memory/batch counters are the *aggregate* across all workers, and
/// cancellation/deadline are observed at every batch boundary of
/// every worker, so cancellation latency stays within one batch.
pub fn execute_parallel_guarded(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    guard: &Arc<QueryGuard>,
    policy: ParallelPolicy,
) -> Result<ParallelOutcome, EngineError> {
    execute_parallel_opts(store, pattern, plan, true, BATCH_ROWS, guard, policy)
}

/// The full-knob parallel entry point (materialization, batch
/// granularity, guard, policy) — the differential suites sweep
/// `threads × batch_rows` through this.
///
/// Spill mode is deliberately absent: morsels already shrink each
/// sort's input by the partition factor, and the degraded-admission
/// path stays serial (the service runs spill queries with
/// `parallelism = 1`).
pub fn execute_parallel_opts(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    materialize: bool,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
    policy: ParallelPolicy,
) -> Result<ParallelOutcome, EngineError> {
    plan.validate(pattern).map_err(EngineError::InvalidPlan)?;
    if policy.threads <= 1 {
        return serial_outcome(store, pattern, plan, materialize, batch_rows, guard);
    }
    let io_before = store.stats().snapshot();
    let started = Instant::now();
    let partition = plan_partition(store, pattern, plan, policy.target_morsels(), Some(guard))?;
    if partition.morsel_count() == 1 {
        // No valid cut (wildcard, root-binding query, tiny corpus):
        // the serial engine *is* the one-morsel execution.
        return serial_outcome(store, pattern, plan, materialize, batch_rows, guard);
    }
    let ranges = partition.ranges();
    let morsels = ranges.len();
    let workers = policy.threads.min(morsels);
    let tap = IoTap::current();

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<MorselOut>>> = (0..morsels).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<(usize, EngineError)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Per-session I/O attribution survives the thread
                // hop: mirror the session thread's tap here.
                let _tap = tap.clone().map(IoTap::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= morsels || abort.load(Ordering::Relaxed) {
                        break;
                    }
                    match run_morsel(
                        store,
                        pattern,
                        plan,
                        materialize,
                        batch_rows,
                        guard,
                        ranges[i],
                        &abort,
                    ) {
                        Ok(Some(out)) => {
                            *slots[i].lock().expect("morsel slot poisoned") = Some(out);
                        }
                        Ok(None) => break, // aborted by a sibling's failure
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            let mut f = failure.lock().expect("failure slot poisoned");
                            // Deterministic error: lowest morsel wins.
                            if f.as_ref().is_none_or(|&(j, _)| i < j) {
                                *f = Some((i, e));
                            }
                        }
                    }
                }
            });
        }
    });

    let outs: Vec<Option<MorselOut>> =
        slots.into_iter().map(|m| m.into_inner().expect("morsel slot poisoned")).collect();
    if let Some((_, e)) = failure.into_inner().expect("failure slot poisoned") {
        // Fold the completed morsels' counters into a guard breach's
        // partial snapshot so callers see aggregate progress.
        let done: Vec<MetricsSnapshot> = outs.iter().flatten().map(|o| o.snapshot).collect();
        return Err(match e {
            EngineError::Guard { breach, partial } => {
                let mut all = done;
                all.push(*partial);
                EngineError::Guard { breach, partial: Box::new(MetricsSnapshot::merged(&all)) }
            }
            other => other,
        });
    }

    // No failure, no abort: every slot is filled. Stitch in morsel
    // order — ranges ascend the start axis, so concatenation is the
    // serial emission order.
    let mut tuples = Vec::new();
    let mut snapshots = Vec::with_capacity(morsels);
    for out in outs {
        let out = out.expect("all morsels completed");
        tuples.extend(out.tuples);
        snapshots.push(out.snapshot);
    }
    let elapsed = started.elapsed();
    let result = QueryResult {
        schema: plan_schema(plan),
        tuples,
        metrics: MetricsSnapshot::merged(&snapshots),
        io: store.stats().snapshot().since(&io_before),
        elapsed,
    };
    Ok(ParallelOutcome {
        result,
        cuts: partition.cuts,
        morsel_snapshots: snapshots,
        threads_used: workers,
    })
}

struct MorselOut {
    tuples: Vec<Tuple>,
    snapshot: MetricsSnapshot,
}

/// Run one morsel's pipeline: the plan with every leaf scan
/// restricted to `[lo, hi)`, its own [`ExecMetrics`], the shared
/// guard. Returns `Ok(None)` when a sibling's failure aborted the
/// pool mid-drain.
#[allow(clippy::too_many_arguments)]
fn run_morsel(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    materialize: bool,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
    range: (u32, u32),
    abort: &AtomicBool,
) -> Result<Option<MorselOut>, EngineError> {
    let metrics = ExecMetrics::new();
    let mut root =
        build_operator(store, pattern, plan, &metrics, batch_rows, guard, None, Some(range))?;
    let mut tuples = Vec::new();
    let mut count: u64 = 0;
    let ordered_col = root.ordered_col();
    let mut check = OrderingCheck::new();
    loop {
        if abort.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match root.next_batch() {
            Ok(Some(batch)) => {
                check.check(&batch, ordered_col);
                count += batch.len() as u64;
                if materialize {
                    tuples.extend(batch.into_rows());
                }
            }
            Ok(None) => break,
            Err(e) => {
                ExecMetrics::add(&metrics.output_tuples, count);
                return Err(attach_partial(e, &metrics));
            }
        }
    }
    ExecMetrics::add(&metrics.output_tuples, count);
    drop(root);
    Ok(Some(MorselOut { tuples, snapshot: metrics.snapshot() }))
}

/// One-morsel execution through the serial engine, wrapped as a
/// [`ParallelOutcome`].
fn serial_outcome(
    store: &XmlStore,
    pattern: &Pattern,
    plan: &PlanNode,
    materialize: bool,
    batch_rows: usize,
    guard: &Arc<QueryGuard>,
) -> Result<ParallelOutcome, EngineError> {
    let result = execute_opts(store, pattern, plan, materialize, batch_rows, guard, None)?;
    let snapshot = result.metrics;
    Ok(ParallelOutcome {
        result,
        cuts: Vec::new(),
        morsel_snapshots: vec![snapshot],
        threads_used: 1,
    })
}

/// The output schema `plan` produces, derived structurally (scans are
/// singletons, joins concatenate left-then-right, sorts pass
/// through) — identical to what the built operator tree reports.
fn plan_schema(plan: &PlanNode) -> Schema {
    match plan {
        PlanNode::IndexScan { pnode } => Schema::singleton(*pnode),
        PlanNode::Sort { input, .. } => plan_schema(input),
        PlanNode::StructuralJoin { left, right, .. } => {
            plan_schema(left).concat(&plan_schema(right))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GuardBreach;
    use crate::plan::JoinAlgo;
    use sjos_pattern::{parse_pattern, Axis, PnId};
    use sjos_xml::Document;

    fn forest(subtrees: usize) -> XmlStore {
        let mut xml = String::from("<db>");
        for i in 0..subtrees {
            xml.push_str(&format!(
                "<dept><emp><name>p{i}</name></emp><emp><name>q{i}</name></emp></dept>"
            ));
        }
        xml.push_str("</db>");
        XmlStore::load(Document::parse(&xml).unwrap())
    }

    fn scan(i: u16) -> PlanNode {
        PlanNode::IndexScan { pnode: PnId(i) }
    }

    fn two_way_plan() -> PlanNode {
        PlanNode::StructuralJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            anc: PnId(0),
            desc: PnId(1),
            axis: Axis::Descendant,
            algo: JoinAlgo::StackTreeDesc,
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let st = forest(64);
        let pat = parse_pattern("//dept//emp").unwrap();
        let serial = crate::executor::execute(&st, &pat, &two_way_plan()).unwrap();
        for threads in [2, 4, 8] {
            let par = execute_parallel(&st, &pat, &two_way_plan(), threads).unwrap();
            assert!(par.morsel_count() > 1, "forest must split at {threads} threads");
            assert_eq!(par.result.tuples, serial.tuples, "output sequence must be identical");
            let m = &par.result.metrics;
            assert_eq!(m.output_tuples, serial.metrics.output_tuples);
            assert_eq!(m.stack_pushes, serial.metrics.stack_pushes);
            assert_eq!(m.stack_pops, serial.metrics.stack_pops);
            assert_eq!(m.scanned_records, serial.metrics.scanned_records);
            assert_eq!(m.produced_tuples, serial.metrics.produced_tuples);
        }
    }

    #[test]
    fn partitioner_cuts_are_valid_and_balanced() {
        let st = forest(40);
        let pat = parse_pattern("//dept//emp").unwrap();
        let part = plan_partition(&st, &pat, &two_way_plan(), 8, None).unwrap();
        assert!(part.morsel_count() > 1);
        assert!(part.cuts.windows(2).all(|w| w[0] < w[1]), "cuts strictly increase");
        // Validity: no scanned interval straddles any cut.
        let dept = st.document().tag("dept").unwrap();
        let emp = st.document().tag("emp").unwrap();
        for tag in [dept, emp] {
            for rec in st.scan_tag(tag).map(Result::unwrap) {
                for &c in &part.cuts {
                    assert!(
                        !(rec.region.start < c && c <= rec.region.end),
                        "record {:?} straddles cut {c}",
                        rec.region
                    );
                }
            }
        }
    }

    #[test]
    fn wildcard_plans_fall_back_to_serial() {
        let st = forest(16);
        let pat = parse_pattern("//*//emp").unwrap();
        let part = plan_partition(&st, &pat, &two_way_plan(), 8, None).unwrap();
        assert_eq!(part.morsel_count(), 1);
        let out = execute_parallel(&st, &pat, &two_way_plan(), 4).unwrap();
        assert_eq!(out.morsel_count(), 1, "wildcard runs as one serial morsel");
        assert!(!out.result.is_empty());
    }

    #[test]
    fn scatter_stitch_round_trips_with_seam_dedup() {
        // A list with an interval straddling the (invalid) cut at 5.
        let list = vec![
            Region { start: 0, end: 3, level: 1 },
            Region { start: 1, end: 9, level: 1 }, // straddles
            Region { start: 6, end: 8, level: 2 },
        ];
        let ranges = [(0u32, 5u32), (5, u32::MAX)];
        let parts = scatter(&list, &ranges);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2, "straddler replicated into the seam");
        assert_eq!(stitch(&parts, &ranges), list, "stitch drops the replica");
    }

    #[test]
    fn guard_cancellation_stops_all_workers() {
        let st = forest(64);
        let pat = parse_pattern("//dept//emp").unwrap();
        let guard = Arc::new(QueryGuard::unlimited());
        guard.cancel_token().cancel();
        let err = execute_parallel_guarded(
            &st,
            &pat,
            &two_way_plan(),
            &guard,
            ParallelPolicy::with_threads(4),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Guard { breach: GuardBreach::Cancelled, .. }));
    }

    #[test]
    fn shared_guard_bounds_the_aggregate() {
        let st = forest(64);
        let pat = parse_pattern("//dept//emp").unwrap();
        let guard = Arc::new(QueryGuard::unlimited().with_batch_budget(2));
        let err = execute_parallel_guarded(
            &st,
            &pat,
            &two_way_plan(),
            &guard,
            ParallelPolicy::with_threads(4),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Guard { breach: GuardBreach::BatchBudget { limit: 2 }, .. }
        ));
    }

    #[test]
    fn single_thread_policy_is_the_serial_engine() {
        let st = forest(8);
        let pat = parse_pattern("//dept//emp").unwrap();
        let serial = crate::executor::execute(&st, &pat, &two_way_plan()).unwrap();
        let one = execute_parallel(&st, &pat, &two_way_plan(), 1).unwrap();
        assert_eq!(one.morsel_count(), 1);
        assert_eq!(one.result.tuples, serial.tuples);
        assert_eq!(one.result.metrics, serial.metrics);
    }
}
