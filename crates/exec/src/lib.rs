//! # sjos-exec
//!
//! The physical layer: plan trees, Volcano-style operators, and the
//! executor that runs a structural-join plan against an
//! [`sjos_storage::XmlStore`].
//!
//! Execution is *vectorized*: operators exchange columnar
//! [`tuple::TupleBatch`]es (target [`tuple::BATCH_ROWS`] rows) rather
//! than single tuples, so per-item costs — virtual dispatch, bounds
//! checks, and above all the shared atomic metric counters — are paid
//! once per batch. Metric totals are exact and independent of batch
//! size; `batch_rows = 1` reproduces the original tuple-at-a-time
//! engine for before/after measurement.
//!
//! Operators:
//! * [`ops::IndexScanOp`] — streams one tag's binding list from the
//!   tag index (document order), applying the node's value predicate.
//! * [`ops::StackTreeJoinOp`] — the Stack-Tree-Desc and
//!   Stack-Tree-Anc structural join algorithms of Al-Khalifa et al.
//!   (ICDE 2002), generalized to tuple inputs: Desc streams output in
//!   descendant order; Anc buffers (self/inherit lists) to emit in
//!   ancestor order.
//! * [`ops::SortOp`] — blocking sort of an intermediate result by any
//!   bound pattern node.
//!
//! [`parallel`] adds morsel-driven intra-query parallelism: valid
//! cuts on the region `start` axis split every binding list into
//! region-disjoint morsels whose independent executions reproduce the
//! serial answer — and the serial metric totals — bit for bit.
//!
//! [`naive`] holds a navigational evaluator used as ground truth in
//! tests (and as the paper's Example 2.2 "scan the subtree" cautionary
//! baseline).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod guard;
pub mod holistic;
pub mod metrics;
pub mod naive;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod tuple;

pub use error::{EngineError, ExecError, GuardBreach};
pub use executor::{
    execute, execute_batches, execute_counting, execute_counting_guarded,
    execute_counting_guarded_spill, execute_counting_with_batch_rows, execute_guarded,
    execute_guarded_spill, execute_guarded_with_batch_rows, execute_spill_with_batch_rows,
    execute_with_batch_rows, BatchedResult, QueryResult,
};
pub use guard::{CancelToken, GuardedOp, QueryGuard};
pub use metrics::{ExecMetrics, MetricsSnapshot};
pub use ops::SpillPolicy;
pub use parallel::{
    execute_parallel, execute_parallel_counting, execute_parallel_guarded, execute_parallel_opts,
    partition_regions, plan_partition, scatter, stitch, ParallelOutcome, ParallelPolicy,
    RegionPartition,
};
pub use plan::{JoinAlgo, OperatorContract, PlanNode};
pub use tuple::{Entry, Schema, Tuple, TupleBatch, BATCH_ROWS};

#[cfg(test)]
mod thread_safety {
    //! The concurrent query service shares one engine across sessions;
    //! these assertions pin the `Send`/`Sync` audit at compile time so
    //! a regression (an `Rc`, a non-`Send` trait object) fails here,
    //! with a readable message, rather than deep inside the service.
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn execution_state_is_shareable() {
        assert_send_sync::<guard::QueryGuard>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<ExecMetrics>();
        assert_send_sync::<MetricsSnapshot>();
        assert_send_sync::<EngineError>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<PlanNode>();
        assert_send::<ops::BoxedOperator<'static>>();
        assert_send::<GuardedOp<'static>>();
        assert_send_sync::<ParallelPolicy>();
        assert_send_sync::<RegionPartition>();
        assert_send_sync::<ParallelOutcome>();
    }
}
