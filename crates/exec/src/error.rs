//! Typed execution errors.
//!
//! Everything that can go wrong while a plan runs is an
//! [`EngineError`]: a malformed plan (an optimizer bug), a storage
//! fault that survived the buffer pool's retries, or a resource-guard
//! breach. Operators propagate these as `Result`s — a fault in the
//! middle of a join surfaces as a typed error at the executor entry
//! point, never as a panic or a silently wrong answer.

use std::fmt;
use std::time::Duration;

use sjos_storage::StorageError;

use crate::metrics::MetricsSnapshot;

/// Why a [`crate::guard::QueryGuard`] stopped an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardBreach {
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured time limit.
        limit: Duration,
    },
    /// The engine pulled more batches than budgeted.
    BatchBudget {
        /// The configured batch-pull limit.
        limit: u64,
    },
    /// A buffering operator asked for more memory than budgeted.
    MemoryBudget {
        /// The configured reservation limit in bytes.
        limit_bytes: usize,
        /// Total bytes reserved including the rejected request.
        requested_bytes: usize,
    },
    /// The cooperative cancellation token was triggered.
    Cancelled,
}

impl fmt::Display for GuardBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardBreach::Deadline { limit } => {
                write!(f, "deadline of {limit:?} exceeded")
            }
            GuardBreach::BatchBudget { limit } => {
                write!(f, "batch budget of {limit} batches exhausted")
            }
            GuardBreach::MemoryBudget { limit_bytes, requested_bytes } => {
                write!(
                    f,
                    "memory budget of {limit_bytes} bytes exceeded \
                     (reservation reached {requested_bytes} bytes)"
                )
            }
            GuardBreach::Cancelled => write!(f, "execution cancelled"),
        }
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan does not correctly evaluate the pattern.
    InvalidPlan(String),
    /// A storage fault survived the buffer pool's retry policy.
    Storage(StorageError),
    /// A resource guard stopped the execution. `partial` holds the
    /// metrics accumulated up to the stop — the executor entry points
    /// fill it in so callers can see how far the plan got.
    Guard {
        /// What limit was breached.
        breach: GuardBreach,
        /// Operator counters at the moment the guard fired
        /// (boxed to keep the `Err` variant small — clippy
        /// `result_large_err`).
        partial: Box<MetricsSnapshot>,
    },
}

/// Backwards-compatible name: the executor's error type started out
/// as a one-variant `ExecError` before the robustness work widened it.
pub type ExecError = EngineError;

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::Storage(e) => write!(f, "storage fault during execution: {e}"),
            EngineError::Guard { breach, partial } => {
                write!(
                    f,
                    "query stopped by resource guard: {breach} \
                     ({} tuples produced before the stop)",
                    partial.produced_tuples
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> EngineError {
        EngineError::Storage(e)
    }
}

impl From<GuardBreach> for EngineError {
    /// Wrap a breach with empty partial metrics; the executor entry
    /// points replace `partial` with the real snapshot on the way out.
    fn from(breach: GuardBreach) -> EngineError {
        EngineError::Guard { breach, partial: Box::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_fault() {
        let e =
            EngineError::Storage(StorageError::ChecksumMismatch { page: sjos_storage::PageId(3) });
        assert!(e.to_string().contains("checksum"));
        let g = EngineError::from(GuardBreach::BatchBudget { limit: 10 });
        assert!(g.to_string().contains("batch budget"));
        let c = EngineError::from(GuardBreach::Cancelled);
        assert!(c.to_string().contains("cancelled"));
    }

    #[test]
    fn storage_source_is_exposed() {
        use std::error::Error;
        let e = EngineError::from(StorageError::PoolExhausted { capacity: 1 });
        assert!(e.source().is_some());
        assert!(EngineError::InvalidPlan("x".into()).source().is_none());
    }
}
