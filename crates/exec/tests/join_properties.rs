//! Property tests for the stack-tree join operators: against
//! arbitrary well-formed documents, both algorithms must produce
//! exactly the brute-force pair set, in their advertised orders.

use proptest::prelude::*;
use std::sync::Arc;

use sjos_exec::metrics::ExecMetrics;
use sjos_exec::ops::{join::StackTreeJoinOp, Operator};
use sjos_exec::tuple::{Entry, Schema, Tuple};
use sjos_exec::JoinAlgo;
use sjos_pattern::{Axis, PnId};
use sjos_xml::{DocumentBuilder, NodeId, Region};

/// Random tree shape encoded as a preorder fanout list.
fn doc_strategy() -> impl Strategy<Value = Vec<Region>> {
    // Build a random document by interpreting a byte string as
    // open/close decisions; collect all element regions.
    prop::collection::vec(0u8..4, 1..60).prop_map(|script| {
        let mut b = DocumentBuilder::new();
        b.start_element("r");
        let mut depth = 1;
        for op in script {
            if op == 0 && depth > 1 {
                b.end_element();
                depth -= 1;
            } else {
                b.start_element("x");
                depth += 1;
            }
        }
        while depth > 0 {
            b.end_element();
            depth -= 1;
        }
        let doc = b.finish();
        doc.nodes().iter().map(|n| n.region).collect()
    })
}

/// Pick two (sorted) sublists of the document's regions.
fn two_lists() -> impl Strategy<Value = (Vec<Region>, Vec<Region>)> {
    (doc_strategy(), any::<u64>(), any::<u64>()).prop_map(|(regions, ma, mb)| {
        let pick = |mask: u64| -> Vec<Region> {
            regions
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> (i % 64)) & 1 == 1)
                .map(|(_, r)| *r)
                .collect()
        };
        (pick(ma), pick(mb))
    })
}

fn input(col: u16, regions: &[Region]) -> FixedInput {
    FixedInput {
        schema: Schema::singleton(PnId(col)),
        rows: regions
            .iter()
            .enumerate()
            .map(|(i, r)| vec![Entry { node: NodeId(i as u32), region: *r }])
            .collect::<Vec<_>>()
            .into_iter(),
    }
}

struct FixedInput {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl Operator for FixedInput {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Tuple> {
        self.rows.next()
    }
}

fn run_join(
    ancs: &[Region],
    descs: &[Region],
    algo: JoinAlgo,
    axis: Axis,
) -> Vec<(Region, Region)> {
    let m = ExecMetrics::new();
    let mut op = StackTreeJoinOp::new(
        Box::new(input(0, ancs)),
        Box::new(input(1, descs)),
        PnId(0),
        PnId(1),
        axis,
        algo,
        Arc::clone(&m),
    );
    let mut out = vec![];
    while let Some(t) = op.next() {
        out.push((t[0].region, t[1].region));
    }
    out
}

fn brute_force(ancs: &[Region], descs: &[Region], axis: Axis) -> Vec<(Region, Region)> {
    let mut out = vec![];
    for a in ancs {
        for d in descs {
            let ok = match axis {
                Axis::Descendant => a.contains(*d),
                Axis::Child => a.is_parent_of(*d),
            };
            if ok {
                out.push((*a, *d));
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn desc_join_equals_brute_force((ancs, descs) in two_lists()) {
        for axis in [Axis::Descendant, Axis::Child] {
            let mut got = run_join(&ancs, &descs, JoinAlgo::StackTreeDesc, axis);
            got.sort();
            prop_assert_eq!(&got, &brute_force(&ancs, &descs, axis));
        }
    }

    #[test]
    fn anc_join_equals_brute_force((ancs, descs) in two_lists()) {
        for axis in [Axis::Descendant, Axis::Child] {
            let mut got = run_join(&ancs, &descs, JoinAlgo::StackTreeAnc, axis);
            got.sort();
            prop_assert_eq!(&got, &brute_force(&ancs, &descs, axis));
        }
    }

    #[test]
    fn desc_output_is_descendant_ordered((ancs, descs) in two_lists()) {
        let got = run_join(&ancs, &descs, JoinAlgo::StackTreeDesc, Axis::Descendant);
        prop_assert!(got.windows(2).all(|w| w[0].1.start <= w[1].1.start));
    }

    #[test]
    fn anc_output_is_ancestor_ordered((ancs, descs) in two_lists()) {
        let got = run_join(&ancs, &descs, JoinAlgo::StackTreeAnc, Axis::Descendant);
        prop_assert!(got.windows(2).all(|w| w[0].0.start <= w[1].0.start));
    }

    #[test]
    fn self_join_never_pairs_identity(regions in doc_strategy()) {
        let got = run_join(&regions, &regions, JoinAlgo::StackTreeDesc, Axis::Descendant);
        prop_assert!(got.iter().all(|(a, d)| a != d));
    }
}
