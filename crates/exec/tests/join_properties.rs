//! Property tests for the stack-tree join operators: against
//! arbitrary well-formed documents, both algorithms must produce
//! exactly the brute-force pair set, in their advertised orders —
//! at every batch granularity.

use proptest::prelude::*;
use std::sync::Arc;

use sjos_exec::metrics::ExecMetrics;
use sjos_exec::ops::{join::StackTreeJoinOp, Operator, VecInput};
use sjos_exec::tuple::Entry;
use sjos_exec::{JoinAlgo, BATCH_ROWS};
use sjos_pattern::{Axis, PnId};
use sjos_xml::{DocumentBuilder, NodeId, Region};

/// Random tree shape encoded as a preorder fanout list.
fn doc_strategy() -> impl Strategy<Value = Vec<Region>> {
    // Build a random document by interpreting a byte string as
    // open/close decisions; collect all element regions.
    prop::collection::vec(0u8..4, 1..60).prop_map(|script| {
        let mut b = DocumentBuilder::new();
        b.start_element("r");
        let mut depth = 1;
        for op in script {
            if op == 0 && depth > 1 {
                b.end_element();
                depth -= 1;
            } else {
                b.start_element("x");
                depth += 1;
            }
        }
        while depth > 0 {
            b.end_element();
            depth -= 1;
        }
        let doc = b.finish();
        doc.nodes().iter().map(|n| n.region).collect()
    })
}

/// Pick two (sorted) sublists of the document's regions plus a batch
/// granularity to run the join at.
fn two_lists() -> impl Strategy<Value = (Vec<Region>, Vec<Region>, usize)> {
    (doc_strategy(), any::<u64>(), any::<u64>(), 1usize..5).prop_map(
        |(regions, ma, mb, batch_rows)| {
            let pick = |mask: u64| -> Vec<Region> {
                regions
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (mask >> (i % 64)) & 1 == 1)
                    .map(|(_, r)| *r)
                    .collect()
            };
            (pick(ma), pick(mb), batch_rows)
        },
    )
}

fn input(col: u16, regions: &[Region], batch_rows: usize) -> VecInput {
    VecInput::single(
        PnId(col),
        regions
            .iter()
            .enumerate()
            .map(|(i, r)| Entry { node: NodeId(i as u32), region: *r })
            .collect(),
    )
    .with_batch_rows(batch_rows)
}

fn run_join(
    ancs: &[Region],
    descs: &[Region],
    algo: JoinAlgo,
    axis: Axis,
    batch_rows: usize,
) -> Vec<(Region, Region)> {
    let m = ExecMetrics::new();
    let mut op = StackTreeJoinOp::new(
        Box::new(input(0, ancs, batch_rows)),
        Box::new(input(1, descs, batch_rows)),
        PnId(0),
        PnId(1),
        axis,
        algo,
        Arc::clone(&m),
    )
    .expect("valid join inputs")
    .with_batch_rows(batch_rows);
    let mut out = vec![];
    while let Some(b) = op.next_batch().expect("unguarded in-memory join cannot fail") {
        for row in 0..b.len() {
            out.push((b.entry(0, row).region, b.entry(1, row).region));
        }
    }
    out
}

fn brute_force(ancs: &[Region], descs: &[Region], axis: Axis) -> Vec<(Region, Region)> {
    let mut out = vec![];
    for a in ancs {
        for d in descs {
            let ok = match axis {
                Axis::Descendant => a.contains(*d),
                Axis::Child => a.is_parent_of(*d),
            };
            if ok {
                out.push((*a, *d));
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn desc_join_equals_brute_force((ancs, descs, batch_rows) in two_lists()) {
        for axis in [Axis::Descendant, Axis::Child] {
            let mut got = run_join(&ancs, &descs, JoinAlgo::StackTreeDesc, axis, batch_rows);
            got.sort();
            prop_assert_eq!(&got, &brute_force(&ancs, &descs, axis));
        }
    }

    #[test]
    fn anc_join_equals_brute_force((ancs, descs, batch_rows) in two_lists()) {
        for axis in [Axis::Descendant, Axis::Child] {
            let mut got = run_join(&ancs, &descs, JoinAlgo::StackTreeAnc, axis, batch_rows);
            got.sort();
            prop_assert_eq!(&got, &brute_force(&ancs, &descs, axis));
        }
    }

    #[test]
    fn desc_output_is_descendant_ordered((ancs, descs, batch_rows) in two_lists()) {
        let got = run_join(&ancs, &descs, JoinAlgo::StackTreeDesc, Axis::Descendant, batch_rows);
        prop_assert!(got.windows(2).all(|w| w[0].1.start <= w[1].1.start));
    }

    #[test]
    fn anc_output_is_ancestor_ordered((ancs, descs, batch_rows) in two_lists()) {
        let got = run_join(&ancs, &descs, JoinAlgo::StackTreeAnc, Axis::Descendant, batch_rows);
        prop_assert!(got.windows(2).all(|w| w[0].0.start <= w[1].0.start));
    }

    #[test]
    fn batch_granularity_is_invisible((ancs, descs, batch_rows) in two_lists()) {
        for algo in [JoinAlgo::StackTreeDesc, JoinAlgo::StackTreeAnc] {
            let narrow = run_join(&ancs, &descs, algo, Axis::Descendant, batch_rows);
            let wide = run_join(&ancs, &descs, algo, Axis::Descendant, BATCH_ROWS);
            prop_assert_eq!(&narrow, &wide);
        }
    }

    #[test]
    fn self_join_never_pairs_identity(regions in doc_strategy()) {
        let got = run_join(&regions, &regions, JoinAlgo::StackTreeDesc, Axis::Descendant, 3);
        prop_assert!(got.iter().all(|(a, d)| a != d));
    }
}
