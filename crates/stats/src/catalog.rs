//! Per-document statistics catalog.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use sjos_pattern::Axis;
use sjos_xml::{Document, Tag};

use crate::histogram::PositionalHistogram;

/// Process-wide monotonic source for catalog versions. Every build or
/// explicit bump draws a fresh value, so two catalogs (or two
/// generations of the same catalog) never share a version.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// FNV-1a over the catalog's summary statistics. Histogram cell
/// contents are summarized through cardinality/distinct/depth counts
/// plus grid geometry — enough to distinguish any two catalogs the
/// estimator would answer differently for at the granularity cached
/// plans care about, while staying O(tags).
fn fingerprint_stats(
    per_tag: &HashMap<Tag, TagStats>,
    all: &TagStats,
    grid: usize,
    max_pos: u32,
    total_elements: u64,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(grid as u64);
    mix(u64::from(max_pos));
    mix(total_elements);
    mix(all.cardinality);
    mix(all.distinct_values);
    mix(all.depth_levels);
    let mut tags: Vec<&Tag> = per_tag.keys().collect();
    tags.sort_by_key(|t| t.0);
    for tag in tags {
        let s = &per_tag[tag];
        mix(u64::from(tag.0));
        mix(s.cardinality);
        mix(s.distinct_values);
        mix(s.depth_levels);
    }
    h
}

/// Default grid resolution. The EDBT paper evaluates grids between
/// 10×10 and 100×100; 32×32 keeps estimation O(1 k) work per join
/// while staying well inside the accuracy band the optimizer needs.
pub const DEFAULT_GRID: usize = 32;

/// Statistics about one tag's element set.
#[derive(Debug, Clone)]
pub struct TagStats {
    /// Positional histogram of the tag's regions.
    pub histogram: PositionalHistogram,
    /// Exact cardinality.
    pub cardinality: u64,
    /// Number of distinct immediate-text values.
    pub distinct_values: u64,
    /// Number of distinct tree depths (region levels) at which the
    /// tag occurs. Because any two distinct ancestors of one node sit
    /// at distinct levels, this bounds how many same-tag ancestors a
    /// single element can have — the self-nesting factor the
    /// resource-bound analysis multiplies by (1 for non-recursive
    /// tags).
    pub depth_levels: u64,
}

/// Per-tag statistics for a document: what a real system would keep in
/// its system catalog and refresh on load.
#[derive(Debug, Clone)]
pub struct Catalog {
    per_tag: HashMap<Tag, TagStats>,
    /// Statistics over *every* element, used by wildcard (`*`)
    /// pattern nodes.
    all: TagStats,
    grid: usize,
    max_pos: u32,
    total_elements: u64,
    /// Monotonic generation counter; bumped on every rebuild or
    /// recalibration so consumers (plan caches) can detect staleness.
    version: u64,
    /// Content hash of the statistics themselves. Two catalogs built
    /// from the same document with the same grid agree on it even
    /// though their versions differ.
    fingerprint: u64,
}

impl Catalog {
    /// Build with the default grid.
    pub fn build(doc: &Document) -> Catalog {
        Self::build_with_grid(doc, DEFAULT_GRID)
    }

    /// Build with an explicit grid resolution.
    pub fn build_with_grid(doc: &Document, grid: usize) -> Catalog {
        let max_pos = doc.nodes().iter().map(|n| n.region.end).max().map_or(1, |m| m + 1);
        let mut per_tag = HashMap::new();
        for (tag, ids) in doc.tag_lists() {
            let mut hist = PositionalHistogram::new(grid, max_pos);
            let mut values: HashSet<&str> = HashSet::new();
            let mut levels: HashSet<u16> = HashSet::new();
            for &id in ids {
                hist.insert(doc.region(id));
                values.insert(doc.node(id).text.as_str());
                levels.insert(doc.region(id).level);
            }
            per_tag.insert(
                tag,
                TagStats {
                    histogram: hist,
                    cardinality: ids.len() as u64,
                    distinct_values: values.len() as u64,
                    depth_levels: levels.len() as u64,
                },
            );
        }
        let mut all_hist = PositionalHistogram::new(grid, max_pos);
        let mut all_values: HashSet<&str> = HashSet::new();
        let mut all_levels: HashSet<u16> = HashSet::new();
        for node in doc.nodes() {
            all_hist.insert(node.region);
            all_values.insert(node.text.as_str());
            all_levels.insert(node.region.level);
        }
        let all = TagStats {
            histogram: all_hist,
            cardinality: doc.len() as u64,
            distinct_values: all_values.len() as u64,
            depth_levels: all_levels.len() as u64,
        };
        let total_elements = doc.len() as u64;
        let fingerprint = fingerprint_stats(&per_tag, &all, grid, max_pos, total_elements);
        Catalog {
            per_tag,
            all,
            grid,
            max_pos,
            total_elements,
            version: fresh_version(),
            fingerprint,
        }
    }

    /// Monotonic catalog generation. Changes whenever the catalog is
    /// rebuilt or [`Catalog::bump_version`] is called; plan caches key
    /// on it so a stale plan can never be served.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Content hash of the statistics (FNV-1a over per-tag stats and
    /// grid geometry). Unlike [`Catalog::version`], it is stable
    /// across rebuilds from identical data.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Advance the version without rebuilding statistics. Called when
    /// something a cached plan depends on changes outside the catalog
    /// itself — e.g. cost-model recalibration.
    pub fn bump_version(&mut self) {
        self.version = fresh_version();
    }

    /// Grid resolution used by all histograms in this catalog.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Upper bound (exclusive) of the region-position space.
    pub fn max_pos(&self) -> u32 {
        self.max_pos
    }

    /// Total elements in the document.
    pub fn total_elements(&self) -> u64 {
        self.total_elements
    }

    /// Stats for one tag.
    pub fn tag_stats(&self, tag: Tag) -> Option<&TagStats> {
        self.per_tag.get(&tag)
    }

    /// Statistics over every element (what a wildcard node sees).
    pub fn all_stats(&self) -> &TagStats {
        &self.all
    }

    /// Wildcard-aware stats lookup by pattern tag name.
    pub fn stats_for_name<'c>(&'c self, doc: &Document, name: &str) -> Option<&'c TagStats> {
        if name == sjos_pattern::pattern::WILDCARD {
            Some(&self.all)
        } else {
            doc.tag(name).and_then(|t| self.per_tag.get(&t))
        }
    }

    /// Estimated joining pairs between two stats entries.
    pub fn pairs_between(a: &TagStats, d: &TagStats, axis: Axis) -> f64 {
        match axis {
            Axis::Descendant => a.histogram.estimate_ancestor_descendant_pairs(&d.histogram),
            Axis::Child => a.histogram.estimate_parent_child_pairs(&d.histogram),
        }
    }

    /// Cardinality of a tag (0 if absent).
    pub fn cardinality(&self, tag: Tag) -> u64 {
        self.per_tag.get(&tag).map_or(0, |s| s.cardinality)
    }

    /// Selectivity of an equality predicate on the tag's text value
    /// (`1 / distinct values`, the classic uniform assumption).
    pub fn equality_selectivity(&self, tag: Tag) -> f64 {
        match self.per_tag.get(&tag) {
            Some(s) if s.distinct_values > 0 => 1.0 / s.distinct_values as f64,
            _ => 0.0,
        }
    }

    /// Estimated number of joining pairs between `anc` and `desc`
    /// under the given axis.
    pub fn join_pairs(&self, anc: Tag, desc: Tag, axis: Axis) -> f64 {
        let (Some(a), Some(d)) = (self.per_tag.get(&anc), self.per_tag.get(&desc)) else {
            return 0.0;
        };
        match axis {
            Axis::Descendant => a.histogram.estimate_ancestor_descendant_pairs(&d.histogram),
            Axis::Child => a.histogram.estimate_parent_child_pairs(&d.histogram),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_xml::DocumentBuilder;

    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.start_element("db");
        for i in 0..10 {
            b.start_element("dept");
            b.leaf("name", if i % 2 == 0 { "even" } else { "odd" });
            for j in 0..3 {
                b.start_element("emp");
                b.leaf("name", &format!("e{}", (i * 3 + j) % 5));
                b.end_element();
            }
            b.end_element();
        }
        b.end_element();
        b.finish()
    }

    #[test]
    fn cardinalities_are_exact() {
        let d = doc();
        let c = Catalog::build(&d);
        assert_eq!(c.cardinality(d.tag("dept").unwrap()), 10);
        assert_eq!(c.cardinality(d.tag("emp").unwrap()), 30);
        assert_eq!(c.cardinality(d.tag("name").unwrap()), 40);
        assert_eq!(c.total_elements(), d.len() as u64);
    }

    #[test]
    fn unknown_tag_is_zero() {
        let d = doc();
        let c = Catalog::build(&d);
        assert_eq!(c.cardinality(sjos_xml::Tag(999)), 0);
        assert_eq!(c.join_pairs(sjos_xml::Tag(999), d.tag("emp").unwrap(), Axis::Descendant), 0.0);
    }

    #[test]
    fn equality_selectivity_uses_distinct_values() {
        let d = doc();
        let c = Catalog::build(&d);
        let name = d.tag("name").unwrap();
        // name values: even/odd + e0..e4 => 7 distinct.
        let sel = c.equality_selectivity(name);
        assert!((sel - 1.0 / 7.0).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn join_pairs_roughly_match_truth() {
        let d = doc();
        let c = Catalog::build_with_grid(&d, 64);
        let dept = d.tag("dept").unwrap();
        let emp = d.tag("emp").unwrap();
        let est = c.join_pairs(dept, emp, Axis::Descendant);
        // Exactly 30 (each emp under exactly one dept).
        assert!((est - 30.0).abs() < 10.0, "est {est}");
        let pc = c.join_pairs(dept, emp, Axis::Child);
        assert!((pc - 30.0).abs() < 12.0, "pc {pc}");
    }

    #[test]
    fn depth_levels_counts_distinct_region_levels() {
        let d = doc();
        let c = Catalog::build(&d);
        // db at level 0, dept at 1, emp at 2, name at 2 and 3.
        assert_eq!(c.tag_stats(d.tag("db").unwrap()).unwrap().depth_levels, 1);
        assert_eq!(c.tag_stats(d.tag("dept").unwrap()).unwrap().depth_levels, 1);
        assert_eq!(c.tag_stats(d.tag("name").unwrap()).unwrap().depth_levels, 2);
        assert_eq!(c.all_stats().depth_levels, 4, "four levels overall");
    }

    #[test]
    fn recursive_tags_span_multiple_levels() {
        let mut b = DocumentBuilder::new();
        b.start_element("m");
        b.start_element("m");
        b.start_element("m");
        b.end_element();
        b.end_element();
        b.end_element();
        let d = b.finish();
        let c = Catalog::build(&d);
        assert_eq!(c.tag_stats(d.tag("m").unwrap()).unwrap().depth_levels, 3);
    }

    #[test]
    fn versions_are_unique_but_fingerprints_track_content() {
        let d = doc();
        let a = Catalog::build(&d);
        let b = Catalog::build(&d);
        assert_ne!(a.version(), b.version(), "every build gets a fresh version");
        assert_eq!(a.fingerprint(), b.fingerprint(), "same data, same fingerprint");
        let coarse = Catalog::build_with_grid(&d, 8);
        assert_ne!(a.fingerprint(), coarse.fingerprint(), "grid change is visible");
    }

    #[test]
    fn bump_version_advances_monotonically_without_touching_content() {
        let d = doc();
        let mut c = Catalog::build(&d);
        let (v0, f0) = (c.version(), c.fingerprint());
        c.bump_version();
        assert!(c.version() > v0);
        assert_eq!(c.fingerprint(), f0);
    }

    #[test]
    fn axis_matters() {
        let d = doc();
        let c = Catalog::build_with_grid(&d, 64);
        let db = d.tag("db").unwrap();
        let name = d.tag("name").unwrap();
        let ad = c.join_pairs(db, name, Axis::Descendant);
        let pc = c.join_pairs(db, name, Axis::Child);
        assert!(ad > 30.0, "every name is under db: {ad}");
        assert!(pc < ad / 4.0, "no name is a direct child of db: {pc}");
    }
}
