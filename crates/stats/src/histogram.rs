//! 2-D positional histograms.
//!
//! Every element's region encoding places it at a point `(start, end)`
//! with `start < end`. A [`PositionalHistogram`] overlays a `g × g`
//! grid on that triangular plane and counts elements per cell. The key
//! property (from the EDBT 2002 paper): element `b` is a descendant of
//! element `a` iff `a.start < b.start && b.end < a.end`, i.e. `b`'s
//! point lies in the lower-right quadrant anchored at `a`'s point —
//! so the number of joining pairs is estimable from two histograms
//! alone, assuming uniformity inside cells.

use sjos_xml::Region;

/// Grid histogram over the `(start, end)` plane of one element set.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionalHistogram {
    grid: usize,
    /// Upper bound (exclusive) of the position space.
    max_pos: u32,
    /// Row-major `grid x grid` cell counts; cell `(i, j)` counts
    /// elements with `start` in bucket `i` and `end` in bucket `j`.
    cells: Vec<u64>,
    /// Total elements.
    count: u64,
    /// Element counts per tree level (index = level).
    levels: Vec<u64>,
}

impl PositionalHistogram {
    /// Empty histogram with `grid x grid` cells over positions
    /// `[0, max_pos)`.
    pub fn new(grid: usize, max_pos: u32) -> Self {
        assert!(grid > 0, "grid must be positive");
        assert!(max_pos > 0, "position space must be non-empty");
        PositionalHistogram {
            grid,
            max_pos,
            cells: vec![0; grid * grid],
            count: 0,
            levels: Vec::new(),
        }
    }

    /// Build from an iterator of regions.
    pub fn build(grid: usize, max_pos: u32, regions: impl IntoIterator<Item = Region>) -> Self {
        let mut h = Self::new(grid, max_pos);
        for r in regions {
            h.insert(r);
        }
        h
    }

    /// Record one element.
    pub fn insert(&mut self, r: Region) {
        let i = self.bucket(r.start);
        let j = self.bucket(r.end);
        self.cells[i * self.grid + j] += 1;
        self.count += 1;
        let lvl = r.level as usize;
        if self.levels.len() <= lvl {
            self.levels.resize(lvl + 1, 0);
        }
        self.levels[lvl] += 1;
    }

    #[inline]
    fn bucket(&self, pos: u32) -> usize {
        let b = (pos as u64 * self.grid as u64 / self.max_pos as u64) as usize;
        b.min(self.grid - 1)
    }

    /// Total elements recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Grid resolution.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Per-level element counts (index = level).
    pub fn level_counts(&self) -> &[u64] {
        &self.levels
    }

    /// Estimate the number of (ancestor, descendant) pairs between
    /// `self` (ancestors) and `desc` (descendants).
    ///
    /// Uniformity assumption: within a cell, `start` and `end` are
    /// independent and uniform, so for elements in the *same* start
    /// (resp. end) bucket the predicate `a.start < b.start` holds for
    /// half the pairs.
    ///
    /// # Panics
    /// Panics if the histograms have different grids or position
    /// spaces.
    pub fn estimate_ancestor_descendant_pairs(&self, desc: &PositionalHistogram) -> f64 {
        assert_eq!(self.grid, desc.grid, "grid mismatch");
        assert_eq!(self.max_pos, desc.max_pos, "position space mismatch");
        let g = self.grid;
        // For each ancestor cell (i, j) we need, over descendant cells
        // (k, l): weight 1 for k > i, 1/2 for k == i, 0 for k < i —
        // times the analogous weight on l vs j. Precompute suffix sums
        // of the descendant grid so each ancestor cell is O(1).
        //
        // strict[k][l] = sum of desc cells with start-bucket >= k and
        // end-bucket <= l.
        let mut suffix = vec![0f64; (g + 1) * (g + 1)];
        // suffix[(k, l)] with k in 0..=g, l in 0..=g (l is count of
        // end-buckets <= l-1): build from raw cells.
        // We'll use: S(k, l) = Σ_{k' >= k, l' < l} desc.cells[k'][l'].
        for k in (0..g).rev() {
            for l in 1..=g {
                let cell = desc.cells[k * g + (l - 1)] as f64;
                suffix[k * (g + 1) + l] =
                    cell + suffix[(k + 1) * (g + 1) + l] + suffix[k * (g + 1) + (l - 1)]
                        - suffix[(k + 1) * (g + 1) + (l - 1)];
            }
        }
        let s = |k: usize, l: usize| -> f64 { suffix[k * (g + 1) + l] };
        let mut total = 0f64;
        for i in 0..g {
            for j in 0..g {
                let na = self.cells[i * g + j] as f64;
                if na == 0.0 {
                    continue;
                }
                // Descendants with start-bucket > i and end-bucket < j.
                let strict = s(i + 1, j);
                // Same start bucket (k == i), end-bucket < j: half.
                let same_start = s(i, j) - s(i + 1, j);
                // Same end bucket (l == j), start-bucket > i: half.
                let same_end = s(i + 1, j + 1) - s(i + 1, j);
                // Both equal: quarter.
                let both = (s(i, j + 1) - s(i + 1, j + 1)) - (s(i, j) - s(i + 1, j));
                total += na * (strict + 0.5 * same_start + 0.5 * same_end + 0.25 * both);
            }
        }
        total
    }

    /// Estimate the number of (parent, child) pairs between `self`
    /// (parents) and `child` (children).
    ///
    /// Positional histograms alone cannot see levels, so we scale the
    /// ancestor-descendant estimate by the fraction of level-compatible
    /// combinations: among (ancestor level `la`, descendant level `ld >
    /// la`) combinations weighted by the level histograms, the weight
    /// of `ld == la + 1`. (The EDBT paper's "coverage" refinement
    /// plays the same role; this level-histogram variant is our
    /// substitution, documented in DESIGN.md.)
    pub fn estimate_parent_child_pairs(&self, child: &PositionalHistogram) -> f64 {
        let ad = self.estimate_ancestor_descendant_pairs(child);
        if ad == 0.0 {
            return 0.0;
        }
        let mut compatible = 0f64;
        let mut adjacent = 0f64;
        for (la, &ca) in self.levels.iter().enumerate() {
            if ca == 0 {
                continue;
            }
            for (ld, &cd) in child.levels.iter().enumerate() {
                if cd == 0 || ld <= la {
                    continue;
                }
                let w = ca as f64 * cd as f64;
                compatible += w;
                if ld == la + 1 {
                    adjacent += w;
                }
            }
        }
        if compatible == 0.0 {
            return 0.0;
        }
        ad * (adjacent / compatible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_xml::Document;

    /// Build per-tag histograms for a document.
    fn histograms(doc: &Document, grid: usize) -> impl Fn(&str) -> PositionalHistogram + '_ {
        let max_pos = doc.nodes().iter().map(|n| n.region.end).max().unwrap() + 1;
        move |tag: &str| {
            let t = doc.tag(tag).unwrap();
            PositionalHistogram::build(
                grid,
                max_pos,
                doc.elements_with_tag(t).iter().map(|&id| doc.region(id)),
            )
        }
    }

    /// Exact ancestor-descendant pair count by brute force.
    fn exact_ad(doc: &Document, a: &str, d: &str) -> u64 {
        let ta = doc.tag(a).unwrap();
        let td = doc.tag(d).unwrap();
        let mut n = 0;
        for &x in doc.elements_with_tag(ta) {
            for &y in doc.elements_with_tag(td) {
                if doc.region(x).contains(doc.region(y)) {
                    n += 1;
                }
            }
        }
        n
    }

    fn exact_pc(doc: &Document, a: &str, d: &str) -> u64 {
        let ta = doc.tag(a).unwrap();
        let td = doc.tag(d).unwrap();
        let mut n = 0;
        for &x in doc.elements_with_tag(ta) {
            for &y in doc.elements_with_tag(td) {
                if doc.region(x).is_parent_of(doc.region(y)) {
                    n += 1;
                }
            }
        }
        n
    }

    /// A nested test document: depts containing emps containing names.
    fn sample_doc() -> Document {
        let mut b = sjos_xml::DocumentBuilder::new();
        b.start_element("root");
        for d in 0..8 {
            b.start_element("dept");
            for e in 0..(d % 4 + 1) {
                b.start_element("emp");
                for _ in 0..(e % 3 + 1) {
                    b.leaf("name", "x");
                }
                b.end_element();
            }
            b.end_element();
        }
        b.end_element();
        b.finish()
    }

    #[test]
    fn counts_and_levels_recorded() {
        let doc = sample_doc();
        let h = histograms(&doc, 8)("emp");
        let emp = doc.tag("emp").unwrap();
        assert_eq!(h.count(), doc.elements_with_tag(emp).len() as u64);
        assert_eq!(h.level_counts().iter().sum::<u64>(), h.count());
        // All emps are at level 2.
        assert_eq!(h.level_counts()[2], h.count());
    }

    #[test]
    fn fine_grid_estimate_is_near_exact() {
        let doc = sample_doc();
        let mk = histograms(&doc, 64);
        let est = mk("dept").estimate_ancestor_descendant_pairs(&mk("name"));
        let exact = exact_ad(&doc, "dept", "name") as f64;
        assert!((est - exact).abs() <= exact * 0.25 + 2.0, "est {est} vs exact {exact}");
    }

    #[test]
    fn coarse_grid_is_still_sane() {
        let doc = sample_doc();
        let mk = histograms(&doc, 4);
        let est = mk("dept").estimate_ancestor_descendant_pairs(&mk("emp"));
        let exact = exact_ad(&doc, "dept", "emp") as f64;
        assert!(est > 0.0);
        assert!(est < exact * 4.0 + 8.0, "est {est} vs exact {exact}");
    }

    #[test]
    fn disjoint_tags_estimate_near_zero() {
        // Two sibling subtrees with distinct tags: no containment.
        let mut b = sjos_xml::DocumentBuilder::new();
        b.start_element("root");
        b.start_element("left");
        for _ in 0..10 {
            b.leaf("a", "");
        }
        b.end_element();
        b.start_element("right");
        for _ in 0..10 {
            b.leaf("b", "");
        }
        b.end_element();
        b.end_element();
        let doc = b.finish();
        let mk = histograms(&doc, 32);
        let est = mk("a").estimate_ancestor_descendant_pairs(&mk("b"));
        assert!(est < 1.0, "est {est}");
    }

    #[test]
    fn reversed_roles_estimate_near_zero() {
        let doc = sample_doc();
        let mk = histograms(&doc, 32);
        // names contain no depts.
        let est = mk("name").estimate_ancestor_descendant_pairs(&mk("dept"));
        let exact = exact_ad(&doc, "name", "dept") as f64;
        assert_eq!(exact, 0.0);
        assert!(est < 2.0, "est {est}");
    }

    #[test]
    fn parent_child_scales_down_from_ancestor_descendant() {
        let doc = sample_doc();
        let mk = histograms(&doc, 64);
        let ad = mk("root").estimate_ancestor_descendant_pairs(&mk("name"));
        let pc = mk("root").estimate_parent_child_pairs(&mk("name"));
        // root is never a parent of name (names are at level 3).
        assert_eq!(exact_pc(&doc, "root", "name"), 0);
        assert_eq!(pc, 0.0);
        assert!(ad > 0.0);
    }

    #[test]
    fn parent_child_estimate_matches_when_all_adjacent() {
        let doc = sample_doc();
        let mk = histograms(&doc, 64);
        // Every emp under a dept is a direct child in this document.
        let pc = mk("dept").estimate_parent_child_pairs(&mk("emp"));
        let exact = exact_pc(&doc, "dept", "emp") as f64;
        assert!((pc - exact).abs() <= exact * 0.3 + 2.0, "pc {pc} vs exact {exact}");
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn mismatched_grids_panic() {
        let a = PositionalHistogram::new(4, 100);
        let b = PositionalHistogram::new(8, 100);
        let _ = a.estimate_ancestor_descendant_pairs(&b);
    }

    #[test]
    fn empty_histograms_estimate_zero() {
        let a = PositionalHistogram::new(8, 100);
        let b = PositionalHistogram::new(8, 100);
        assert_eq!(a.estimate_ancestor_descendant_pairs(&b), 0.0);
        assert_eq!(a.estimate_parent_child_pairs(&b), 0.0);
    }
}
