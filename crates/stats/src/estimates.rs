//! Pattern-level estimates consumed by the optimizer.

use sjos_pattern::{NodeSet, Pattern, PnId, ValuePredicate};
use sjos_xml::Document;

use crate::catalog::Catalog;

/// Pre-computed cardinality estimates for one pattern against one
/// document: per-node binding-list sizes (with value-predicate
/// selectivity applied) and per-edge join selectivities. Cluster
/// estimates are then pure arithmetic, cheap enough for the optimizer
/// to call thousands of times.
#[derive(Debug, Clone)]
pub struct PatternEstimates {
    /// Estimated binding-list cardinality per pattern node.
    node_card: Vec<f64>,
    /// Raw index-list cardinality per pattern node (before value
    /// predicates) — what an index scan actually reads.
    scan_card: Vec<f64>,
    /// Selectivity per pattern edge (same order as `pattern.edges()`):
    /// `pairs(u, v) / (|u| * |v|)`.
    edge_sel: Vec<f64>,
    /// Guaranteed lower bound on each node's binding-list size: the
    /// exact index-list cardinality for predicate-free nodes, 0 when a
    /// value predicate may filter arbitrarily.
    node_lo: Vec<u64>,
    /// Guaranteed upper bound on each node's binding-list size: the
    /// exact index-list cardinality (a predicate can only shrink it).
    node_hi: Vec<u64>,
    /// Distinct tree depths at which each node's tag occurs (see
    /// [`crate::TagStats::depth_levels`]); bounds per-node self-nesting
    /// in the resource-bound analysis.
    node_depth_levels: Vec<u64>,
}

impl PatternEstimates {
    /// Estimate `pattern` against `catalog` (tags resolved through
    /// `doc`'s interner; a tag absent from the document estimates to
    /// zero).
    pub fn new(catalog: &Catalog, doc: &Document, pattern: &Pattern) -> PatternEstimates {
        let mut node_card = Vec::with_capacity(pattern.len());
        let mut scan_card = Vec::with_capacity(pattern.len());
        let mut node_lo = Vec::with_capacity(pattern.len());
        let mut node_hi = Vec::with_capacity(pattern.len());
        let mut node_depth_levels = Vec::with_capacity(pattern.len());
        for id in pattern.node_ids() {
            let pnode = pattern.node(id);
            let (raw_exact, levels, with_pred) = match catalog.stats_for_name(doc, &pnode.tag) {
                Some(stats) => {
                    let raw = stats.cardinality as f64;
                    let sel = match &pnode.predicate {
                        Some(ValuePredicate::Equals(_)) if stats.distinct_values > 0 => {
                            1.0 / stats.distinct_values as f64
                        }
                        Some(ValuePredicate::Equals(_)) => 0.0,
                        None => 1.0,
                    };
                    (stats.cardinality, stats.depth_levels, raw * sel)
                }
                None => (0, 0, 0.0),
            };
            scan_card.push(raw_exact as f64);
            node_card.push(with_pred);
            node_lo.push(if pnode.predicate.is_none() { raw_exact } else { 0 });
            node_hi.push(raw_exact);
            node_depth_levels.push(levels);
        }
        let mut edge_sel = Vec::with_capacity(pattern.edge_count());
        for edge in pattern.edges() {
            let (ps, cs) = (
                catalog.stats_for_name(doc, &pattern.node(edge.parent).tag),
                catalog.stats_for_name(doc, &pattern.node(edge.child).tag),
            );
            let sel = match (ps, cs) {
                (Some(a), Some(d)) => {
                    let pairs = Catalog::pairs_between(a, d, edge.axis);
                    let denom = a.cardinality as f64 * d.cardinality as f64;
                    if denom > 0.0 {
                        (pairs / denom).clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                }
                _ => 0.0,
            };
            edge_sel.push(sel);
        }
        PatternEstimates { node_card, scan_card, edge_sel, node_lo, node_hi, node_depth_levels }
    }

    /// Estimated binding-list size of one pattern node (value
    /// predicates applied).
    pub fn node_cardinality(&self, id: PnId) -> f64 {
        self.node_card[id.index()]
    }

    /// Raw index-scan size of one pattern node (no predicates).
    pub fn scan_cardinality(&self, id: PnId) -> f64 {
        self.scan_card[id.index()]
    }

    /// Selectivity of the pattern edge at `edge_idx` (order of
    /// `Pattern::edges`).
    pub fn edge_selectivity(&self, edge_idx: usize) -> f64 {
        self.edge_sel[edge_idx]
    }

    /// Guaranteed `[lo, hi]` bounds on one node's binding-list size.
    /// Unlike [`Self::node_cardinality`] these are *sound*: the true
    /// binding-list size always lies inside the interval (`hi` is the
    /// exact index-list length; `lo` drops to 0 when a value predicate
    /// may filter rows).
    pub fn node_bounds(&self, id: PnId) -> (u64, u64) {
        (self.node_lo[id.index()], self.node_hi[id.index()])
    }

    /// Distinct tree depths at which one node's tag occurs. Any two
    /// distinct ancestors of a single element sit at distinct levels,
    /// so this bounds how many bindings of this node can be ancestors
    /// of one fixed element (1 for non-recursive tags).
    pub fn node_depth_levels(&self, id: PnId) -> u64 {
        self.node_depth_levels[id.index()]
    }

    /// Estimated size of the intermediate result binding all nodes of
    /// `cluster` (which must induce a connected subtree): the classic
    /// independence estimate `Π node_card × Π edge_sel` over the
    /// cluster's nodes and internal edges.
    pub fn cluster_cardinality(&self, pattern: &Pattern, cluster: NodeSet) -> f64 {
        debug_assert!(pattern.is_connected(cluster), "cluster must be connected");
        let mut est = 1.0;
        let mut any = false;
        for id in cluster.iter() {
            est *= self.node_card[id.index()];
            any = true;
        }
        if !any {
            return 0.0;
        }
        for (i, edge) in pattern.edges().iter().enumerate() {
            if cluster.contains(edge.parent) && cluster.contains(edge.child) {
                est *= self.edge_sel[i];
            }
        }
        est
    }

    /// Estimated size of joining two clusters along `edge_idx` — the
    /// output cardinality a move in the optimizer's search produces.
    pub fn join_cardinality(
        &self,
        pattern: &Pattern,
        left: NodeSet,
        right: NodeSet,
        edge_idx: usize,
    ) -> f64 {
        debug_assert!(left.is_disjoint(right));
        let merged = left.union(right);
        let _ = edge_idx;
        self.cluster_cardinality(pattern, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_pattern::parse_pattern;
    use sjos_xml::DocumentBuilder;

    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.start_element("db");
        for i in 0..20 {
            b.start_element("dept");
            for j in 0..4 {
                b.start_element("emp");
                b.leaf("name", &format!("n{}", (i + j) % 10));
                b.end_element();
            }
            b.end_element();
        }
        b.end_element();
        b.finish()
    }

    fn estimates(pattern: &str) -> (Document, Pattern, PatternEstimates) {
        let d = doc();
        let p = parse_pattern(pattern).unwrap();
        let c = Catalog::build_with_grid(&d, 64);
        let e = PatternEstimates::new(&c, &d, &p);
        (d, p, e)
    }

    #[test]
    fn node_cardinalities_match_tag_counts() {
        let (_, p, e) = estimates("//dept/emp/name");
        assert_eq!(e.node_cardinality(p.root()), 20.0);
        assert_eq!(e.node_cardinality(PnId(1)), 80.0);
        assert_eq!(e.node_cardinality(PnId(2)), 80.0);
    }

    #[test]
    fn value_predicate_scales_node_cardinality() {
        let (_, _p, e) = estimates("//emp/name[text()='n3']");
        // 10 distinct name values.
        assert!((e.node_cardinality(PnId(1)) - 8.0).abs() < 1e-6);
        assert_eq!(e.scan_cardinality(PnId(1)), 80.0, "scan reads the whole list");
    }

    #[test]
    fn missing_tag_estimates_zero() {
        let (_doc, p, e) = estimates("//dept/ghost");
        assert_eq!(e.node_cardinality(PnId(1)), 0.0);
        assert_eq!(e.cluster_cardinality(&p, p.all_nodes()), 0.0);
    }

    #[test]
    fn singleton_cluster_is_node_cardinality() {
        let (_, p, e) = estimates("//dept/emp");
        let c = e.cluster_cardinality(&p, NodeSet::singleton(p.root()));
        assert_eq!(c, e.node_cardinality(p.root()));
    }

    #[test]
    fn full_cluster_estimate_tracks_truth() {
        let (_, p, e) = estimates("//dept/emp/name");
        // True match count: every emp has exactly 1 name, every emp in
        // exactly 1 dept => 80 matches.
        let est = e.cluster_cardinality(&p, p.all_nodes());
        assert!(est > 20.0 && est < 320.0, "est {est}");
    }

    #[test]
    fn join_cardinality_equals_merged_cluster() {
        let (_, p, e) = estimates("//dept/emp/name");
        let left = NodeSet::singleton(PnId(0));
        let right = NodeSet::singleton(PnId(1));
        let j = e.join_cardinality(&p, left, right, 0);
        let c = e.cluster_cardinality(&p, left.union(right));
        assert_eq!(j, c);
    }

    #[test]
    fn node_bounds_bracket_the_point_estimate() {
        let (_, p, e) = estimates("//emp/name[text()='n3']");
        for id in p.node_ids() {
            let (lo, hi) = e.node_bounds(id);
            let point = e.node_cardinality(id);
            assert!(lo as f64 <= point && point <= hi as f64, "{id:?}: [{lo},{hi}] ∌ {point}");
        }
        // The predicate node is uncertain, the predicate-free node exact.
        assert_eq!(e.node_bounds(PnId(1)), (0, 80));
        assert_eq!(e.node_bounds(PnId(0)), (80, 80));
    }

    #[test]
    fn depth_levels_reach_the_estimates() {
        let (_, _p, e) = estimates("//dept/emp/name");
        assert_eq!(e.node_depth_levels(PnId(0)), 1, "dept occurs at one level");
        assert_eq!(e.node_depth_levels(PnId(2)), 1, "name occurs at one level");
    }

    #[test]
    fn edge_selectivities_are_probabilities() {
        let (_, _, e) = estimates("//dept/emp/name");
        for i in 0..2 {
            let s = e.edge_selectivity(i);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }
}
