//! # sjos-stats
//!
//! Cardinality estimation for structural joins, built on the
//! **positional histograms** of Wu, Patel & Jagadish (EDBT 2002) — the
//! estimator the SJOS paper says it used ("All estimates for the join
//! results were made using positional histograms").
//!
//! * [`PositionalHistogram`]: a 2-D grid over the `(start, end)`
//!   region-encoding plane of one tag's elements, answering
//!   "how many ancestor-descendant pairs do tags A and B form?" in
//!   O(grid²) independent of data size.
//! * [`Catalog`]: per-tag histograms + level histograms + distinct
//!   value counts for a whole document.
//! * [`PatternEstimates`]: per-pattern-node cardinalities and
//!   per-edge selectivities, combined into intermediate-result size
//!   estimates for any connected cluster of pattern nodes (what the
//!   optimizer's statuses need).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod estimates;
pub mod histogram;

pub use catalog::{Catalog, TagStats};
pub use estimates::PatternEstimates;
pub use histogram::PositionalHistogram;
