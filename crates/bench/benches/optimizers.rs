//! Micro-benchmarks of the five optimization algorithms (pure search
//! time, estimates precomputed) on the paper's four pattern shapes —
//! the "Opt." column of Table 1 in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sjos_core::{optimize, Algorithm, CostModel};
use sjos_datagen::{paper_queries, pers::pers, DataSet, GenConfig};
use sjos_stats::{Catalog, PatternEstimates};

fn bench_algorithms(c: &mut Criterion) {
    let doc = pers(GenConfig::sized(5_000));
    let catalog = Catalog::build(&doc);
    let model = CostModel::default();
    let mut group = c.benchmark_group("optimize");
    for q in paper_queries().into_iter().filter(|q| q.dataset == DataSet::Pers) {
        let pattern = q.pattern();
        let est = PatternEstimates::new(&catalog, &doc, &pattern);
        for alg in [
            Algorithm::Dp,
            Algorithm::Dpp { lookahead: false },
            Algorithm::Dpp { lookahead: true },
            Algorithm::DpapEb { te: pattern.edge_count() },
            Algorithm::DpapLd,
            Algorithm::Fp,
        ] {
            group.bench_with_input(
                BenchmarkId::new(alg.name().replace([' ', '\''], "_"), q.id),
                &pattern,
                |b, pattern| {
                    b.iter(|| optimize(pattern, &est, &model, alg).unwrap().estimated_cost);
                },
            );
        }
    }
    group.finish();
}

fn bench_estimate_construction(c: &mut Criterion) {
    // Per-query estimator setup (histogram probing): the fixed
    // optimization overhead every algorithm shares.
    let doc = pers(GenConfig::sized(5_000));
    let catalog = Catalog::build(&doc);
    let pattern = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap().pattern();
    c.bench_function("pattern_estimates_build", |b| {
        b.iter(|| PatternEstimates::new(&catalog, &doc, &pattern));
    });
}

fn bench_catalog_build(c: &mut Criterion) {
    // Statistics collection at load time (not on the query path).
    let doc = pers(GenConfig::sized(20_000));
    let mut group = c.benchmark_group("catalog_build");
    group.sample_size(20);
    group.bench_function("pers_20k", |b| b.iter(|| Catalog::build(&doc)));
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_estimate_construction, bench_catalog_build);
criterion_main!(benches);
