//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the DPP **Lookahead Rule** on/off (the paper's DPP vs DPP'),
//! * the **ubCost** priority term on/off (Expanding Rule vs plain
//!   uniform-cost order),
//! * the **Stack-Tree-Desc cost formula**: paper-literal vs
//!   calibrated (see `sjos_core::cost::DescCostVariant`).

use criterion::{criterion_group, criterion_main, Criterion};

use sjos_core::dpp::{optimize_dpp, DppConfig};
use sjos_core::status::SearchContext;
use sjos_core::CostModel;
use sjos_datagen::{paper_queries, pers::pers, GenConfig};
use sjos_stats::{Catalog, PatternEstimates};

fn fixture() -> (sjos_pattern::Pattern, PatternEstimates) {
    let doc = pers(GenConfig::sized(5_000));
    let catalog = Catalog::build(&doc);
    let pattern = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap().pattern();
    let est = PatternEstimates::new(&catalog, &doc, &pattern);
    (pattern, est)
}

fn bench_lookahead(c: &mut Criterion) {
    let (pattern, est) = fixture();
    let model = CostModel::default();
    let mut group = c.benchmark_group("ablation_lookahead");
    for (label, lookahead) in [("with_lookahead", true), ("without_lookahead", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ctx = SearchContext::new(&pattern, &est, &model);
                optimize_dpp(&mut ctx, DppConfig { lookahead, ..DppConfig::default() }).unwrap().1
            });
        });
    }
    group.finish();
}

fn bench_ub_cost(c: &mut Criterion) {
    let (pattern, est) = fixture();
    let model = CostModel::default();
    let mut group = c.benchmark_group("ablation_ub_cost");
    for (label, use_ub_cost) in [("with_ub", true), ("without_ub", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ctx = SearchContext::new(&pattern, &est, &model);
                optimize_dpp(&mut ctx, DppConfig { use_ub_cost, ..DppConfig::default() }).unwrap().1
            });
        });
    }
    group.finish();
}

fn bench_cost_model_variant(c: &mut Criterion) {
    let (pattern, est) = fixture();
    let mut group = c.benchmark_group("ablation_desc_cost_formula");
    for (label, model) in
        [("calibrated", CostModel::default()), ("paper_literal", CostModel::paper_literal())]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ctx = SearchContext::new(&pattern, &est, &model);
                optimize_dpp(&mut ctx, DppConfig::default()).unwrap().1
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookahead, bench_ub_cost, bench_cost_model_variant);
criterion_main!(benches);
