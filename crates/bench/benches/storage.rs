//! Storage-layer micro-benchmarks: parsing, loading, index scans and
//! buffer-pool behavior under different pool sizes — the substrate
//! whose linear index-access cost (`f_I · n`) the cost model assumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sjos_datagen::{pers::pers, GenConfig};
use sjos_storage::{StoreConfig, XmlStore, PAGE_SIZE};
use sjos_xml::Document;

fn bench_parse(c: &mut Criterion) {
    let doc = pers(GenConfig::sized(20_000));
    let text = sjos_xml::serialize::to_xml(&doc);
    let mut group = c.benchmark_group("xml_parse");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(20);
    group.bench_function("pers_20k", |b| b.iter(|| Document::parse(&text).unwrap().len()));
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let doc = pers(GenConfig::sized(20_000));
    let mut group = c.benchmark_group("store_load");
    group.sample_size(20);
    group.bench_function("pers_20k", |b| b.iter(|| XmlStore::load(doc.clone()).total_pages()));
    group.finish();
}

fn bench_index_scan(c: &mut Criterion) {
    let doc = pers(GenConfig::sized(50_000));
    let mut group = c.benchmark_group("index_scan");
    for pool_pages in [4usize, 64, 2048] {
        let store = XmlStore::load_with(
            doc.clone(),
            StoreConfig { buffer_pool_bytes: pool_pages * PAGE_SIZE, ..StoreConfig::default() },
        );
        let tag = store.document().tag("employee").unwrap();
        let n = store.tag_cardinality(tag);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(
            BenchmarkId::new("employee", format!("{pool_pages}p")),
            &store,
            |b, store| b.iter(|| store.scan_tag(tag).count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_load, bench_index_scan);
criterion_main!(benches);
