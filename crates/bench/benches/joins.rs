//! Micro-benchmarks of the structural join operators: Stack-Tree-Desc
//! vs Stack-Tree-Anc across input sizes, and the sort operator they
//! compete against — the primitives whose relative costs the paper's
//! cost model (§2.2.2) prices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sjos_core::Algorithm;
use sjos_datagen::{pers::pers, GenConfig};
use sjos_exec::{execute, JoinAlgo, PlanNode};
use sjos_pattern::{parse_pattern, PnId};
use sjos_storage::XmlStore;

fn store_of(nodes: usize) -> XmlStore {
    XmlStore::load(pers(GenConfig::sized(nodes)))
}

fn all_algorithms() -> [(&'static str, JoinAlgo); 3] {
    [
        ("desc", JoinAlgo::StackTreeDesc),
        ("anc", JoinAlgo::StackTreeAnc),
        ("mpmgjn", JoinAlgo::MergeJoin),
    ]
}

fn join_plan(algo: JoinAlgo) -> PlanNode {
    PlanNode::StructuralJoin {
        left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
        right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
        anc: PnId(0),
        desc: PnId(1),
        axis: sjos_pattern::Axis::Descendant,
        algo,
    }
}

fn bench_stack_tree(c: &mut Criterion) {
    let pattern = parse_pattern("//manager//employee").unwrap();
    let mut group = c.benchmark_group("stack_tree_join");
    for nodes in [2_000usize, 10_000, 50_000] {
        let store = store_of(nodes);
        group.throughput(Throughput::Elements(nodes as u64));
        for (label, algo) in all_algorithms() {
            let plan = join_plan(algo);
            group.bench_with_input(BenchmarkId::new(label, nodes), &store, |b, store| {
                b.iter(|| execute(store, &pattern, &plan).unwrap().len());
            });
        }
    }
    group.finish();
}

fn bench_sort_vs_pipelined(c: &mut Criterion) {
    // The same 2-way join, consumed either pipelined or through an
    // explicit sort — the choice at the heart of blocking vs FP plans.
    let pattern = parse_pattern("//manager//employee").unwrap();
    let store = store_of(20_000);
    let pipelined = join_plan(JoinAlgo::StackTreeDesc);
    let sorted =
        PlanNode::Sort { input: Box::new(join_plan(JoinAlgo::StackTreeDesc)), by: PnId(0) };
    let mut group = c.benchmark_group("pipelined_vs_sorted");
    group.bench_function("pipelined", |b| {
        b.iter(|| execute(&store, &pattern, &pipelined).unwrap().len());
    });
    group.bench_function("with_sort", |b| {
        b.iter(|| execute(&store, &pattern, &sorted).unwrap().len());
    });
    group.finish();
}

fn bench_full_query(c: &mut Criterion) {
    // End-to-end Q.Pers.3.d with the optimal and the worst random
    // plan — the headline gap of Table 1.
    let store = store_of(10_000);
    let catalog = sjos_stats::Catalog::build(store.document());
    let pattern = parse_pattern("//manager[.//employee/name][.//manager/department/name]").unwrap();
    let est = sjos_stats::PatternEstimates::new(&catalog, store.document(), &pattern);
    let model = sjos_core::CostModel::default();
    let good =
        sjos_core::optimize(&pattern, &est, &model, Algorithm::Dpp { lookahead: true }).unwrap();
    let bad = sjos_core::optimize(
        &pattern,
        &est,
        &model,
        Algorithm::WorstRandom { samples: 64, seed: 2003 },
    )
    .unwrap();
    let mut group = c.benchmark_group("q_pers_3d_execution");
    group.sample_size(10);
    group.bench_function("optimal_plan", |b| {
        b.iter(|| execute(&store, &pattern, &good.plan).unwrap().len());
    });
    group.bench_function("bad_plan", |b| {
        b.iter(|| execute(&store, &pattern, &bad.plan).unwrap().len());
    });
    group.finish();
}

fn bench_holistic_vs_binary(c: &mut Criterion) {
    // Binary structural-join plan (the paper's subject) vs the
    // holistic twig join (its cited future-work alternative) on the
    // same twig query.
    let store = store_of(10_000);
    let catalog = sjos_stats::Catalog::build(store.document());
    let pattern = parse_pattern("//manager[.//employee/name][.//manager/department/name]").unwrap();
    let est = sjos_stats::PatternEstimates::new(&catalog, store.document(), &pattern);
    let model = sjos_core::CostModel::default();
    let plan = sjos_core::optimize(&pattern, &est, &model, Algorithm::Dpp { lookahead: true })
        .unwrap()
        .plan;
    let mut group = c.benchmark_group("holistic_vs_binary");
    group.sample_size(10);
    group.bench_function("binary_optimal", |b| {
        b.iter(|| sjos_exec::execute_counting(&store, &pattern, &plan).unwrap().len());
    });
    group.bench_function("twigstack", |b| {
        b.iter(|| sjos_exec::holistic::evaluate(&store, &pattern).unwrap().rows.len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stack_tree,
    bench_sort_vs_pipelined,
    bench_full_query,
    bench_holistic_vs_binary
);
criterion_main!(benches);
