//! # sjos-bench
//!
//! Harness utilities shared by the table/figure binaries that
//! regenerate the paper's evaluation (§4):
//!
//! | binary  | reproduces |
//! |---------|-----------|
//! | `table1`| Table 1 — optimization + plan-evaluation times, 8 queries × 5 algorithms + bad plan |
//! | `table2`| Table 2 — optimization time and # plans considered for Q.Pers.3.d |
//! | `table3`| Table 3 — plan execution time vs folding factor (×1/×10/×100/×500) |
//! | `fig7`  | Figure 7 — DPAP-EB `T_e` sweep at folding ×100 |
//! | `fig8`  | Figure 8 — DPAP-EB `T_e` sweep at folding ×1 |
//!
//! Scale control: by default the corpora are generated at reduced
//! sizes so the full suite finishes in minutes; set `SJOS_BENCH_FULL=1`
//! for the paper's node counts (Mbench 740 K, DBLP 500 K, Pers 5 K)
//! and the ×500 folding point.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sjos_core::{optimize, Algorithm, CostModel, OptimizedPlan};
use sjos_datagen::{dblp::dblp, fold_document, mbench::mbench, pers::pers};
use sjos_datagen::{paper_sizes, DataSet, GenConfig, Workload};
use sjos_exec::{execute, QueryResult};
use sjos_pattern::Pattern;
use sjos_stats::{Catalog, PatternEstimates};
use sjos_storage::XmlStore;
use sjos_xml::Document;

/// Whether the harness runs at the paper's full data sizes.
pub fn full_scale() -> bool {
    std::env::var("SJOS_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// Node-count target for one data set at the current scale.
pub fn dataset_size(ds: DataSet) -> usize {
    let full = full_scale();
    match ds {
        DataSet::Mbench => {
            if full {
                paper_sizes::MBENCH
            } else {
                60_000
            }
        }
        DataSet::Dblp => {
            if full {
                paper_sizes::DBLP
            } else {
                60_000
            }
        }
        // Pers is tiny in the paper already.
        DataSet::Pers => paper_sizes::PERS,
    }
}

/// Generate one corpus at the current scale.
pub fn generate(ds: DataSet) -> Document {
    let config = GenConfig::sized(dataset_size(ds));
    match ds {
        DataSet::Mbench => mbench(config),
        DataSet::Dblp => dblp(config),
        DataSet::Pers => pers(config),
    }
}

/// The corpus file a bench binary was pointed at, if any.
///
/// Binaries default to generating the paper's corpora in memory, but
/// an operator can aim them at an on-disk document with `--xml <path>`
/// (or the `SJOS_BENCH_XML` environment variable; the flag wins). The
/// file is read and parsed eagerly here so a missing, unreadable, or
/// malformed file comes back as a clean `Err` the binary can print
/// and turn into a nonzero exit — never a panic halfway through a
/// benchmark run.
pub fn corpus_override() -> Result<Option<Document>, String> {
    let mut path = std::env::var("SJOS_BENCH_XML").ok().filter(|p| !p.is_empty());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--xml" => {
                path = Some(args.next().ok_or("--xml requires a file path")?);
            }
            // Parsed by `threads_override`; skip the value here.
            "--threads" => {
                args.next().ok_or("--threads requires a worker count")?;
            }
            other => {
                return Err(format!(
                    "unrecognized argument `{other}` (only --xml <file> and \
                     --threads <n> are accepted)"
                ));
            }
        }
    }
    let Some(path) = path else { return Ok(None) };
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read corpus {path}: {e}"))?;
    let doc = Document::parse(&text).map_err(|e| format!("corrupt corpus {path}: {e}"))?;
    Ok(Some(doc))
}

/// The worker-thread count a bench binary was pointed at, if any:
/// `--threads <n>` on the command line or the `SJOS_BENCH_THREADS`
/// environment variable (the flag wins). `Ok(None)` means the binary
/// should use its default (serial execution).
pub fn threads_override() -> Result<Option<usize>, String> {
    let mut threads = match std::env::var("SJOS_BENCH_THREADS").ok().filter(|v| !v.is_empty()) {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("SJOS_BENCH_THREADS must be a positive integer, got `{v}`"))?,
        ),
        None => None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let v = args.next().ok_or("--threads requires a worker count")?;
            threads = Some(
                v.parse::<usize>()
                    .map_err(|_| format!("--threads must be a positive integer, got `{v}`"))?,
            );
        }
    }
    if threads == Some(0) {
        return Err("thread count must be at least 1".into());
    }
    Ok(threads)
}

/// A loaded corpus ready for measurement.
pub struct Bench {
    store: XmlStore,
    catalog: Catalog,
    model: CostModel,
}

impl Bench {
    /// Load a document.
    pub fn load(doc: Document) -> Bench {
        let catalog = Catalog::build(&doc);
        let store = XmlStore::load(doc);
        Bench { store, catalog, model: CostModel::default() }
    }

    /// Load one of the paper's corpora at the current scale.
    pub fn dataset(ds: DataSet) -> Bench {
        Self::load(generate(ds))
    }

    /// Override the cost model.
    pub fn with_model(mut self, model: CostModel) -> Bench {
        self.model = model;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &XmlStore {
        &self.store
    }

    /// Cardinality estimates for a pattern.
    pub fn estimates(&self, pattern: &Pattern) -> PatternEstimates {
        PatternEstimates::new(&self.catalog, self.store.document(), pattern)
    }

    /// Optimize, timing over `reps` repetitions (median).
    pub fn time_optimize(
        &self,
        pattern: &Pattern,
        algorithm: Algorithm,
        reps: usize,
    ) -> (OptimizedPlan, Duration) {
        let est = self.estimates(pattern);
        let mut times = Vec::with_capacity(reps.max(1));
        let mut out = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let o = optimize(pattern, &est, &self.model, algorithm);
            times.push(t0.elapsed());
            out = Some(o.expect("benchmark patterns are well-formed and must optimize"));
        }
        times.sort();
        (out.expect("reps >= 1"), times[times.len() / 2])
    }

    /// Execute a plan once, returning the result (with its elapsed
    /// time inside).
    pub fn run_plan(&self, pattern: &Pattern, plan: &sjos_exec::PlanNode) -> QueryResult {
        execute(&self.store, pattern, plan).expect("optimizer plans are valid")
    }

    /// Execute a plan once in counting mode (results drained, not
    /// materialized) — what the measurement loops use, since folded
    /// corpora can produce tens of millions of matches.
    pub fn run_plan_counting(&self, pattern: &Pattern, plan: &sjos_exec::PlanNode) -> QueryResult {
        sjos_exec::execute_counting(&self.store, pattern, plan).expect("optimizer plans are valid")
    }

    /// Like [`Bench::run_plan_counting`], but at an explicit batch
    /// granularity: `batch_rows = 1` reproduces the tuple-at-a-time
    /// engine this codebase used before vectorization, which is the
    /// `pipeline` binary's before/after knob.
    pub fn run_plan_counting_with_batch_rows(
        &self,
        pattern: &Pattern,
        plan: &sjos_exec::PlanNode,
        batch_rows: usize,
    ) -> QueryResult {
        sjos_exec::execute_counting_with_batch_rows(&self.store, pattern, plan, batch_rows)
            .expect("optimizer plans are valid")
    }

    /// Execute a plan once in counting mode across `threads` workers
    /// via the morsel-partitioned parallel engine; `threads = 1` is
    /// the serial engine. Returns the full [`sjos_exec::ParallelOutcome`]
    /// so callers can audit morsel counts and per-morsel snapshots.
    pub fn run_plan_parallel_counting(
        &self,
        pattern: &Pattern,
        plan: &sjos_exec::PlanNode,
        threads: usize,
    ) -> sjos_exec::ParallelOutcome {
        sjos_exec::execute_parallel_counting(&self.store, pattern, plan, threads)
            .expect("optimizer plans are valid")
    }

    /// One Table-1-style measurement: optimize (median of `reps`) and
    /// execute once.
    pub fn measure(&self, pattern: &Pattern, algorithm: Algorithm, reps: usize) -> Measurement {
        let (optimized, opt_time) = self.time_optimize(pattern, algorithm, reps);
        let result = self.run_plan_counting(pattern, &optimized.plan);
        Measurement {
            algorithm,
            opt_time,
            eval_time: result.elapsed,
            matches: result.len() as u64,
            plans_considered: optimized.stats.plans_considered,
            statuses_expanded: optimized.stats.statuses_expanded,
            estimated_cost: optimized.estimated_cost,
            plan: optimized.plan.to_string(),
            pipelined: result.metrics.sort_operations == 0,
        }
    }
}

/// One (query, algorithm) measurement row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Median optimization time.
    pub opt_time: Duration,
    /// Plan execution wall time.
    pub eval_time: Duration,
    /// Result cardinality.
    pub matches: u64,
    /// Alternatives priced during the search.
    pub plans_considered: u64,
    /// Statuses expanded during the search.
    pub statuses_expanded: u64,
    /// Model cost of the chosen plan.
    pub estimated_cost: f64,
    /// Plan rendering.
    pub plan: String,
    /// True when execution performed no sorts.
    pub pipelined: bool,
}

/// Format a `Duration` in seconds with millisecond resolution, like
/// the paper's tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The standard algorithm line-up of Table 1.
pub fn table1_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: true },
        Algorithm::DpapEb { te: 0 }, // placeholder; per-query Te = edge count
        Algorithm::DpapLd,
        Algorithm::Fp,
        Algorithm::WorstRandom { samples: 64, seed: 2003 },
    ]
}

/// Resolve the per-query DPAP-EB `T_e` (the paper sets it to the
/// pattern's edge count in Table 1).
pub fn resolve_te(alg: Algorithm, pattern: &Pattern) -> Algorithm {
    match alg {
        Algorithm::DpapEb { te: 0 } => Algorithm::DpapEb { te: pattern.edge_count() },
        other => other,
    }
}

/// Cache of generated corpora so several queries share one instance.
#[derive(Default)]
pub struct CorpusCache {
    cache: HashMap<&'static str, Bench>,
    override_bench: Option<Bench>,
}

impl CorpusCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that serves `doc` for *every* workload when given
    /// `Some` (an operator-supplied corpus, see [`corpus_override`]),
    /// and behaves like [`CorpusCache::new`] otherwise.
    pub fn with_override(doc: Option<Document>) -> Self {
        CorpusCache { cache: HashMap::new(), override_bench: doc.map(Bench::load) }
    }

    /// Get or build the bench for a workload's data set.
    pub fn bench(&mut self, w: &Workload) -> &Bench {
        if let Some(b) = &self.override_bench {
            return b;
        }
        self.cache.entry(w.dataset.name()).or_insert_with(|| Bench::dataset(w.dataset))
    }
}

/// Shared driver for the Figure 7 / Figure 8 `T_e` sweeps.
pub mod figures {
    use super::*;
    use sjos_datagen::paper_queries;

    /// Run the DPAP-EB `T_e` sweep of Figures 7/8 on Q.Pers.3.d at
    /// the given folding factor, printing optimization, evaluation,
    /// and total time per configuration plus the fixed algorithms for
    /// comparison.
    pub fn te_sweep(fold: usize, title: &str) {
        let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").expect("catalog query");
        let pattern = q.pattern();
        println!("{title}: opt/eval/total time for {}\n", q.id);
        eprintln!("loading Pers at fold x{fold} ...");
        let base = pers(GenConfig::sized(dataset_size(DataSet::Pers)));
        let bench = Bench::load(fold_document(&base, fold));

        let widths = [14usize, 12, 12, 12, 10];
        print_row(
            &[
                "config".into(),
                "opt (ms)".into(),
                "eval (ms)".into(),
                "total (ms)".into(),
                "bar".into(),
            ],
            &widths,
        );
        let mut rows: Vec<(String, Duration, Duration)> = Vec::new();
        for te in 1..=pattern.len() {
            let m = bench.measure(&pattern, Algorithm::DpapEb { te }, 9);
            rows.push((format!("DPAP-EB({te})"), m.opt_time, m.eval_time));
        }
        for alg in
            [Algorithm::DpapLd, Algorithm::Dpp { lookahead: true }, Algorithm::Dp, Algorithm::Fp]
        {
            let m = bench.measure(&pattern, alg, 9);
            rows.push((alg.name().to_string(), m.opt_time, m.eval_time));
        }
        let max_total =
            rows.iter().map(|(_, o, e)| o.as_secs_f64() + e.as_secs_f64()).fold(0.0f64, f64::max);
        for (name, opt, eval) in rows {
            let total = opt.as_secs_f64() + eval.as_secs_f64();
            let bar_len =
                if max_total > 0.0 { ((total / max_total) * 24.0).ceil() as usize } else { 0 };
            print_row(
                &[
                    name,
                    format!("{:.3}", opt.as_secs_f64() * 1e3),
                    format!("{:.3}", eval.as_secs_f64() * 1e3),
                    format!("{:.3}", total * 1e3),
                    "#".repeat(bar_len.max(1)),
                ],
                &widths,
            );
        }
        println!(
            "\nExpected shape (paper): evaluation time falls as T_e grows and plateaus at\n\
             the optimum while optimization time keeps rising toward DPP's; at small data\n\
             sizes (Figure 8) the total shows a \"U\" and FP is the best overall."
        );
    }
}

/// Write measurement rows as CSV under `target/sjos-bench/` so runs
/// can be diffed and plotted; returns the path written.
pub fn write_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target/sjos-bench");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Render one line of a fixed-width table.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjos_datagen::paper_queries;

    #[test]
    fn scales_are_sane() {
        for ds in [DataSet::Mbench, DataSet::Dblp, DataSet::Pers] {
            assert!(dataset_size(ds) >= 5_000);
        }
    }

    #[test]
    fn measure_runs_end_to_end_on_a_small_corpus() {
        let doc = pers(GenConfig::sized(1_000));
        let bench = Bench::load(doc);
        let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.1.a").unwrap();
        let pattern = q.pattern();
        let m = bench.measure(&pattern, Algorithm::Fp, 3);
        assert!(m.matches > 0);
        assert!(m.plans_considered > 0);
        assert!(m.pipelined);
    }

    #[test]
    fn te_placeholder_resolves_to_edge_count() {
        let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").unwrap();
        let pattern = q.pattern();
        match resolve_te(Algorithm::DpapEb { te: 0 }, &pattern) {
            Algorithm::DpapEb { te } => assert_eq!(te, 5),
            other => panic!("{other:?}"),
        }
        assert_eq!(resolve_te(Algorithm::Fp, &pattern), Algorithm::Fp);
    }

    #[test]
    fn fold_document_reachable_from_bench() {
        let doc = pers(GenConfig::sized(500));
        let folded = fold_document(&doc, 3);
        let bench = Bench::load(folded);
        assert!(bench.store().document().len() > 1_000);
    }
}
