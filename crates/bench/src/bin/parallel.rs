//! `parallel` — scaling and exactness of the morsel-driven parallel
//! structural join engine.
//!
//! Runs the Table 1 query set over folded corpora at 1/2/4/8 worker
//! threads. The 1-thread leg is the serial engine and the ground
//! truth: every multi-threaded run must reproduce its cardinality and
//! its eight exact work counters (output/produced tuples, stack
//! pushes/pops, buffered pairs, sorted tuples, scanned records, merge
//! rescans) to the bit, per the PL068 partition-sound contract. The
//! headline output is `BENCH_parallel.json`: per-query morsel counts,
//! median times, and speedups per thread count, plus per-dataset
//! geometric means at the widest configuration.
//!
//! Speedups here are honest wall-clock measurements on whatever
//! hardware runs the bench — on a single-CPU container the workers
//! time-slice one core and the speedup hovers near (or below) 1×; the
//! JSON records `cpus` so readers can tell. The correctness half of
//! the story (bit-identical answers and counters at every thread
//! count) is hardware-independent and is what `--smoke` gates.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin parallel             # full run
//! cargo run --release -p sjos-bench --bin parallel -- --smoke  # CI smoke
//! ```
//!
//! `--smoke` shrinks the corpora and exits nonzero unless at least
//! one query actually split into ≥ 2 morsels, zero runs disagreed
//! with the serial engine, and a speedup was recorded for every
//! (query, threads) cell.

use std::process::ExitCode;
use std::time::Duration;

use sjos_bench::{print_row, Bench};
use sjos_core::Algorithm;
use sjos_datagen::{
    dblp::dblp, fold_document, mbench::mbench, paper_queries, pers::pers, DataSet, GenConfig,
};
use sjos_exec::MetricsSnapshot;

/// Thread counts swept per query; the first entry must be 1 (serial
/// ground truth).
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    smoke: bool,
    reps: usize,
    fold: usize,
    base_nodes: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { smoke: false, reps: 5, fold: 100, base_nodes: 20_000 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|_| "bad rep count")?;
            }
            "--fold" => {
                args.fold = it
                    .next()
                    .ok_or("--fold needs a factor")?
                    .parse()
                    .map_err(|_| "bad fold factor")?;
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if args.smoke {
        args.reps = 2;
        args.fold = 10;
        args.base_nodes = 2_000;
    }
    if args.reps == 0 || args.fold == 0 {
        return Err("--reps and --fold must be at least 1".into());
    }
    Ok(args)
}

/// The eight exact counters PL068 demands sum bit-for-bit across
/// morsels (everything except the structural `sort_operations`, the
/// conservative `peak_bytes`, and the spill family, which the
/// parallel path never exercises).
fn exact_counters(m: &MetricsSnapshot) -> [u64; 8] {
    [
        m.output_tuples,
        m.produced_tuples,
        m.stack_pushes,
        m.stack_pops,
        m.buffered_pairs,
        m.sorted_tuples,
        m.scanned_records,
        m.merge_rescans,
    ]
}

/// One (thread count) measurement cell for a query.
struct Cell {
    threads: usize,
    morsels: usize,
    median_ms: f64,
    speedup: f64,
    mismatched: bool,
}

struct QueryRow {
    id: &'static str,
    dataset: &'static str,
    matches: u64,
    cells: Vec<Cell>,
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: parallel [--smoke] [--reps <n>] [--fold <n>]");
            return ExitCode::from(2);
        }
    };
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "parallel bench: Table 1 queries, fold x{}, threads {THREADS:?}, {} reps, \
         {cpus} cpu(s){}",
        args.fold,
        args.reps,
        if args.smoke { " [smoke]" } else { "" }
    );

    // One folded corpus per data set, shared by its queries.
    let config = GenConfig::sized(args.base_nodes);
    let mut rows: Vec<QueryRow> = Vec::new();
    let mut mismatches = 0usize;
    let mut split_queries = 0usize;
    for ds in [DataSet::Mbench, DataSet::Dblp, DataSet::Pers] {
        eprintln!("loading {} at fold x{} ...", ds.name(), args.fold);
        let base = match ds {
            DataSet::Mbench => mbench(config),
            DataSet::Dblp => dblp(config),
            DataSet::Pers => pers(config),
        };
        let bench = Bench::load(fold_document(&base, args.fold));
        for q in paper_queries().into_iter().filter(|q| q.dataset == ds) {
            let pattern = q.pattern();
            let plan = bench.time_optimize(&pattern, Algorithm::Dpp { lookahead: true }, 1).0.plan;

            let mut cells: Vec<Cell> = Vec::new();
            let mut serial: Option<(u64, [u64; 8], f64)> = None;
            for threads in THREADS {
                let mut times = Vec::with_capacity(args.reps);
                let mut last = None;
                for _ in 0..args.reps {
                    let out = bench.run_plan_parallel_counting(&pattern, &plan, threads);
                    times.push(out.result.elapsed);
                    last = Some(out);
                }
                let out = last.expect("reps >= 1");
                let ms = median_ms(&mut times);
                let counters = exact_counters(&out.result.metrics);
                let (_, serial_counters, serial_ms) =
                    *serial.get_or_insert((out.result.metrics.output_tuples, counters, ms));
                let mismatched = counters != serial_counters;
                if mismatched {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH {} @ {threads} threads: counters {counters:?} \
                         vs serial {serial_counters:?}",
                        q.id
                    );
                }
                if threads > 1 && out.morsel_count() > 1 {
                    split_queries += 1;
                }
                cells.push(Cell {
                    threads,
                    morsels: out.morsel_count(),
                    median_ms: ms,
                    speedup: if ms > 0.0 { serial_ms / ms } else { 1.0 },
                    mismatched,
                });
            }
            rows.push(QueryRow {
                id: q.id,
                dataset: ds.name(),
                matches: serial.expect("at least one thread count ran").0,
                cells,
            });
        }
    }

    let widths = [14usize, 8, 10, 8, 8, 10, 9];
    print_row(
        &[
            "query".into(),
            "dataset".into(),
            "matches".into(),
            "threads".into(),
            "morsels".into(),
            "median ms".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for r in &rows {
        for c in &r.cells {
            print_row(
                &[
                    r.id.to_string(),
                    r.dataset.to_string(),
                    r.matches.to_string(),
                    c.threads.to_string(),
                    c.morsels.to_string(),
                    format!("{:.3}", c.median_ms),
                    format!("{:.2}x", c.speedup),
                ],
                &widths,
            );
        }
    }

    // Per-dataset geometric-mean speedup at the widest configuration.
    let widest = *THREADS.last().expect("THREADS is non-empty");
    let mut summary: Vec<(String, f64)> = Vec::new();
    for ds in ["Mbench", "DBLP", "Pers"] {
        let speedups: Vec<f64> = rows
            .iter()
            .filter(|r| r.dataset == ds)
            .flat_map(|r| &r.cells)
            .filter(|c| c.threads == widest)
            .map(|c| c.speedup)
            .collect();
        if speedups.is_empty() {
            continue;
        }
        let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        println!(
            "{ds}: geometric-mean speedup {geomean:.2}x at {widest} threads \
             over {} queries",
            speedups.len()
        );
        summary.push((ds.to_string(), geomean));
    }

    let json = render_json(&args, cpus, &rows, &summary, widest);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if args.smoke {
        // The CI gate: partitioning must actually happen and must be
        // invisible; scaling numbers are recorded, not thresholded
        // (single-CPU runners cannot promise wall-clock speedup).
        if split_queries == 0 {
            eprintln!("SMOKE FAIL: no query ever split into more than one morsel");
            return ExitCode::FAILURE;
        }
        if mismatches > 0 {
            eprintln!("SMOKE FAIL: {mismatches} parallel runs disagreed with the serial engine");
            return ExitCode::FAILURE;
        }
        let cells = rows.iter().map(|r| r.cells.len()).sum::<usize>();
        let expected = rows.len() * THREADS.len();
        if cells != expected {
            eprintln!("SMOKE FAIL: {cells} measurement cells recorded, expected {expected}");
            return ExitCode::FAILURE;
        }
        println!(
            "smoke ok: {split_queries} multi-morsel runs, 0 mismatches, \
             {cells} speedup cells recorded"
        );
        return ExitCode::SUCCESS;
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} parallel runs disagreed with the serial engine");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Hand-rolled JSON (the workspace deliberately carries no serde):
/// every value is a number or a string with no escapes needed.
fn render_json(
    args: &Args,
    cpus: usize,
    rows: &[QueryRow],
    summary: &[(String, f64)],
    widest: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"parallel\",\n  \"fold\": {},\n  \"reps\": {},\n  \"cpus\": {cpus},\n",
        args.fold, args.reps
    ));
    out.push_str(&format!("  \"threads\": [{}],\n", THREADS.map(|t| t.to_string()).join(", ")));
    out.push_str(
        "  \"command\": \"cargo run --release -p sjos-bench --bin parallel\",\n  \"queries\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"dataset\": \"{}\", \"matches\": {}, \"runs\": [",
            r.id, r.dataset, r.matches
        ));
        for (j, c) in r.cells.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"threads\": {}, \"morsels\": {}, \"median_ms\": {:.3}, \
                 \"speedup\": {:.3}, \"exact\": {}}}",
                if j == 0 { "" } else { ", " },
                c.threads,
                c.morsels,
                c.median_ms,
                c.speedup,
                !c.mismatched
            ));
        }
        out.push_str(&format!("]}}{}\n", if i + 1 == rows.len() { "" } else { "," }));
    }
    out.push_str(&format!("  ],\n  \"geomean_speedup_at_{widest}_threads\": {{\n"));
    for (i, (ds, s)) in summary.iter().enumerate() {
        out.push_str(&format!(
            "    \"{ds}\": {s:.3}{}\n",
            if i + 1 == summary.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
