//! Table 2: optimization time and number of alternative plans
//! considered for query Q.Pers.3.d across DP, DPP' (no lookahead),
//! DPP, DPAP-EB, DPAP-LD, and FP.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin table2
//! cargo run --release -p sjos-bench --bin table2 -- --xml corpus.xml
//! ```

use std::process::ExitCode;

use sjos_bench::{corpus_override, print_row, resolve_te, Bench};
use sjos_core::Algorithm;
use sjos_datagen::{paper_queries, DataSet};

fn main() -> ExitCode {
    let override_doc = match corpus_override() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").expect("catalog query");
    let pattern = q.pattern();
    println!("Table 2: optimization effort for {} ({})\n", q.id, q.query);
    let bench = match override_doc {
        Some(doc) => Bench::load(doc),
        None => Bench::dataset(DataSet::Pers),
    };

    let algorithms = [
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: false },
        Algorithm::Dpp { lookahead: true },
        Algorithm::DpapEb { te: 0 },
        Algorithm::DpapLd,
        Algorithm::Fp,
    ];

    let widths = [10usize, 12, 12, 12, 12];
    print_row(
        &[
            "".into(),
            "OpTime(ms)".into(),
            "# of Plans".into(),
            "generated".into(),
            "expanded".into(),
        ],
        &widths,
    );
    for alg in algorithms {
        let alg = resolve_te(alg, &pattern);
        let (optimized, opt_time) = bench.time_optimize(&pattern, alg, 21);
        print_row(
            &[
                alg.name().into(),
                format!("{:.3}", opt_time.as_secs_f64() * 1e3),
                optimized.stats.plans_considered.to_string(),
                optimized.stats.statuses_generated.to_string(),
                optimized.stats.statuses_expanded.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper's reference row (500 MHz P-III, Timber):\n\
         \u{20}          DP 6.32s/396   DPP' 3.01s/122   DPP 1.62s/71   EB 1.37s/57   LD 0.90s/39   FP 0.35s/14\n\
         Expected shape: effort strictly decreases left to right; optimization time\n\
         tracks the number of plans considered."
    );
    ExitCode::SUCCESS
}
