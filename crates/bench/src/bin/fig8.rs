//! Figure 8: the same `T_e` sweep as Figure 7 but at folding factor 1
//! — the "optimization time is a significant fraction" regime where
//! the paper observes the "U" shape for DPAP-EB and FP winning
//! overall.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin fig8
//! ```

use sjos_bench::figures::te_sweep;

fn main() {
    te_sweep(1, "Figure 8 (folding factor 1)");
}
