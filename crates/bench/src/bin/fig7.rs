//! Figure 7: total query time (optimization + evaluation, stacked) as
//! the DPAP-EB parameter `T_e` grows from 1 to the pattern size, on
//! Q.Pers.3.d at folding factor 100 — the "evaluation dominates"
//! regime where spending more optimization time pays off.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin fig7
//! ```

use sjos_bench::figures::te_sweep;

fn main() {
    te_sweep(100, "Figure 7 (folding factor 100)");
}
