//! Before/after benchmark for the vectorized engine: runs the Table 1
//! query set with the engine forced to `batch_rows = 1` (exactly the
//! tuple-at-a-time pull loop this codebase used before vectorization)
//! and at the production [`sjos_exec::BATCH_ROWS`] granularity, checks
//! that batching changed nothing observable (result cardinalities and
//! stack push/pop counts are bit-identical), and writes a
//! machine-readable comparison to `BENCH_pipeline.json` at the repo
//! root.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin pipeline
//! SJOS_BENCH_FULL=1 cargo run --release -p sjos-bench --bin pipeline
//! cargo run --release -p sjos-bench --bin pipeline -- --threads 4
//! ```
//!
//! `--threads <n>` (or `SJOS_BENCH_THREADS`; the flag wins) runs both
//! granularities through the morsel-partitioned parallel engine at
//! `n` workers — the invisibility contract must hold there too, and
//! the thread count is recorded in the JSON.
//!
//! Exit status is non-zero if any query's batched run disagrees with
//! the tuple-at-a-time run on cardinality or stack traffic.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sjos_bench::{corpus_override, print_row, threads_override, CorpusCache};
use sjos_core::Algorithm;
use sjos_datagen::paper_queries;
use sjos_exec::{ParallelPolicy, QueryGuard, BATCH_ROWS};

/// Repetitions per (query, granularity); the median is reported.
const REPS: usize = 5;

struct Row {
    id: &'static str,
    dataset: &'static str,
    matches: u64,
    stack_pushes: u64,
    stack_pops: u64,
    peak_bytes: u64,
    tuple_ms: f64,
    batched_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.batched_ms > 0.0 {
            self.tuple_ms / self.batched_ms
        } else {
            1.0
        }
    }
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let override_doc = match corpus_override() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let threads = match threads_override() {
        Ok(t) => t.unwrap_or(1),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("pipeline: tuple-at-a-time (batch_rows=1) vs vectorized (batch_rows={BATCH_ROWS})");
    println!(
        "scale: {} (set SJOS_BENCH_FULL=1 for paper sizes), {REPS} reps, median, \
         {threads} thread(s)\n",
        if sjos_bench::full_scale() { "paper" } else { "reduced" }
    );

    let mut cache = CorpusCache::with_override(override_doc);
    let mut rows: Vec<Row> = Vec::new();
    let mut mismatches = 0usize;

    for q in paper_queries() {
        let pattern = q.pattern();
        let bench = cache.bench(&q);
        let plan = bench.time_optimize(&pattern, Algorithm::Dpp { lookahead: true }, 1).0.plan;

        let run = |batch_rows: usize| {
            let mut times = Vec::with_capacity(REPS);
            let mut last = None;
            for _ in 0..REPS {
                let r = if threads > 1 {
                    sjos_exec::execute_parallel_opts(
                        bench.store(),
                        &pattern,
                        &plan,
                        false,
                        batch_rows,
                        &Arc::new(QueryGuard::unlimited()),
                        ParallelPolicy::with_threads(threads),
                    )
                    .expect("optimizer plans are valid")
                    .result
                } else {
                    bench.run_plan_counting_with_batch_rows(&pattern, &plan, batch_rows)
                };
                times.push(r.elapsed);
                last = Some(r);
            }
            (median_ms(&mut times), last.expect("REPS >= 1"))
        };
        let (tuple_ms, tuple_run) = run(1);
        let (batched_ms, batched_run) = run(BATCH_ROWS);

        // Batching must be invisible: same answer, same join work.
        let tm = &tuple_run.metrics;
        let bm = &batched_run.metrics;
        if tm.output_tuples != bm.output_tuples
            || tm.stack_pushes != bm.stack_pushes
            || tm.stack_pops != bm.stack_pops
        {
            eprintln!(
                "MISMATCH {}: tuple run {}t {}push/{}pop, batched run {}t {}push/{}pop",
                q.id,
                tm.output_tuples,
                tm.stack_pushes,
                tm.stack_pops,
                bm.output_tuples,
                bm.stack_pushes,
                bm.stack_pops
            );
            mismatches += 1;
        }
        rows.push(Row {
            id: q.id,
            dataset: q.dataset.name(),
            matches: bm.output_tuples,
            stack_pushes: bm.stack_pushes,
            stack_pops: bm.stack_pops,
            peak_bytes: bm.peak_bytes,
            tuple_ms,
            batched_ms,
        });
    }

    let widths = [14usize, 8, 10, 12, 12, 9];
    print_row(
        &[
            "query".into(),
            "dataset".into(),
            "matches".into(),
            "tuple (ms)".into(),
            "batch (ms)".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for r in &rows {
        print_row(
            &[
                r.id.to_string(),
                r.dataset.to_string(),
                r.matches.to_string(),
                format!("{:.3}", r.tuple_ms),
                format!("{:.3}", r.batched_ms),
                format!("{:.2}x", r.speedup()),
            ],
            &widths,
        );
    }

    let mut summary: Vec<(String, f64)> = Vec::new();
    for ds in ["Mbench", "DBLP", "Pers"] {
        let speedups: Vec<f64> =
            rows.iter().filter(|r| r.dataset == ds).map(Row::speedup).collect();
        if speedups.is_empty() {
            continue;
        }
        let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        println!("{ds}: geometric-mean speedup {geomean:.2}x over {} queries", speedups.len());
        summary.push((ds.to_string(), geomean));
    }

    let json = render_json(&rows, &summary, threads);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("error: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if mismatches > 0 {
        eprintln!("{mismatches} queries disagreed between granularities");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Hand-rolled JSON (the workspace deliberately carries no serde):
/// every value is a number or a string with no escapes needed.
fn render_json(rows: &[Row], summary: &[(String, f64)], threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"batch_rows\": {BATCH_ROWS},\n  \"reps\": {REPS},\n  \
         \"threads\": {threads},\n",
        if sjos_bench::full_scale() { "paper" } else { "reduced" }
    ));
    out.push_str("  \"command\": \"cargo run --release -p sjos-bench --bin pipeline\",\n");
    out.push_str("  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"dataset\": \"{}\", \"matches\": {}, \
             \"stack_pushes\": {}, \"stack_pops\": {}, \"peak_bytes\": {}, \
             \"tuple_at_a_time_ms\": {:.3}, \
             \"batched_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.id,
            r.dataset,
            r.matches,
            r.stack_pushes,
            r.stack_pops,
            r.peak_bytes,
            r.tuple_ms,
            r.batched_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"geomean_speedup\": {\n");
    for (i, (ds, s)) in summary.iter().enumerate() {
        out.push_str(&format!(
            "    \"{ds}\": {s:.3}{}\n",
            if i + 1 == summary.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
