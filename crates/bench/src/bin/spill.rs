//! `spill` — cost and correctness of the spill-to-disk external sort.
//!
//! Sort-rooted plans over wide flat corpora, executed three ways per
//! corpus: fully in memory (the baseline), in spill mode under a
//! *starved* budget equal to the spill-mode certificate (every run
//! goes to temp pages — the degraded-admission worst case), and in
//! spill mode under a mid-point budget (some runs spill). Every
//! execution is checked against the in-memory answer and against its
//! statically certified resident bound; the headline output is
//! `BENCH_spill.json`: slowdown vs. the in-memory sort, temp-page
//! traffic, and merge-pass counts per corpus and budget.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin spill             # full run
//! cargo run --release -p sjos-bench --bin spill -- --smoke  # CI smoke
//! ```
//!
//! `--smoke` runs one small corpus once and exits nonzero unless at
//! least one query actually spilled, zero executions escaped their
//! certified resident bound, answers stayed bit-identical, and zero
//! temp pages were left live in the spill segment.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sjos::pattern::PnId;
use sjos::{Database, PlanNode, QueryGuard, SpillPolicy, BATCH_ROWS};
use sjos_exec::JoinAlgo;
use sjos_pattern::Axis;
use sjos_xml::{Document, DocumentBuilder};

struct Args {
    smoke: bool,
    reps: usize,
    sizes: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { smoke: false, reps: 5, sizes: vec![50_000, 200_000] };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|_| "bad rep count")?;
            }
            "--sizes" => {
                args.sizes = it
                    .next()
                    .ok_or("--sizes needs a list")?
                    .split(',')
                    .map(|t| t.parse().map_err(|_| format!("bad size {t:?}")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if args.smoke {
        args.reps = 2;
        args.sizes = vec![20_000];
    }
    Ok(args)
}

/// A flat document whose single sort materializes `emps` rows of
/// width 2 — the shape where the spill cap bites hardest.
fn wide_doc(emps: usize) -> Document {
    let mut b = DocumentBuilder::new();
    b.start_element("db");
    b.start_element("dept");
    for _ in 0..emps {
        b.start_element("emp");
        b.end_element();
    }
    b.end_element();
    b.end_element();
    b.finish()
}

/// Sort over a descendant join: the optimizers avoid this shape on
/// purpose (stack-tree ordering makes most sorts redundant), so the
/// bench plants it to measure the external sort in isolation.
fn sort_plan() -> PlanNode {
    let inner = PlanNode::StructuralJoin {
        left: Box::new(PlanNode::IndexScan { pnode: PnId(0) }),
        right: Box::new(PlanNode::IndexScan { pnode: PnId(1) }),
        anc: PnId(0),
        desc: PnId(1),
        axis: Axis::Descendant,
        algo: JoinAlgo::StackTreeDesc,
    };
    PlanNode::Sort { input: Box::new(inner), by: PnId(0) }
}

struct RunOutcome {
    corpus_emps: usize,
    mode: String,
    budget_bytes: u64,
    certified_peak: u64,
    reps: usize,
    rows_out: u64,
    best_secs: f64,
    rows_per_sec: f64,
    resident_peak: u64,
    spilled_runs: u64,
    spilled_bytes: u64,
    merge_passes: u64,
    spill_page_writes: u64,
    spill_page_reads: u64,
    bound_violations: u64,
    mismatches: u64,
    leaked_temp_pages: u64,
}

impl RunOutcome {
    fn to_json(&self) -> String {
        format!(
            "{{\"corpus_emps\":{},\"mode\":\"{}\",\"budget_bytes\":{},\
             \"certified_peak_bytes\":{},\"reps\":{},\"rows_out\":{},\
             \"best_secs\":{:.4},\"rows_per_sec\":{:.0},\"resident_peak_bytes\":{},\
             \"spilled_runs\":{},\"spilled_bytes\":{},\"merge_passes\":{},\
             \"spill_page_writes\":{},\"spill_page_reads\":{},\
             \"bound_violations\":{},\"mismatches\":{},\"leaked_temp_pages\":{}}}",
            self.corpus_emps,
            self.mode,
            self.budget_bytes,
            self.certified_peak,
            self.reps,
            self.rows_out,
            self.best_secs,
            self.rows_per_sec,
            self.resident_peak,
            self.spilled_runs,
            self.spilled_bytes,
            self.merge_passes,
            self.spill_page_writes,
            self.spill_page_reads,
            self.bound_violations,
            self.mismatches,
            self.leaked_temp_pages
        )
    }
}

/// Execute the sort plan `reps` times under one (budget, policy)
/// configuration, checking every answer against `baseline` and every
/// measured resident peak against `certified`.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    db: &Database,
    emps: usize,
    mode: &str,
    budget: Option<usize>,
    policy: Option<SpillPolicy>,
    certified: u64,
    reps: usize,
    baseline: &[sjos_exec::Tuple],
) -> RunOutcome {
    let pattern = sjos::parse_pattern("//db//emp").expect("pattern parses");
    let plan = sort_plan();
    let mut out = RunOutcome {
        corpus_emps: emps,
        mode: mode.to_string(),
        budget_bytes: budget.map_or(0, |b| b as u64),
        certified_peak: certified,
        reps,
        rows_out: 0,
        best_secs: f64::INFINITY,
        rows_per_sec: 0.0,
        resident_peak: 0,
        spilled_runs: 0,
        spilled_bytes: 0,
        merge_passes: 0,
        spill_page_writes: 0,
        spill_page_reads: 0,
        bound_violations: 0,
        mismatches: 0,
        leaked_temp_pages: 0,
    };
    for _ in 0..reps {
        let mut guard = QueryGuard::unlimited();
        if let Some(b) = budget {
            guard = guard.with_memory_budget(b);
        }
        let guard = Arc::new(guard);
        let started = Instant::now();
        let result = match policy {
            Some(p) => sjos_exec::execute_guarded_spill(db.store(), &pattern, &plan, &guard, p),
            None => sjos_exec::execute_guarded(db.store(), &pattern, &plan, &guard),
        }
        .expect("bench execution completes");
        let secs = started.elapsed().as_secs_f64();
        out.best_secs = out.best_secs.min(secs);
        out.rows_out = result.metrics.output_tuples;
        out.resident_peak = out.resident_peak.max(result.metrics.peak_bytes);
        out.spilled_runs += result.metrics.spilled_runs;
        out.spilled_bytes += result.metrics.spilled_bytes;
        out.merge_passes += result.metrics.spill_merge_passes;
        out.spill_page_writes += result.io.spill_page_writes;
        out.spill_page_reads += result.io.spill_page_reads;
        if result.metrics.peak_bytes > certified {
            out.bound_violations += 1;
        }
        if result.tuples != baseline {
            out.mismatches += 1;
        }
    }
    out.leaked_temp_pages = db.store().spill().live_pages();
    if out.best_secs > 0.0 {
        out.rows_per_sec = out.rows_out as f64 / out.best_secs;
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: spill [--smoke] [--reps <n>] [--sizes <a,b,c>]");
            return ExitCode::from(2);
        }
    };
    println!(
        "spill bench: sort-rooted plans, corpora {:?}, {} reps{}",
        args.sizes,
        args.reps,
        if args.smoke { " [smoke]" } else { "" }
    );

    let pattern = sjos::parse_pattern("//db//emp").expect("pattern parses");
    let plan = sort_plan();
    let mut outcomes: Vec<RunOutcome> = Vec::new();
    for &emps in &args.sizes {
        let db = Database::from_document(wide_doc(emps));
        let full = db.resource_bounds(&pattern, &plan);
        let floor = db.resource_bounds_spill(&pattern, &plan, SpillPolicy::with_threshold(0));
        assert!(
            floor.peak_bytes < full.peak_bytes,
            "corpus of {emps} emps too small: spill floor {} ≥ full bound {}",
            floor.peak_bytes,
            full.peak_bytes
        );
        let baseline = db.execute(&pattern, &plan).expect("baseline run").tuples;

        // The degraded-admission arithmetic the service applies, end
        // to end: the in-memory certificate rejects at the floor
        // budget, the spill certificate admits.
        let floor_budget = usize::try_from(floor.peak_bytes).expect("budget fits usize");
        let in_memory = sjos::planck::admit(&full, Some(floor.peak_bytes), None);
        let degraded = sjos::planck::admit_spill(&floor, Some(floor.peak_bytes), None);
        assert!(!in_memory.is_clean(), "floor budget must reject the in-memory certificate");
        assert!(degraded.is_clean(), "floor budget must admit the spill certificate");

        let mid_budget = floor_budget
            + usize::try_from(full.peak_bytes - floor.peak_bytes).expect("gap fits usize") / 2;

        eprintln!(
            "corpus {emps} emps: in-memory bound {} B, spill floor {} B",
            full.peak_bytes, floor.peak_bytes
        );
        for (mode, budget, policy, certified) in [
            ("in-memory", None, None, full.peak_bytes),
            (
                "spill-floor",
                Some(floor_budget),
                SpillPolicy::for_budget(floor_budget, 2, BATCH_ROWS),
                floor.peak_bytes,
            ),
            ("spill-mid", Some(mid_budget), SpillPolicy::for_budget(mid_budget, 2, BATCH_ROWS), {
                let p = SpillPolicy::for_budget(mid_budget, 2, BATCH_ROWS)
                    .expect("mid budget admits a policy");
                db.resource_bounds_spill(&pattern, &plan, p).peak_bytes
            }),
        ] {
            if mode != "in-memory" {
                policy.expect("starved budget admits a policy");
            }
            let out = run_mode(&db, emps, mode, budget, policy, certified, args.reps, &baseline);
            println!(
                "  {emps:>7} emps {mode:>11}: {:>9.0} rows/s, resident peak {:>9} B, \
                 {} runs spilled, {} merge passes, {} violations, {} mismatches",
                out.rows_per_sec,
                out.resident_peak,
                out.spilled_runs,
                out.merge_passes,
                out.bound_violations,
                out.mismatches
            );
            outcomes.push(out);
        }
    }

    let spilled: u64 = outcomes.iter().map(|o| o.spilled_runs).sum();
    let violations: u64 = outcomes.iter().map(|o| o.bound_violations).sum();
    let mismatches: u64 = outcomes.iter().map(|o| o.mismatches).sum();
    let leaked: u64 = outcomes.iter().map(|o| o.leaked_temp_pages).sum();

    if args.smoke {
        // The CI gate: spilling must actually happen, stay inside its
        // certificate, change nothing, and clean up after itself.
        if spilled == 0 {
            eprintln!("SMOKE FAIL: no execution ever spilled a run");
            return ExitCode::FAILURE;
        }
        if violations > 0 {
            eprintln!("SMOKE FAIL: {violations} resident peaks escaped their certified bounds");
            return ExitCode::FAILURE;
        }
        if mismatches > 0 {
            eprintln!("SMOKE FAIL: {mismatches} spilling executions changed the answer");
            return ExitCode::FAILURE;
        }
        if leaked > 0 {
            eprintln!("SMOKE FAIL: {leaked} temp pages left live in the spill segment");
            return ExitCode::FAILURE;
        }
        println!("smoke ok: {spilled} runs spilled, 0 violations, 0 mismatches, 0 leaks");
        return ExitCode::SUCCESS;
    }

    let rows: Vec<String> = outcomes.iter().map(RunOutcome::to_json).collect();
    let json = format!(
        "{{\n  \"bench\":\"spill\",\n  \"reps\":{},\n  \"runs\":[\n    {}\n  ]\n}}\n",
        args.reps,
        rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spill.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    if violations > 0 || mismatches > 0 || leaked > 0 {
        eprintln!(
            "FAIL: {violations} bound violations, {mismatches} mismatches, {leaked} leaked pages"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
