//! Extension experiment (beyond the paper's tables): how optimization
//! cost scales with pattern size. The paper's largest pattern has six
//! nodes; its complexity analysis (§3.1: `O(n² · 2^n)` plans for DP)
//! predicts the DP/DPP/FP gap widens rapidly with `n`. This harness
//! sweeps patterns of 3–10 nodes on the Pers corpus and reports
//! optimization time, plans considered, and the evaluation time of
//! the chosen plan — making the paper's "spend optimization time only
//! when evaluation is expensive" trade-off measurable on modern
//! hardware.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin extended
//! ```

use std::process::ExitCode;

use sjos_bench::{corpus_override, print_row, Bench};
use sjos_core::Algorithm;
use sjos_datagen::DataSet;

/// Progressively larger patterns over the Pers vocabulary.
const PATTERNS: &[(&str, &str)] = &[
    ("n=3", "//manager//employee/name"),
    ("n=4", "//manager[.//department]//employee/name"),
    ("n=5", "//manager[.//employee/name][./department/name]"),
    ("n=6", "//manager[.//employee/name][.//manager/department/name]"),
    (
        "n=7",
        "//manager[.//employee[./name][./email]][.//manager/department/name]",
    ),
    (
        "n=8",
        "//manager[./name][.//employee[./name][./email]][.//manager/department/name]",
    ),
    (
        "n=9",
        "//manager[./name][.//employee[./name][./email]][.//manager[./name]/department/name]",
    ),
    (
        "n=10",
        "//manager[./name][.//employee[./name][./email]][.//manager[./name]/department[./name]/employee]",
    ),
];

fn main() -> ExitCode {
    let override_doc = match corpus_override() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("Extended: optimization effort vs pattern size (Pers corpus)\n");
    let bench = match override_doc {
        Some(doc) => Bench::load(doc),
        None => Bench::dataset(DataSet::Pers),
    };
    let algorithms = [Algorithm::Dp, Algorithm::Dpp { lookahead: true }, Algorithm::Fp];
    let widths = [6usize, 10, 12, 12, 12, 12];
    print_row(
        &[
            "size".into(),
            "algo".into(),
            "opt (ms)".into(),
            "plans".into(),
            "eval (ms)".into(),
            "matches".into(),
        ],
        &widths,
    );
    for (label, query) in PATTERNS {
        // Invariant: PATTERNS above are hard-coded, well-formed queries.
        let pattern = sjos_pattern::parse_pattern(query).expect("hard-coded pattern parses");
        for alg in algorithms {
            // DP beyond 8 nodes floods memory with statuses; skip it
            // there (that is the finding).
            if alg == Algorithm::Dp && pattern.len() > 8 {
                print_row(
                    &[
                        (*label).into(),
                        alg.name().into(),
                        "skipped".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ],
                    &widths,
                );
                continue;
            }
            let m = bench.measure(&pattern, alg, 3);
            print_row(
                &[
                    (*label).into(),
                    alg.name().into(),
                    format!("{:.3}", m.opt_time.as_secs_f64() * 1e3),
                    m.plans_considered.to_string(),
                    format!("{:.3}", m.eval_time.as_secs_f64() * 1e3),
                    m.matches.to_string(),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nExpected shape: DP's plans-considered grows exponentially with pattern size\n\
         while FP stays near-linear; once optimization time rivals evaluation time,\n\
         the paper's recommendation flips from DPP to FP."
    );
    ExitCode::SUCCESS
}
