//! Table 3: plan execution time vs data size (folding factor) for
//! query Q.Pers.3.d — the experiment behind the paper's §4.3 finding
//! that the optimal plan shifts from left-deep to fully-pipelined
//! bushy as data grows.
//!
//! ```sh
//! cargo run --release -p sjos-bench --bin table3          # folds 1, 10, 100
//! SJOS_BENCH_FULL=1 cargo run --release -p sjos-bench --bin table3   # adds 500
//! ```

use std::process::ExitCode;

use sjos_bench::{corpus_override, print_row, resolve_te, secs, Bench};
use sjos_core::Algorithm;
use sjos_datagen::{fold_document, paper_queries, pers::pers, DataSet, GenConfig};

fn main() -> ExitCode {
    let override_doc = match corpus_override() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let q = paper_queries().into_iter().find(|q| q.id == "Q.Pers.3.d").expect("catalog query");
    let pattern = q.pattern();
    println!("Table 3: data size vs plan execution time (s) for {}\n", q.id);

    let folds: Vec<usize> =
        if sjos_bench::full_scale() { vec![1, 10, 100, 500] } else { vec![1, 10, 100] };
    let base = match override_doc {
        Some(doc) => doc,
        None => pers(GenConfig::sized(sjos_bench::dataset_size(DataSet::Pers))),
    };

    let algorithms = [
        Algorithm::Dp,
        Algorithm::Dpp { lookahead: true },
        Algorithm::DpapEb { te: 0 },
        Algorithm::DpapLd,
        Algorithm::Fp,
        Algorithm::WorstRandom { samples: 64, seed: 2003 },
    ];

    let mut widths = vec![12usize];
    let mut header = vec!["".to_string()];
    for f in &folds {
        header.push(format!("x{f}"));
        widths.push(12);
    }
    header.push("plan shape trend".into());
    widths.push(40);
    print_row(&header, &widths);

    // Pre-load the folded instances once.
    let benches: Vec<(usize, Bench)> = folds
        .iter()
        .map(|&f| {
            eprintln!("loading fold x{f} ...");
            (f, Bench::load(fold_document(&base, f)))
        })
        .collect();

    for alg in algorithms {
        let alg = resolve_te(alg, &pattern);
        let mut cells = vec![alg.name().to_string()];
        let mut shapes = Vec::new();
        for (_, bench) in &benches {
            let m = bench.measure(&pattern, alg, 3);
            cells.push(secs(m.eval_time));
            shapes.push(if m.pipelined { "FP" } else { "blk" });
        }
        cells.push(shapes.join(" -> "));
        print_row(&cells, &widths);
    }
    println!(
        "\nExpected shape (paper): all optimizers track each other at x1; as the fold\n\
         grows, DPAP-LD's left-deep plan falls behind the pipelined bushy optimum that\n\
         DP/DPP/FP choose, and the bad plan degrades fastest of all."
    );
    ExitCode::SUCCESS
}
